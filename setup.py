"""Legacy setup shim.

The offline environment has no ``wheel`` package, which breaks PEP-517
editable installs; with this shim ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``pip install -e .`` on newer toolchains)
works everywhere. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
