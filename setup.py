"""Setup shim for offline toolchains. All metadata lives in pyproject.toml.

On environments without the ``wheel`` distribution (hermetic containers),
PEP 517/660 editable installs fail inside setuptools (``invalid command
'bdist_wheel'``). This shim loads ``_wheel_shim`` — a minimal in-repo
stand-in for the parts of ``wheel`` that editable installs need — so that

    pip install -e . --no-build-isolation

works everywhere. With the real ``wheel`` package installed the shim is
inert and this file reduces to a plain ``setup()`` call.
"""

import importlib.util
import pathlib

from setuptools import setup

extra_kwargs = {}
try:  # pragma: no cover - depends on the host toolchain
    import wheel  # noqa: F401
except ImportError:
    _shim_path = pathlib.Path(__file__).resolve().parent / "_wheel_shim.py"
    _spec = importlib.util.spec_from_file_location("_wheel_shim", _shim_path)
    _shim = importlib.util.module_from_spec(_spec)
    _spec.loader.exec_module(_shim)
    extra_kwargs = _shim.install_shim()

setup(**extra_kwargs)
