"""Ablation: the write-quorum parameter w (eq. 16) trade-off.

w controls the per-level write threshold on levels >= 1: larger w makes
writes harder (eq. 9 decreasing in w) but reads easier (r_l = s_l - w_l + 1
shrinks). This bench quantifies the trade-off on the calibrated Figure-3
configuration and locates the balanced point (the w maximizing the
minimum of read and write availability), which lands on the paper's
anchor w = 3 at p = 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    read_availability_erc,
    write_availability,
)
from repro.bench.figures import FIG_K, FIG_N, FIG_SHAPE, fig_quorum


def sweep_w(ps=(0.5, 0.7, 0.9)) -> list[dict]:
    rows = []
    for p in ps:
        for w in range(1, FIG_SHAPE.level_size(1) + 1):
            quorum = fig_quorum(w)
            rows.append(
                {
                    "p": p,
                    "w": w,
                    "write": float(write_availability(quorum, p)),
                    "read_erc": float(read_availability_erc(quorum, FIG_N, FIG_K, p)),
                }
            )
    return rows


def test_w_ablation(benchmark, out_dir):
    rows = benchmark(sweep_w)
    csv = "p,w,write,read_erc\n" + "\n".join(
        f"{r['p']},{r['w']},{r['write']:.6f},{r['read_erc']:.6f}" for r in rows
    )
    (out_dir / "ablation_w.csv").write_text(csv + "\n")

    for p in (0.5, 0.7, 0.9):
        sub = [r for r in rows if r["p"] == p]
        writes = [r["write"] for r in sub]
        reads = [r["read_erc"] for r in sub]
        # Monotone trade-off: write decreasing, read increasing in w.
        assert all(a >= b - 1e-12 for a, b in zip(writes, writes[1:])), p
        assert all(b >= a - 1e-12 for a, b in zip(reads, reads[1:])), p

    # The balanced point (argmax of min(read, write)) moves toward larger
    # w as p grows: at p = 0.5 writes are the bottleneck (w = 1 best); at
    # p = 0.9 the write penalty of mid-range w is negligible.
    def balanced(p: float) -> int:
        sub = [r for r in rows if r["p"] == p]
        return max(sub, key=lambda r: min(r["write"], r["read_erc"]))["w"]

    assert balanced(0.5) == 1
    assert balanced(0.9) >= balanced(0.5)
