"""Message-cost table: analytic budgets vs measured protocol traffic.

The paper motivates ERC consistency work by network overhead; this bench
produces the cost table for the canonical configurations and verifies
the executable engines stay within the analytic budgets of
:mod:`repro.analysis.cost`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    read_messages_erc_decode,
    read_messages_erc_direct,
    write_messages_erc,
)
from repro.cluster import Cluster
from repro.core import TrapErcProtocol
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape

CONFIGS = {
    "(9,6) levels(1,3)": (9, 6, TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)),
    "(15,8) levels(3,5)": (15, 8, TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)),
    "(12,8) levels(2,3)": (12, 8, TrapezoidQuorum.uniform(TrapezoidShape(1, 2, 1), 2)),
}


def measure(n: int, k: int, quorum) -> dict[str, int]:
    cluster = Cluster(n)
    proto = TrapErcProtocol(cluster, MDSCode(n, k), quorum)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(k, 64), dtype=np.int64).astype(np.uint8)
    proto.initialize(data)
    read = proto.read_block(0)
    write = proto.write_block(0, rng.integers(0, 256, 64, dtype=np.int64).astype(np.uint8))
    cluster.fail(0)
    decode = proto.read_block(0)
    assert read.success and write.success and decode.success
    return {
        "read": read.messages,
        "write": write.messages,
        "decode": decode.messages,
    }


def sweep_costs() -> dict[str, dict[str, int]]:
    return {name: measure(n, k, q) for name, (n, k, q) in CONFIGS.items()}


def test_cost_model(benchmark, out_dir):
    measured = benchmark.pedantic(sweep_costs, rounds=1, iterations=1)

    lines = ["config,op,measured,model_bound"]
    for name, (n, k, quorum) in CONFIGS.items():
        bounds = {
            "read": read_messages_erc_direct(quorum)["total"],
            "write": write_messages_erc(quorum, n, k)["total"],
            "decode": read_messages_erc_decode(quorum, n, k)["total"],
        }
        for op, value in measured[name].items():
            assert value <= bounds[op], (name, op, value, bounds[op])
            lines.append(f"{name},{op},{value},{bounds[op]}")
    (out_dir / "cost_model.csv").write_text("\n".join(lines) + "\n")

    # The healthy read is far cheaper than the degraded decode read — the
    # overhead the paper's introduction attributes to ERC schemes.
    for name in CONFIGS:
        assert measured[name]["decode"] > measured[name]["read"]
