"""Shared fixtures for the benchmark suite.

Every figure bench writes its regenerated series to ``results/`` so the
data survives the pytest-benchmark output capture; run
``python -m repro.bench`` to print all tables directly.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import results_dir


@pytest.fixture(scope="session")
def out_dir():
    return results_dir()
