"""Figure 4: TRAP-ERC read availability for growing redundancy n - k.

Regenerates the curve family (n = 15 fixed, k swept down, per-level
majority write quorums) and checks the paper's claim that more redundant
blocks yield better read availability — strictly for p >= 0.3, within a
0.5% tolerance below that (discrete shape changes).
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import fig4_series


def test_fig4_series(benchmark, out_dir):
    series = benchmark(fig4_series)
    series.to_csv(out_dir / "fig4.csv")
    labels = list(series.columns)
    assert labels == ["n-k=3", "n-k=5", "n-k=7", "n-k=9", "n-k=11"]

    for label in labels:
        col = series.columns[label]
        assert np.all(np.diff(col) >= -1e-9), f"{label} not monotone in p"

    mid = series.x >= 0.3
    for prev, cur in zip(labels, labels[1:]):
        assert np.all(
            series.columns[cur][mid] >= series.columns[prev][mid] - 1e-9
        ), f"{cur} below {prev} for p >= 0.3"
        assert np.all(
            series.columns[cur] >= series.columns[prev] - 0.005
        ), f"{cur} below {prev} beyond tolerance"

    # The spread is substantial at p = 0.5 (the figure's visual message).
    at_half = np.argmin(np.abs(series.x - 0.5))
    assert series.columns["n-k=11"][at_half] - series.columns["n-k=3"][at_half] > 0.3
