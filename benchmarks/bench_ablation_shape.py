"""Ablation: which trapezoid shape is best at a fixed node budget?

DESIGN.md calls out the shape choice (a, b, h) as the protocol's main
free parameter. For the canonical budget Nbnode = 8 (n = 15, k = 8) this
bench sweeps every shape with per-level-majority quorums, reports
write/read availability at p = 0.7, and records the ranking. The flat
shape (pure majority) maximizes write availability, while multi-level
shapes trade write for read availability — the trapezoid's raison d'etre.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    read_availability_erc,
    read_availability_fr,
    write_availability,
)
from repro.quorum import TrapezoidQuorum, shapes_for_nbnode

N, K = 15, 8
NBNODE = N - K + 1
P_EVAL = 0.7


def majority_quorum(shape) -> TrapezoidQuorum:
    w = tuple(shape.level_size(l) // 2 + 1 for l in shape.levels)
    return TrapezoidQuorum(shape, w)


def sweep_shapes() -> list[dict]:
    rows = []
    for shape in shapes_for_nbnode(NBNODE, max_h=4):
        quorum = majority_quorum(shape)
        rows.append(
            {
                "a": shape.a,
                "b": shape.b,
                "h": shape.h,
                "write": float(write_availability(quorum, P_EVAL)),
                "read_fr": float(read_availability_fr(quorum, P_EVAL)),
                "read_erc": float(read_availability_erc(quorum, N, K, P_EVAL)),
            }
        )
    return rows


def test_shape_ablation(benchmark, out_dir):
    rows = benchmark(sweep_shapes)
    assert len(rows) >= 4  # several shapes exist for Nbnode = 8

    header = "a,b,h,write,read_fr,read_erc"
    csv = "\n".join(
        [header]
        + [
            f"{r['a']},{r['b']},{r['h']},{r['write']:.6f},{r['read_fr']:.6f},{r['read_erc']:.6f}"
            for r in rows
        ]
    )
    (out_dir / "ablation_shape.csv").write_text(csv + "\n")

    flat = next(r for r in rows if r["h"] == 0)
    multi = [r for r in rows if r["h"] >= 1]
    # The flat majority maximizes write availability at this budget...
    assert all(flat["write"] >= r["write"] - 1e-9 for r in rows)
    # ...while some multi-level shape beats it on FR read availability.
    assert any(r["read_fr"] > flat["read_fr"] + 1e-6 for r in multi)

    # All numbers are probabilities.
    for r in rows:
        for key in ("write", "read_fr", "read_erc"):
            assert 0.0 <= r[key] <= 1.0
