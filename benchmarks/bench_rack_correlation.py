"""Extension experiment: correlated (rack) failures vs the paper's model.

Section IV assumes nodes fail independently. This bench holds the
*marginal* per-node availability fixed and introduces rack-level
correlation (a failed rack downs all its members), measuring how much
the independence assumption overstates the trapezoid's availability.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import write_availability
from repro.bench.figures import FIG_K, FIG_N, fig_quorum
from repro.cluster import RackTopology, make_rng
from repro.sim import level_membership_matrix

QUORUM = fig_quorum(3)
P_MARGINAL = 0.85
TRIALS = 80_000


def measure(rack_q: float, racks: int) -> dict[str, float]:
    topo = RackTopology.uniform(FIG_N, racks)
    node_q = topo.node_failure_for_marginal(rack_q, P_MARGINAL)
    alive = topo.sample_alive(TRIALS, rack_q, node_q, rng=make_rng(17))
    # Trapezoid nodes of block 0: N_0 + the n-k parities (14, ..).
    group = [0] + list(range(FIG_K, FIG_N))
    counts = alive[:, group] @ level_membership_matrix(QUORUM).T
    write_ok = np.all(counts >= np.asarray(QUORUM.w), axis=1)
    check_ok = np.any(counts >= np.asarray(QUORUM.read_thresholds), axis=1)
    ni = alive[:, 0]
    pool = alive[:, 1:].sum(axis=1)
    read_ok = check_ok & (ni | (pool >= FIG_K))
    return {
        "marginal_p": float(alive.mean()),
        "write": float(write_ok.mean()),
        "read": float(read_ok.mean()),
    }


def sweep() -> dict[str, dict[str, float]]:
    out = {"independent": measure(0.0, 3)}
    for rack_q in (0.05, 0.10):
        for racks in (3, 5):
            out[f"rack_q={rack_q} racks={racks}"] = measure(rack_q, racks)
    return out


def test_rack_correlation(benchmark, out_dir):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["scenario,marginal_p,write,read"]
    for name, row in table.items():
        lines.append(
            f"{name},{row['marginal_p']:.4f},{row['write']:.4f},{row['read']:.4f}"
        )
    (out_dir / "rack_correlation.csv").write_text("\n".join(lines) + "\n")

    base = table["independent"]
    # Marginals held equal across scenarios.
    for row in table.values():
        assert abs(row["marginal_p"] - P_MARGINAL) < 0.01
    # Independent sampling agrees with the closed form.
    assert abs(base["write"] - float(write_availability(QUORUM, P_MARGINAL))) < 0.01
    # Reads always suffer under correlation: the decode pool needs many
    # simultaneous survivors, and a downed rack removes several at once.
    for name, row in table.items():
        if name != "independent":
            assert row["read"] < base["read"] - 0.003, name
    # Writes depend on the blast radius: few large racks (5 nodes each)
    # hurt; many small racks concentrate the failure mass into fewer
    # trials and can even help slightly. Assert the directional split.
    assert table["rack_q=0.1 racks=3"]["write"] < base["write"] - 0.02
    assert table["rack_q=0.1 racks=5"]["write"] > base["write"] - 0.01
