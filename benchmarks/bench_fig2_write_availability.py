"""Figure 2: TRAP-ERC write availability vs node availability p.

Regenerates the family of curves over the eq.-16 parameter w (1..s_1)
for the calibrated n = 15 configuration, cross-checks the closed form
against Monte Carlo, and records the paper's qualitative claims:

* write availability is identical for TRAP-FR and TRAP-ERC (eqs. 8-9),
* for usual availabilities (p > 0.9) the write availability is high and
  barely affected by the trapezoid parameters (for moderate w).
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import fig2_series, fig_quorum
from repro.analysis import write_availability
from repro.sim import mc_write_availability


def test_fig2_series(benchmark, out_dir):
    series = benchmark(fig2_series)
    series.to_csv(out_dir / "fig2.csv")

    # Monotone in p, anti-monotone in w.
    for label, col in series.columns.items():
        assert np.all(np.diff(col) >= -1e-12), label
    p_mid = np.argmin(np.abs(series.x - 0.7))
    values = [series.columns[f"w={w}"][p_mid] for w in range(1, 6)]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    # Paper: at usual p (>= 0.9) availability is high for moderate w.
    p_hi = np.argmin(np.abs(series.x - 0.9))
    for w in (1, 2, 3):
        assert series.columns[f"w={w}"][p_hi] > 0.95


def test_fig2_closed_form_vs_mc():
    quorum = fig_quorum(3)
    est = mc_write_availability(quorum, 0.7, trials=40_000, rng=0)
    assert est.contains(float(write_availability(quorum, 0.7)), z=4)
