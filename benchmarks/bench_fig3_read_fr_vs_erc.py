"""Figure 3: read availability of TRAP-ERC vs TRAP-FR.

Regenerates the two curves for the calibrated configuration and checks
the paper's quantitative anchors:

* at p = 0.5: FR ~ 0.75 (exactly 0.7500), ERC ~ 0.63 (0.6351),
* no visible difference for p >= 0.8,
* ERC <= FR everywhere (for the calibrated configuration).

The bench also reports the exact Algorithm-2 availability and documents
the calibration scan that identified the configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.calibrate import scan_fig3_configs
from repro.bench.figures import FIG_K, FIG_N, fig3_series, fig_quorum
from repro.analysis import exact_read_erc
from repro.sim import mc_read_availability_erc


def test_fig3_series(benchmark, out_dir):
    series = benchmark(fig3_series)
    series.to_csv(out_dir / "fig3.csv")
    p = series.x
    fr = series.columns["TRAP-FR (eq.10)"]
    erc = series.columns["TRAP-ERC (eq.13)"]
    exact = series.columns["TRAP-ERC (exact)"]

    at_half = np.argmin(np.abs(p - 0.5))
    assert fr[at_half] == pytest.approx(0.75, abs=1e-9)
    assert erc[at_half] == pytest.approx(0.635, abs=1e-3)

    high = p >= 0.8
    assert np.max(np.abs(fr[high] - erc[high])) < 0.005

    # Below the convergence region eq. 13 sits under eq. 10; above it the
    # published approximation overshoots FR by < 0.2% (its P2 term ignores
    # the version-check requirement). The exact Algorithm-2 availability
    # is <= FR everywhere — reads are FR reads plus a decode condition.
    low = p <= 0.7
    assert np.all(erc[low] <= fr[low] + 1e-9)
    assert np.max(erc - fr) < 0.002
    assert np.all(exact <= fr + 1e-9)
    assert np.all(exact <= erc + 1e-9)  # eq. 13 upper-bounds the exact value


def test_fig3_calibration_recovers_canonical_config():
    best = scan_fig3_configs(n=FIG_N, top=1)[0]
    assert (best.k, best.a, best.b, best.h, best.w) == (FIG_K, 2, 3, 1, 3)
    assert best.score < 0.01


def test_fig3_exact_vs_mc():
    quorum = fig_quorum()
    est = mc_read_availability_erc(quorum, FIG_N, FIG_K, 0.5, trials=40_000, rng=1)
    assert est.contains(float(exact_read_erc(quorum, FIG_N, FIG_K, 0.5)), z=4)
