"""Performance benchmarks of the computational substrates.

Not a paper figure: throughput sanity for the GF(2^8) kernel, the erasure
codec, and the Monte-Carlo estimators, so regressions in the hot paths
are visible (`pytest benchmarks/ --benchmark-only`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.figures import fig_quorum
from repro.erasure import MDSCode, plan_update
from repro.gf import GF256, inverse, matmul
from repro.sim import mc_read_availability_erc, mc_write_availability

BLOCK = 1 << 16  # 64 KiB blocks: realistic storage-chunk size


@pytest.fixture(scope="module")
def code96() -> MDSCode:
    return MDSCode(9, 6)


@pytest.fixture(scope="module")
def data96() -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(6, BLOCK), dtype=np.int64).astype(np.uint8)


class TestGFKernels:
    def test_scalar_mul_64k(self, benchmark):
        rng = np.random.default_rng(1)
        vec = GF256.random_elements(rng, BLOCK)
        out = benchmark(GF256.scalar_mul, 37, vec)
        assert out.shape == (BLOCK,)

    def test_addmul_into_64k(self, benchmark):
        rng = np.random.default_rng(2)
        src = GF256.random_elements(rng, BLOCK)
        dst = GF256.random_elements(rng, BLOCK)

        def kernel():
            GF256.addmul_into(dst, 91, src)

        benchmark(kernel)

    def test_dot_6x64k(self, benchmark):
        rng = np.random.default_rng(3)
        coeffs = GF256.random_elements(rng, 6, nonzero=True)
        vectors = GF256.random_elements(rng, (6, BLOCK))
        out = benchmark(GF256.dot, coeffs, vectors)
        assert out.shape == (BLOCK,)

    def test_matrix_inverse_8x8(self, benchmark):
        rng = np.random.default_rng(4)
        while True:
            a = GF256.random_elements(rng, (8, 8))
            try:
                inverse(GF256, a)
                break
            except Exception:
                continue
        inv = benchmark(inverse, GF256, a)
        assert np.array_equal(matmul(GF256, a, inv), np.eye(8, dtype=np.uint8))


class TestErasureCodec:
    def test_encode_9_6(self, benchmark, code96, data96):
        stripe = benchmark(code96.encode, data96)
        assert stripe.shape == (9, BLOCK)

    def test_decode_9_6_with_losses(self, benchmark, code96, data96):
        stripe = code96.encode(data96)
        keep = [1, 2, 4, 5, 7, 8]  # lose blocks 0, 3, 6
        out = benchmark(code96.decode, keep, stripe[keep])
        assert np.array_equal(out, data96)

    def test_delta_update_plan(self, benchmark, code96, data96):
        rng = np.random.default_rng(5)
        new_block = rng.integers(0, 256, BLOCK, dtype=np.int64).astype(np.uint8)
        plan = benchmark(plan_update, code96, 2, data96[2], new_block)
        assert plan.touched_blocks() == 4

    def test_repair_single_node(self, benchmark, code96, data96):
        stripe = code96.encode(data96)
        survivors = list(range(1, 9))
        out = benchmark(code96.repair, [0], survivors, stripe[survivors])
        assert np.array_equal(out[0], stripe[0])

    def test_decode_repeated_survivor_set_cached(self, benchmark, code96, data96):
        # The decode-plan-cache hot path: same survivor set every call.
        stripe = code96.encode(data96)
        keep = [1, 2, 4, 5, 7, 8]
        frag = np.ascontiguousarray(stripe[keep])
        code96.decode(keep, frag)  # warm the plan cache
        out = benchmark(code96.decode, keep, frag)
        assert np.array_equal(out, data96)

    def test_encode_batch_16_stripes_small_blocks(self, benchmark, code96):
        rng = np.random.default_rng(6)
        batch = rng.integers(0, 256, size=(16, 6, 4096), dtype=np.int64).astype(
            np.uint8
        )
        stripes = benchmark(code96.encode_batch, batch)
        assert stripes.shape == (16, 9, 4096)

    def test_decode_batch_16_stripes_small_blocks(self, benchmark, code96):
        rng = np.random.default_rng(7)
        batch = rng.integers(0, 256, size=(16, 6, 4096), dtype=np.int64).astype(
            np.uint8
        )
        stripes = code96.encode_batch(batch)
        keep = [0, 2, 4, 6, 7, 8]
        frag = np.ascontiguousarray(stripes[:, keep])
        out = benchmark(code96.decode_batch, keep, frag)
        assert np.array_equal(out, batch)


class TestMonteCarloThroughput:
    def test_mc_write_100k(self, benchmark):
        est = benchmark(mc_write_availability, fig_quorum(), 0.7, 100_000, 7)
        assert 0 < est.mean < 1

    def test_mc_read_erc_100k(self, benchmark):
        est = benchmark(mc_read_availability_erc, fig_quorum(), 15, 8, 0.7, 100_000, 8)
        assert 0 < est.mean < 1
