"""Figure 1: the trapezoid layout illustration (Nbnode = 15, s_l = 2l+3).

Regenerates the layout rendering and asserts the structural facts the
figure conveys: three levels of sizes 3/5/7 summing to 15 nodes.
"""

from __future__ import annotations

from repro.bench.figures import fig1_layout
from repro.quorum import TrapezoidShape, shapes_for_nbnode


def test_fig1_layout(benchmark, out_dir):
    art = benchmark(fig1_layout)
    shape = TrapezoidShape(2, 3, 2)
    assert shape.level_sizes == (3, 5, 7)
    assert shape.total_nodes == 15
    assert shape in shapes_for_nbnode(15)
    assert "l=0" in art and "l=1" in art and "l=2" in art
    (out_dir / "fig1_layout.txt").write_text(art + "\n")
