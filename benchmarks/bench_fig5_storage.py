"""Figure 5: storage used / blocksize for TRAP-ERC vs TRAP-FR, n = 15.

Regenerates eqs. 14-15 across k and records the anchor the prose quotes
(k = 8: FR stores 8 blocks) alongside the eq.-15 value (ERC stores
1.875), noting the prose's internal inconsistency ("4 blocks / 50%").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import storage_saving
from repro.bench.figures import fig5_series


def test_fig5_series(benchmark, out_dir):
    series = benchmark(fig5_series)
    series.to_csv(out_dir / "fig5.csv")
    erc = series.columns["TRAP-ERC (n/k)"]
    fr = series.columns["TRAP-FR (n-k+1)"]

    k8 = np.argmin(np.abs(series.x - 8))
    assert fr[k8] == pytest.approx(8.0)  # the paper's quoted FR value
    assert erc[k8] == pytest.approx(15 / 8)  # eq. 15 (prose says "4")

    # ERC never exceeds FR; both decrease with k; ERC -> 1 as k -> n.
    assert np.all(erc <= fr + 1e-12)
    assert np.all(np.diff(erc) < 0)
    assert np.all(np.diff(fr) < 0)
    assert erc[-1] == pytest.approx(15 / 14)


def test_fig5_saving_at_k8():
    # The prose claims 50% saving at k = 8; eqs. 14-15 give ~77%.
    assert storage_saving(15, 8) == pytest.approx(1 - (15 / 8) / 8, abs=1e-12)
    assert storage_saving(15, 8) > 0.7
