"""Baseline comparison: trapezoid vs ROWA / Majority / Grid / Tree.

Places every classical quorum system from the paper's related-work
section on (approximately) the same node budget as the calibrated
trapezoid (8 nodes; the complete binary tree uses 7) and compares
read/write availability across p. Expected shape: ROWA dominates reads
and collapses on writes; Majority is symmetric; the trapezoid buys read
availability at moderate write cost — the motivation for its design.
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import default_p_grid, fig_quorum
from repro.quorum import (
    GridSystem,
    MajoritySystem,
    RowaSystem,
    TrapezoidSystem,
    TreeSystem,
)


def build_systems() -> dict[str, object]:
    return {
        "trapezoid": TrapezoidSystem(fig_quorum()),
        "majority-8": MajoritySystem(8),
        "rowa-8": RowaSystem(8),
        "grid-2x4": GridSystem(2, 4),
        "tree-h2": TreeSystem(2),  # 7 nodes
    }


def sweep(p: np.ndarray) -> dict[str, dict[str, np.ndarray]]:
    out: dict[str, dict[str, np.ndarray]] = {}
    for name, system in build_systems().items():
        out[name] = {
            "write": np.asarray(system.write_availability(p), dtype=np.float64),
            "read": np.asarray(system.read_availability(p), dtype=np.float64),
        }
    return out


def test_baseline_comparison(benchmark, out_dir):
    p = default_p_grid()
    table = benchmark(sweep, p)

    lines = ["p," + ",".join(f"{n}_write,{n}_read" for n in table)]
    for idx, pv in enumerate(p):
        cells = []
        for name in table:
            cells.append(f"{table[name]['write'][idx]:.6f}")
            cells.append(f"{table[name]['read'][idx]:.6f}")
        lines.append(f"{pv:.2f}," + ",".join(cells))
    (out_dir / "baselines.csv").write_text("\n".join(lines) + "\n")

    at7 = np.argmin(np.abs(p - 0.7))
    # ROWA: best-possible reads, worst-possible writes.
    for name in table:
        assert table["rowa-8"]["read"][at7] >= table[name]["read"][at7] - 1e-9
        assert table["rowa-8"]["write"][at7] <= table[name]["write"][at7] + 1e-9
    # The trapezoid's version check beats plain majority on reads.
    assert table["trapezoid"]["read"][at7] > table["majority-8"]["read"][at7]
    # Everything is a probability and monotone in p.
    for name, cols in table.items():
        for kind, vals in cols.items():
            assert np.all((vals >= -1e-12) & (vals <= 1 + 1e-12)), (name, kind)
            assert np.all(np.diff(vals) >= -1e-9), (name, kind)
