"""Ablation: generator construction and decode-algorithm choices.

Compares the two MDS constructions (systematic Vandermonde vs Cauchy) on
encode/decode throughput, and the two decode algorithms (Gauss-Jordan
matrix solve vs Lagrange interpolation) on reconstruction, verifying
they produce identical bytes. Design-choice evidence for DESIGN.md's
"MDS construction" decision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.erasure import MDSCode, lagrange_reconstruct

BLOCK = 1 << 14  # 16 KiB


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(8, BLOCK), dtype=np.int64).astype(np.uint8)


@pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
class TestConstructionThroughput:
    def test_encode(self, benchmark, data, construction):
        code = MDSCode(12, 8, construction=construction)
        stripe = benchmark(code.encode, data)
        assert stripe.shape == (12, BLOCK)

    def test_decode_max_erasures(self, benchmark, data, construction):
        code = MDSCode(12, 8, construction=construction)
        stripe = code.encode(data)
        keep = [1, 2, 3, 5, 6, 7, 9, 10]  # lose 4 = n - k blocks
        out = benchmark(code.decode, keep, stripe[keep])
        assert np.array_equal(out, data)


class TestDecodeAlgorithms:
    def test_matrix_reconstruct(self, benchmark, data):
        code = MDSCode(12, 8, construction="vandermonde")
        stripe = code.encode(data)
        keep = list(range(1, 9))
        out = benchmark(code.reconstruct_block, 0, keep, stripe[keep])
        assert np.array_equal(out, data[0])

    def test_lagrange_reconstruct(self, benchmark, data):
        code = MDSCode(12, 8, construction="vandermonde")
        stripe = code.encode(data)
        keep = list(range(1, 9))
        out = benchmark(lagrange_reconstruct, code.field, keep, stripe[keep], 0)
        assert np.array_equal(out, data[0])

    def test_agreement(self, data):
        code = MDSCode(12, 8, construction="vandermonde")
        stripe = code.encode(data)
        keep = [0, 2, 4, 5, 7, 8, 10, 11]
        for target in (1, 3, 9):
            a = code.reconstruct_block(target, keep, stripe[keep])
            b = lagrange_reconstruct(code.field, keep, stripe[keep], target)
            assert np.array_equal(a, b)
