"""Ablation: table-driven vs XOR-schedule (bit-matrix) encoding.

Compares the two encode implementations on throughput and reports the
XOR-cost metric of each construction's schedule — the quantity Cauchy-RS
papers optimize. Correctness equivalence is asserted (all encoders must
produce identical parity bytes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.erasure import MDSCode
from repro.gf import GF256, bitmatrix_matvec, xor_count

BLOCK = 1 << 12  # 4 KiB


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(6, BLOCK), dtype=np.int64).astype(np.uint8)


class TestEncodePaths:
    def test_table_encode(self, benchmark, data):
        code = MDSCode(9, 6)
        out = benchmark(code.encode_parity, data)
        assert out.shape == (3, BLOCK)

    def test_bitmatrix_encode(self, benchmark, data):
        code = MDSCode(9, 6)
        out = benchmark(bitmatrix_matvec, GF256, code.parity_matrix, data)
        assert np.array_equal(out, code.encode_parity(data))

    def test_split_table_encode(self, benchmark, data):
        from repro.gf import SplitTableMultiplier

        code = MDSCode(9, 6)
        mult = SplitTableMultiplier(GF256)

        def encode() -> np.ndarray:
            parity = np.zeros((3, BLOCK), dtype=np.uint8)
            for jj in range(3):
                for i in range(6):
                    mult.addmul_into(parity[jj], code.coefficient(6 + jj, i), data[i])
            return parity

        out = benchmark(encode)
        assert np.array_equal(out, code.encode_parity(data))


def test_xor_cost_table(out_dir):
    lines = ["n,k,construction,xor_count,xors_per_parity_bit"]
    for n, k in [(6, 4), (9, 6), (12, 8), (15, 8)]:
        for construction in ("vandermonde", "cauchy"):
            code = MDSCode(n, k, construction=construction)
            cost = xor_count(GF256, code.parity_matrix)
            per_bit = cost / ((n - k) * 8)
            lines.append(f"{n},{k},{construction},{cost},{per_bit:.2f}")
    (out_dir / "xor_schedule.csv").write_text("\n".join(lines) + "\n")
    assert len(lines) == 9
