"""Protocol operation benchmarks: Algorithms 1-2 end to end.

Measures coordinator-side latency (RPC fabric included) of writes, direct
reads, and decode-path reads on a healthy and a degraded (9, 6) stripe,
plus the per-operation message counts the paper's introduction worries
about (update cost of ERC schemes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import ReadCase, TrapErcProtocol, TrapFrProtocol
from repro.erasure import MDSCode, update_io_cost
from repro.quorum import TrapezoidQuorum, TrapezoidShape

BLOCK = 4096


@pytest.fixture()
def erc_setup():
    cluster = Cluster(9)
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    proto = TrapErcProtocol(cluster, MDSCode(9, 6), quorum)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(6, BLOCK), dtype=np.int64).astype(np.uint8)
    proto.initialize(data)
    return cluster, proto, rng


class TestErcOperations:
    def test_write_block(self, benchmark, erc_setup):
        _, proto, rng = erc_setup
        value = rng.integers(0, 256, BLOCK, dtype=np.int64).astype(np.uint8)
        result = benchmark(proto.write_block, 0, value)
        assert result.success

    def test_read_direct(self, benchmark, erc_setup):
        _, proto, _ = erc_setup
        result = benchmark(proto.read_block, 0)
        assert result.success and result.case == ReadCase.DIRECT

    def test_read_decode_path(self, benchmark, erc_setup):
        cluster, proto, _ = erc_setup
        cluster.fail(0)
        result = benchmark(proto.read_block, 0)
        assert result.success and result.case == ReadCase.DECODE

    def test_write_message_cost_matches_model(self, erc_setup):
        _, proto, rng = erc_setup
        value = rng.integers(0, 256, BLOCK, dtype=np.int64).astype(np.uint8)
        result = proto.write_block(0, value)
        # Algorithm 1 = one embedded read + one RPC per group node; the
        # group has n - k + 1 = 4 nodes (the update_io_cost write count).
        assert result.success
        cost = update_io_cost(9, 6)
        assert result.messages >= 2 * cost["writes"]


class TestFrOperations:
    def test_fr_write_block(self, benchmark):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        proto = TrapFrProtocol(cluster, 9, 6, quorum)
        rng = np.random.default_rng(1)
        proto.initialize(
            rng.integers(0, 256, size=(6, BLOCK), dtype=np.int64).astype(np.uint8)
        )
        value = rng.integers(0, 256, BLOCK, dtype=np.int64).astype(np.uint8)
        result = benchmark(proto.write_block, 0, value)
        assert result.success

    def test_fr_read_block(self, benchmark):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        proto = TrapFrProtocol(cluster, 9, 6, quorum)
        rng = np.random.default_rng(2)
        proto.initialize(
            rng.integers(0, 256, size=(6, BLOCK), dtype=np.int64).astype(np.uint8)
        )
        result = benchmark(proto.read_block, 0)
        assert result.success
