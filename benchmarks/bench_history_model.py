"""History-model experiment: staleness and the value of repair.

Beyond the paper's snapshot analysis: drive a TRAP-ERC stripe through an
exponential failure/repair trace (per-node availability ~ 0.75) and
measure achieved operation success with and without the anti-entropy
service. Without repair, recovered-but-stale parities shrink the usable
quorum pool; the tally quantifies the loss. Strict consistency must hold
in both runs.
"""

from __future__ import annotations

import pytest

from repro.cluster import exponential_trace
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import TraceSimConfig, TraceSimulation

QUORUM = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)  # (7, 4) stripe
HORIZON = 400.0


def run_pair() -> tuple[dict, dict]:
    trace = exponential_trace(7, mtbf=30.0, mttr=10.0, horizon=HORIZON, rng=3)
    base = dict(horizon=HORIZON, op_rate=1.5, read_fraction=0.5)
    no_repair = TraceSimulation(
        7, 4, QUORUM, trace, TraceSimConfig(**base), rng=4
    ).run()
    with_repair = TraceSimulation(
        7, 4, QUORUM, trace, TraceSimConfig(**base, repair_interval=20.0), rng=4
    ).run()
    return no_repair.summary(), with_repair.summary()


def test_history_model(benchmark, out_dir):
    no_repair, with_repair = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    lines = ["metric,no_repair,with_repair"]
    for key in sorted(no_repair):
        lines.append(f"{key},{no_repair[key]:.6f},{with_repair[key]:.6f}")
    (out_dir / "history_model.csv").write_text("\n".join(lines) + "\n")

    # Strict consistency always.
    assert no_repair["consistency_violations"] == 0
    assert with_repair["consistency_violations"] == 0
    # Anti-entropy actually ran and did not hurt availability.
    assert with_repair["repairs"] > 0
    assert (
        with_repair["write_availability"] >= no_repair["write_availability"] - 0.02
    )
    assert with_repair["read_availability"] >= no_repair["read_availability"] - 0.02
