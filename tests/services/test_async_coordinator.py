"""AsyncCoordinator lifecycle: timeout, retry, drain, shutdown, submit."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.node import StorageNode
from repro.errors import NodeUnavailableError, SimulationError
from repro.runtime import AsyncCoordinator, Request, RetryPolicy, Round
from repro.services import InprocTransport, StorageNodeService


def make_transports(num_nodes: int = 3):
    return {
        i: InprocTransport(StorageNodeService(StorageNode(i)))
        for i in range(num_nodes)
    }


def ping_round(node_ids, **kwargs) -> Round:
    return Round([Request(i, "ping") for i in node_ids], **kwargs)


def one_round_plan(round_):
    outcome = yield round_
    return outcome


class SlowTransport:
    """Wrapper delaying (or swallowing) calls to probe timeout/retry."""

    def __init__(self, inner, delay: float, fail_first: int = 0):
        self.inner = inner
        self.delay = delay
        self.fail_first = fail_first
        self.attempts = 0

    async def call(self, method, args=(), kwargs=None):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            await asyncio.sleep(self.delay)  # longer than the timeout
        return await self.inner.call(method, args, kwargs)

    async def aclose(self):
        await self.inner.aclose()


class TestLifecycle:
    def test_execute_gather_round(self):
        coordinator = AsyncCoordinator(make_transports())
        outcome = coordinator.execute(one_round_plan(ping_round([0, 1, 2])))
        assert outcome.satisfied
        assert [r.value for r in outcome.accepted] == [0, 1, 2]
        assert coordinator.messages == 6  # 3 sends + 3 replies
        assert coordinator.ops_completed == 1
        coordinator.close()

    def test_quorum_round_issues_lazily(self):
        coordinator = AsyncCoordinator(make_transports(5))
        outcome = coordinator.execute(
            one_round_plan(ping_round([0, 1, 2, 3, 4], need=2))
        )
        assert outcome.satisfied and len(outcome.accepted) == 2
        # quorum-first: only the first `need` requests ever left
        assert coordinator.messages == 4
        coordinator.close()

    def test_missing_transport_is_loud(self):
        coordinator = AsyncCoordinator({})
        with pytest.raises(SimulationError):
            coordinator.execute(one_round_plan(ping_round([0])))
        coordinator.close()

    def test_timeout_then_retry_succeeds(self):
        transports = make_transports(1)
        slow = SlowTransport(transports[0], delay=0.2, fail_first=1)
        coordinator = AsyncCoordinator(
            {0: slow}, policy=RetryPolicy(timeout=0.02, retries=1)
        )
        outcome = coordinator.execute(one_round_plan(ping_round([0])))
        assert outcome.satisfied
        assert coordinator.timeouts == 1
        assert coordinator.retries == 1
        assert slow.attempts == 2
        # 1 unanswered send + 1 answered send/reply pair
        assert coordinator.messages == 3
        coordinator.close()

    def test_exhausted_retries_fail_as_node_unavailable(self):
        transports = make_transports(1)
        slow = SlowTransport(transports[0], delay=0.5, fail_first=10)
        coordinator = AsyncCoordinator(
            {0: slow}, policy=RetryPolicy(timeout=0.02, retries=1)
        )
        outcome = coordinator.execute(one_round_plan(ping_round([0], need=1)))
        assert not outcome.satisfied
        (response,) = outcome.responses
        assert isinstance(response.error, NodeUnavailableError)
        assert coordinator.timeouts == 2
        coordinator.close()

    def test_closed_coordinator_refuses_plans(self):
        coordinator = AsyncCoordinator(make_transports(1))
        coordinator.execute(one_round_plan(ping_round([0])))
        loop = coordinator._ensure_loop()
        loop.run_until_complete(coordinator.aclose())
        with pytest.raises(SimulationError):
            coordinator.execute(one_round_plan(ping_round([0])))
        coordinator.close()

    def test_close_is_idempotent_and_closes_owned_loop(self):
        coordinator = AsyncCoordinator(make_transports(1))
        coordinator.execute(one_round_plan(ping_round([0])))
        coordinator.close()
        coordinator.close()
        assert coordinator._loop.is_closed()

    def test_execute_refused_inside_running_loop(self):
        coordinator = AsyncCoordinator(make_transports(1))

        async def go():
            with pytest.raises(SimulationError):
                coordinator.execute(one_round_plan(ping_round([0])))

        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(go())
        finally:
            loop.close()


class TestSubmitAndDrain:
    def test_sync_submit_completes_inline(self):
        coordinator = AsyncCoordinator(make_transports(1))
        seen = []
        handle = coordinator.submit(
            one_round_plan(ping_round([0])), on_done=seen.append
        )
        assert handle.done
        assert seen and seen[0].satisfied
        coordinator.close()

    def test_async_submit_interleaves(self):
        coordinator = AsyncCoordinator(make_transports(3))

        async def go():
            handles = [
                coordinator.submit(one_round_plan(ping_round([i])))
                for i in range(3)
            ]
            assert not any(h.done for h in handles)  # genuinely in flight
            await coordinator.drain()
            # drain awaits the straggler *attempt* tasks; give the
            # submit wrappers one tick to observe their results
            while not all(h.done for h in handles):
                await asyncio.sleep(0)
            return handles

        loop = coordinator._ensure_loop()
        handles = loop.run_until_complete(go())
        assert all(h.result.satisfied for h in handles)
        assert coordinator.max_in_flight == 3
        coordinator.close()

    def test_drain_counts_outstanding(self):
        coordinator = AsyncCoordinator(make_transports(1))

        async def go():
            return await coordinator.drain()

        assert coordinator._ensure_loop().run_until_complete(go()) == 0
        coordinator.close()

    def test_aclose_cancels_and_closes_transports(self):
        transports = make_transports(2)
        coordinator = AsyncCoordinator(transports)
        coordinator.execute(one_round_plan(ping_round([0, 1])))
        loop = coordinator._ensure_loop()
        loop.run_until_complete(coordinator.aclose())
        assert coordinator.closed
        assert all(t.closed for t in transports.values())
        assert len(coordinator.outstanding) == 0
        coordinator.close()
