"""TransportSpec validation, the wallclock scenario, and docs sync."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.api import (
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    TransportSpec,
)
from repro.errors import ConfigurationError
from repro.services import run_wallclock

DOCS = Path(__file__).resolve().parents[2] / "docs"


def wallclock_spec(**transport_kwargs) -> SystemSpec:
    from repro.api import WorkloadSpec

    return SystemSpec.trapezoid(
        9, 6, 2, 1, 1, 2,
        workload=WorkloadSpec(num_ops=24, block_length=16),
        scenario=ScenarioSpec(
            kind="wallclock", clients=3, think_time=0.0, horizon=60.0
        ),
        transport=TransportSpec(**transport_kwargs),
        seed=11,
    )


class TestTransportSpec:
    def test_defaults(self):
        spec = TransportSpec()
        assert spec.kind == "inproc"
        assert spec.port_base == 0
        assert spec.serialization == "json"

    def test_round_trip(self):
        spec = TransportSpec(kind="tcp", port_base=9300, serialization="json")
        assert TransportSpec.from_dict(spec.to_dict()) == spec

    def test_system_spec_embeds_transport(self):
        spec = wallclock_spec(kind="tcp", port_base=9300)
        again = SystemSpec.from_json(spec.to_json())
        assert again == spec
        assert again.transport.kind == "tcp"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "udp"},
            {"host": ""},
            {"port_base": 80},
            {"port_base": 70000},
            {"serialization": "pickle"},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TransportSpec(**kwargs)

    def test_wallclock_rejects_faultloads(self):
        from repro.api import FaultloadSpec

        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                kind="wallclock",
                faultload=FaultloadSpec(kind="churn", mtbf=10.0, mttr=1.0),
            )


class TestRunWallclock:
    def test_inproc_self_contained_run(self):
        report = run_wallclock(wallclock_spec())
        assert report["transport"]["kind"] == "inproc"
        assert report["remote"] is False
        assert report["ops_submitted"] == 24
        assert report["wall_duration"] > 0
        assert report["throughput"] > 0
        summary = report["summary"]
        assert summary["read_latency"]["count"] + summary["write_latency"]["count"] > 0
        assert report["operation_latency"]["p95"] > 0
        assert json.dumps(report)  # tidy: JSON-serializable end to end

    def test_tcp_self_contained_run(self):
        report = run_wallclock(wallclock_spec(kind="tcp", port_base=0))
        assert report["transport"]["kind"] == "tcp"
        assert report["ops_submitted"] == 24
        assert report["summary"]["read_latency"]["count"] > 0

    def test_scenario_runner_reports_both_columns(self):
        result = ScenarioRunner(wallclock_spec()).run()
        assert result.kind == "wallclock"
        comparison = result.data["comparison"]
        for column in ("predicted", "measured"):
            for op in ("read", "write"):
                row = comparison[column][op]
                assert set(row) == {"count", "p50", "p95", "p99"}
        # measured percentiles are real elapsed seconds — non-empty run
        assert comparison["measured"]["read"]["count"] > 0
        assert comparison["measured"]["read"]["p95"] > 0
        assert result.data["predicted"]["trace_hash"]
        # the embedded spec replays: the artifact is reproducible
        assert SystemSpec.from_dict(json.loads(result.to_json())["spec"])


class TestDocsSync:
    """The satellite contract: new surface is documented, pinned here."""

    def test_api_md_lists_every_scenario_kind(self):
        text = (DOCS / "API.md").read_text(encoding="utf-8")
        section = text.split("## Scenario kinds", 1)[1]
        documented = set(re.findall(r"^\| `([a-z_]+)` \|", section, flags=re.M))
        with pytest.raises(ConfigurationError) as err:
            ScenarioSpec(kind="definitely-not-a-kind")
        kinds = set(re.findall(r"'([a-z_]+)'", str(err.value)))
        assert kinds, "could not extract scenario kinds from the validator"
        assert documented >= kinds, f"undocumented kinds: {kinds - documented}"

    def test_api_md_documents_transport_spec(self):
        text = (DOCS / "API.md").read_text(encoding="utf-8")
        table = text.split("## The spec tree", 1)[1].split("###", 1)[0]
        assert "`TransportSpec`" in table
        for field in ("kind", "host", "port_base", "serialization"):
            assert field in table

    def test_runtime_md_wallclock_section(self):
        text = (DOCS / "RUNTIME.md").read_text(encoding="utf-8")
        assert "## Wall-clock backend" in text
        section = text.split("## Wall-clock backend", 1)[1].split("\n## ", 1)[0]
        for needed in (
            "AsyncCoordinator",
            "inproc",
            "tcp",
            "NodeUnavailableError",
            "repro serve",
            "wallclock",
        ):
            assert needed in section, f"Wall-clock backend section lacks {needed}"
