"""Wire protocol: value reduction, framing, error marshalling."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    NodeUnavailableError,
    ReproError,
    StaleNodeError,
)
from repro.services import (
    MAX_FRAME,
    Codec,
    RemoteCallError,
    WireError,
    decode_error,
    encode_error,
    frame,
    read_frame,
)


class TestCodecRoundTrip:
    def test_storage_key_tuples_survive(self):
        codec = Codec()
        message = {"args": [("erc-data", 3, 1), ("erc-parity", 0)]}
        decoded = codec.decode(codec.encode(message))
        assert decoded["args"] == [("erc-data", 3, 1), ("erc-parity", 0)]
        assert isinstance(decoded["args"][0], tuple)

    def test_ndarray_round_trip_dtype_and_shape(self):
        codec = Codec()
        value = np.arange(24, dtype=np.uint8).reshape(4, 6)
        decoded = codec.decode(codec.encode({"value": value}))
        assert np.array_equal(decoded["value"], value)
        assert decoded["value"].dtype == np.uint8
        assert decoded["value"].shape == (4, 6)

    def test_bytes_and_scalars(self):
        codec = Codec()
        message = {
            "b": b"\x00\xff",
            "i": np.int64(7),
            "f": np.float64(0.5),
            "n": None,
            "t": True,
        }
        decoded = codec.decode(codec.encode(message))
        assert decoded["b"] == b"\x00\xff"
        assert decoded["i"] == 7 and isinstance(decoded["i"], int)
        assert decoded["f"] == 0.5 and isinstance(decoded["f"], float)
        assert decoded["n"] is None and decoded["t"] is True

    def test_nested_structures(self):
        codec = Codec()
        message = {"versions": [(0, 1), (2, 3)], "map": {"inner": (1, b"x")}}
        decoded = codec.decode(codec.encode(message))
        assert decoded == {"versions": [(0, 1), (2, 3)], "map": {"inner": (1, b"x")}}

    def test_non_string_keys_rejected(self):
        with pytest.raises(WireError):
            Codec().encode({1: "x"})

    def test_marker_collision_rejected(self):
        with pytest.raises(WireError):
            Codec().encode({"__t__": "not a tuple"})

    def test_unencodable_value_rejected(self):
        with pytest.raises(WireError):
            Codec().encode({"obj": object()})

    def test_undecodable_body_raises_wire_error(self):
        with pytest.raises(WireError):
            Codec().decode(b"\xff not json")

    def test_unknown_serialization_rejected(self):
        with pytest.raises(ConfigurationError):
            Codec("pickle")

    def test_msgpack_gated_when_missing(self):
        # The container deliberately has no msgpack; requesting it must
        # fail loudly at construction, not at first encode.
        try:
            import msgpack  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigurationError):
                Codec("msgpack")
        else:  # pragma: no cover - environment-dependent branch
            codec = Codec("msgpack")
            value = {"args": [("k", 1)], "nd": np.arange(4, dtype=np.uint8)}
            decoded = codec.decode(codec.encode(value))
            assert decoded["args"] == [("k", 1)]


class TestFraming:
    def test_frame_prefixes_length(self):
        body = b"hello"
        framed = frame(body)
        assert framed == b"\x00\x00\x00\x05hello"

    def test_frame_rejects_oversize(self):
        class FakeBytes(bytes):
            def __len__(self):
                return MAX_FRAME + 1

        with pytest.raises(WireError):
            frame(FakeBytes())

    def _read(self, payload: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(payload)
            reader.feed_eof()
            return await read_frame(reader)

        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(go())
        finally:
            loop.close()

    def test_read_frame_round_trip(self):
        assert self._read(frame(b"body")) == b"body"

    def test_read_frame_clean_eof_returns_none(self):
        assert self._read(b"") is None

    def test_read_frame_mid_header_eof_raises(self):
        with pytest.raises(WireError):
            self._read(b"\x00\x00")

    def test_read_frame_mid_body_eof_raises(self):
        with pytest.raises(WireError):
            self._read(b"\x00\x00\x00\x09short")

    def test_read_frame_oversize_length_raises(self):
        with pytest.raises(WireError):
            self._read(b"\xff\xff\xff\xff")


class TestErrorMarshalling:
    def test_node_unavailable_round_trip_keeps_node_id(self):
        payload = encode_error(NodeUnavailableError(4))
        rebuilt = decode_error(payload)
        assert isinstance(rebuilt, NodeUnavailableError)
        assert rebuilt.node_id == 4

    def test_repro_error_subclass_by_name(self):
        rebuilt = decode_error(encode_error(StaleNodeError("stale write")))
        assert isinstance(rebuilt, StaleNodeError)
        assert "stale write" in str(rebuilt)

    def test_key_error_passthrough(self):
        rebuilt = decode_error(encode_error(KeyError("missing")))
        assert isinstance(rebuilt, KeyError)

    def test_unknown_type_becomes_remote_call_error(self):
        rebuilt = decode_error({"type": "ZeroDivisionError", "message": "boom"})
        assert isinstance(rebuilt, RemoteCallError)
        assert not isinstance(rebuilt, (NodeUnavailableError, KeyError))
        assert "ZeroDivisionError" in str(rebuilt)

    def test_remote_call_error_is_repro_error(self):
        # uncatchable by plans (no plan catches RemoteCallError), but
        # still inside the repo's exception hierarchy for callers
        assert issubclass(RemoteCallError, ReproError)
