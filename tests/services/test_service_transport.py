"""Node services and the two client transports, driven directly."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster.node import ByzantineBehavior, StorageNode
from repro.cluster.rng import make_rng
from repro.errors import ConfigurationError, NodeUnavailableError
from repro.services import (
    RPC_METHODS,
    InprocTransport,
    ServiceGroup,
    StorageNodeService,
    TcpTransport,
    connect_transports,
    mirror_state,
)


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()


def payload(seed: int = 0) -> np.ndarray:
    return make_rng(seed).integers(0, 256, 16, dtype=np.int64).astype(np.uint8)


class TestServiceDispatch:
    def test_ping_returns_node_id(self):
        service = StorageNodeService(StorageNode(3))
        reply = service.dispatch({"id": 1, "method": "ping"})
        assert reply == {"id": 1, "ok": True, "value": 3}

    def test_versioned_write_read_cycle(self):
        service = StorageNodeService(StorageNode(0))
        value = payload()
        ok = service.dispatch(
            {"id": 1, "method": "write_data", "args": ["k", value, 1]}
        )
        assert ok["ok"]
        back = service.dispatch({"id": 2, "method": "read_data", "args": ["k"]})
        got, version = back["value"]
        assert np.array_equal(got, value) and version == 1

    def test_unknown_method_is_configuration_error_reply(self):
        service = StorageNodeService(StorageNode(0))
        reply = service.dispatch({"id": 1, "method": "rm_rf"})
        assert not reply["ok"]
        assert reply["error"]["type"] == "ConfigurationError"
        assert service.faults == 1

    def test_internal_methods_not_dispatchable(self):
        assert "fail" not in RPC_METHODS
        assert "recover" not in RPC_METHODS
        service = StorageNodeService(StorageNode(0))
        assert not service.dispatch({"id": 1, "method": "fail"})["ok"]

    def test_dead_node_replies_node_unavailable(self):
        node = StorageNode(5)
        node.fail()
        service = StorageNodeService(node)
        reply = service.dispatch({"id": 1, "method": "data_version", "args": ["k"]})
        assert not reply["ok"]
        assert reply["error"]["type"] == "NodeUnavailableError"
        assert reply["error"]["node_id"] == 5

    def test_byzantine_node_corrupts_read_replies(self):
        node = StorageNode(0)
        node.put_data("k", payload(), 1)
        node.byzantine = ByzantineBehavior(
            mode="payload", rate=1.0, rng=make_rng(3)
        )
        service = StorageNodeService(node)
        reply = service.dispatch({"id": 1, "method": "read_data", "args": ["k"]})
        got, version = reply["value"]
        assert reply["ok"] and version == 1
        assert not np.array_equal(got, payload())  # the lie, as Network.rpc

    def test_malformed_frame_becomes_error_reply(self):
        service = StorageNodeService(StorageNode(0))
        reply = service.codec.decode(service.handle_frame(b"\xffgarbage"))
        assert not reply["ok"]


class TestInprocTransport:
    def test_full_wire_round_trip(self):
        service = StorageNodeService(StorageNode(0))
        transport = InprocTransport(service)

        async def go():
            await transport.call("write_data", ("k", payload(), 1))
            value, version = await transport.call("read_data", ("k",))
            await transport.aclose()
            return value, version

        value, version = run(go())
        assert np.array_equal(value, payload()) and version == 1
        assert transport.calls == 2

    def test_version_rpcs_round_trip_with_tuple_keys(self):
        # The verified read path interrogates versions before payloads
        # and keys metadata records by tuple; both version RPCs and the
        # tuple-key encoding must survive the wire codec end to end.
        service = StorageNodeService(StorageNode(0))
        transport = InprocTransport(service)
        meta_key = ("meta", "api-stripe", 0)
        vv = np.arange(6, dtype=np.int64)

        async def go():
            await transport.call("put_data", (meta_key, payload(), 4))
            await transport.call("put_parity", (("erc-parity", "s"), payload(), vv))
            data_v = await transport.call("data_version", (meta_key,))
            missing_v = await transport.call("data_version", (("meta", "x", 1),))
            parity_vv = await transport.call(
                "parity_versions", (("erc-parity", "s"),)
            )
            await transport.aclose()
            return data_v, missing_v, parity_vv

        data_v, missing_v, parity_vv = run(go())
        assert data_v == 4
        assert missing_v == -1  # absent key: the sentinel, not an error
        assert np.array_equal(np.asarray(parity_vv), vv)

    def test_fifo_resolution_order(self):
        service = StorageNodeService(StorageNode(0))
        transport = InprocTransport(service)

        async def go():
            tasks = [
                asyncio.ensure_future(transport.call("ping"))
                for _ in range(4)
            ]
            order = []
            for ix, task in enumerate(tasks):
                task.add_done_callback(lambda _t, ix=ix: order.append(ix))
            await asyncio.gather(*tasks)
            await transport.aclose()
            return order

        assert run(go()) == [0, 1, 2, 3]

    def test_error_replies_raise_on_the_client(self):
        node = StorageNode(2)
        node.fail()
        transport = InprocTransport(StorageNodeService(node))

        async def go():
            try:
                with pytest.raises(NodeUnavailableError):
                    await transport.call("data_version", ("k",))
            finally:
                await transport.aclose()

        run(go())

    def test_closed_transport_fails_fast(self):
        transport = InprocTransport(StorageNodeService(StorageNode(0)))

        async def go():
            await transport.aclose()
            with pytest.raises(NodeUnavailableError):
                await transport.call("ping")

        run(go())


class TestTcpTransport:
    def test_round_trip_over_real_sockets(self):
        nodes = [StorageNode(i) for i in range(3)]
        group = ServiceGroup(nodes, kind="tcp")

        async def go():
            await group.start()
            transports = group.make_transports()
            try:
                await transports[1].call("write_data", ("k", payload(), 1))
                value, version = await transports[1].call("read_data", ("k",))
                pong = await transports[2].call("ping")
                return value, version, pong
            finally:
                for transport in transports.values():
                    await transport.aclose()
                await group.aclose()

        value, version, pong = run(go())
        assert np.array_equal(value, payload()) and version == 1 and pong == 2

    def test_refused_connection_is_node_unavailable(self):
        # Nothing listens on this transport's port: the very first call
        # must fail fast with the dead-node error, no timeout involved.
        transport = TcpTransport(0, "127.0.0.1", 1)  # port 1: never open

        async def go():
            with pytest.raises(NodeUnavailableError):
                await transport.call("ping")
            await transport.aclose()

        run(go())
        assert transport.refusals == 1

    def test_lost_connection_reconnects_then_fails_fast(self):
        node = StorageNode(0)
        group = ServiceGroup([node], kind="tcp")

        async def go():
            await group.start()
            transport = group.make_transports()[0]
            assert await transport.call("ping") == 0
            # a severed connection reconnects transparently while the
            # service still listens...
            transport._drop_connection()
            assert await transport.call("ping") == 0
            # ...and once the fleet is gone, reconnection is refused:
            # the dead-node fast-fail, not a timeout
            await group.aclose()
            transport._drop_connection()
            with pytest.raises(NodeUnavailableError):
                await transport.call("ping")
            await transport.aclose()

        run(go())

    def test_connect_transports_layout(self):
        transports = connect_transports(3, port_base=9400)
        assert sorted(transports) == [0, 1, 2]
        assert transports[2].port == 9402
        assert transports[2].node_id == 2


class TestServiceGroupAndMirror:
    def test_inproc_group_serves_cluster_nodes(self):
        from repro.api import SystemSpec, build_system

        built = build_system(SystemSpec.trapezoid(9, 6, 2, 1, 1, 2, seed=3))
        built.initialize()
        group = ServiceGroup.for_cluster(built.cluster)
        transports = group.make_transports()
        assert len(transports) == 9

        async def go():
            # services wrap the very node objects initialize() seeded
            value, version = await transports[0].call(
                "read_data", (("erc-data", "api-stripe", 0),)
            )
            for transport in transports.values():
                await transport.aclose()
            return version

        assert run(go()) == 0

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceGroup([StorageNode(0)], kind="carrier-pigeon")

    def test_tcp_transports_require_start(self):
        group = ServiceGroup([StorageNode(0)], kind="tcp")
        with pytest.raises(ConfigurationError):
            group.make_transports()

    def test_mirror_state_replays_local_records(self):
        from repro.api import SystemSpec, build_system

        built = build_system(SystemSpec.trapezoid(9, 6, 2, 1, 1, 2, seed=3))
        built.initialize()
        fleet = [StorageNode(i) for i in range(9)]  # fresh and empty
        group = ServiceGroup(fleet, kind="tcp")

        async def go():
            await group.start()
            transports = group.make_transports()
            try:
                return await mirror_state(transports, built.cluster)
            finally:
                for transport in transports.values():
                    await transport.aclose()
                await group.aclose()

        pushed = run(go())
        assert pushed > 0
        for local, remote in zip(built.cluster.nodes, fleet):
            assert set(local._data) == set(remote._data)
            assert set(local._parity) == set(remote._parity)
