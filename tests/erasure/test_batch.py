"""Tests for the stripe-batched APIs and the decode-plan cache."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.erasure.code as code_mod
from repro.errors import ConfigurationError, DecodeError
from repro.gf import GF2m, inverse, matmul_reference
from repro.erasure import (
    MDSCode,
    join_payload_batch,
    split_payload_batch,
)


def make_batch(s: int, k: int, length: int = 16, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(s, k, length), dtype=np.int64).astype(np.uint8)


def seed_decode(code: MDSCode, indices, frag) -> np.ndarray:
    """The pre-kernel decode path: fresh Gauss-Jordan + reference matmul."""
    sub = code.generator[list(indices)]
    return matmul_reference(code.field, inverse(code.field, sub), frag)


class TestEncodeBatch:
    @pytest.mark.parametrize("s", [0, 1, 5])
    def test_matches_per_stripe_encode(self, s):
        code = MDSCode(9, 6)
        batch = make_batch(s, 6)
        out = code.encode_batch(batch)
        assert out.shape == (s, 9, 16)
        for i in range(s):
            assert np.array_equal(out[i], code.encode(batch[i]))

    def test_large_blocks_take_loop_path(self, monkeypatch):
        monkeypatch.setattr(code_mod, "FUSE_MAX_BLOCK", 8)
        code = MDSCode(6, 4)
        batch = make_batch(3, 4, length=32, seed=1)
        out = code.encode_batch(batch)
        for i in range(3):
            assert np.array_equal(out[i], code.encode(batch[i]))

    def test_no_parity_code(self):
        code = MDSCode(4, 4)
        batch = make_batch(2, 4, seed=2)
        assert np.array_equal(code.encode_batch(batch), batch)

    def test_bad_shape(self):
        code = MDSCode(6, 4)
        with pytest.raises(ConfigurationError):
            code.encode_batch(np.zeros((2, 5, 8), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            code.encode_batch(np.zeros((4, 8), dtype=np.uint8))


class TestDecodeBatch:
    def test_matches_per_stripe_decode(self):
        code = MDSCode(9, 6)
        batch = make_batch(4, 6, seed=3)
        stripes = code.encode_batch(batch)
        keep = [0, 2, 4, 6, 7, 8]
        out = code.decode_batch(keep, stripes[:, keep])
        assert np.array_equal(out, batch)
        for i in range(4):
            assert np.array_equal(out[i], code.decode(keep, stripes[i][keep]))

    def test_all_data_fast_path(self):
        code = MDSCode(9, 6)
        batch = make_batch(3, 6, seed=4)
        stripes = code.encode_batch(batch)
        idx = list(range(6))[::-1]
        out = code.decode_batch(idx, stripes[:, idx])
        assert np.array_equal(out, batch)

    def test_large_blocks_take_loop_path(self, monkeypatch):
        monkeypatch.setattr(code_mod, "FUSE_MAX_BLOCK", 8)
        code = MDSCode(6, 4)
        batch = make_batch(3, 4, length=32, seed=5)
        stripes = code.encode_batch(batch)
        keep = [1, 3, 4, 5]
        assert np.array_equal(code.decode_batch(keep, stripes[:, keep]), batch)

    def test_extra_fragments_ignored(self):
        code = MDSCode(8, 4)
        batch = make_batch(2, 4, seed=6)
        stripes = code.encode_batch(batch)
        idx = list(range(8))
        assert np.array_equal(code.decode_batch(idx, stripes), batch)

    def test_empty_batch(self):
        code = MDSCode(6, 4)
        out = code.decode_batch([1, 2, 4, 5], np.zeros((0, 4, 8), dtype=np.uint8))
        assert out.shape == (0, 4, 8)

    def test_errors(self):
        code = MDSCode(6, 4)
        frag = np.zeros((2, 3, 8), dtype=np.uint8)
        with pytest.raises(DecodeError):
            code.decode_batch([0, 1, 2], frag)  # too few
        with pytest.raises(DecodeError):
            code.decode_batch([0, 0, 1, 2], np.zeros((2, 4, 8), dtype=np.uint8))
        with pytest.raises(DecodeError):
            code.decode_batch([0, 1, 2, 9], np.zeros((2, 4, 8), dtype=np.uint8))

    @settings(max_examples=30, deadline=None)
    @given(
        nk=st.tuples(st.integers(2, 9), st.integers(1, 9)).filter(
            lambda t: t[0] >= t[1]
        ),
        s=st.integers(1, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_roundtrip_matches_seed_path(self, nk, s, seed):
        n, k = nk
        code = MDSCode(n, k)
        rng = np.random.default_rng(seed)
        batch = rng.integers(0, 256, size=(s, k, 12), dtype=np.int64).astype(np.uint8)
        stripes = code.encode_batch(batch)
        idx = rng.choice(n, size=k, replace=False).tolist()
        out = code.decode_batch(idx, stripes[:, idx])
        assert np.array_equal(out, batch)
        for i in range(s):
            assert np.array_equal(
                out[i], seed_decode(code, idx, stripes[i][idx])
            )


class TestDecodePlanCache:
    def test_repeated_decodes_hit_cache(self):
        code = MDSCode(9, 6)
        batch = make_batch(1, 6, seed=7)
        stripe = code.encode(batch[0])
        keep = [1, 2, 4, 5, 7, 8]
        for _ in range(5):
            assert np.array_equal(code.decode(keep, stripe[keep]), batch[0])
        info = code.plan_cache_info()
        assert info["misses"] == 1 and info["hits"] == 4 and info["size"] == 1

    def test_survivor_order_shares_one_plan(self):
        code = MDSCode(9, 6)
        data = make_batch(1, 6, seed=8)[0]
        stripe = code.encode(data)
        keep = [1, 2, 4, 5, 7, 8]
        assert np.array_equal(code.decode(keep, stripe[keep]), data)
        shuffled = [8, 4, 1, 7, 2, 5]
        assert np.array_equal(code.decode(shuffled, stripe[shuffled]), data)
        info = code.plan_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_lru_eviction(self):
        code = MDSCode(8, 4, plan_cache_size=2)
        data = make_batch(1, 4, seed=9)[0]
        stripe = code.encode(data)
        sets = [[1, 2, 3, 4], [2, 3, 4, 5], [3, 4, 5, 6]]
        for keep in sets:
            assert np.array_equal(code.decode(keep, stripe[keep]), data)
        info = code.plan_cache_info()
        assert info["size"] == 2 and info["misses"] == 3
        # The first survivor set was evicted: decoding it again re-inverts.
        assert np.array_equal(code.decode(sets[0], stripe[sets[0]]), data)
        assert code.plan_cache_misses == 4

    def test_cache_disabled(self):
        code = MDSCode(8, 4, plan_cache_size=0)
        data = make_batch(1, 4, seed=10)[0]
        stripe = code.encode(data)
        keep = [1, 3, 5, 7]
        for _ in range(3):
            assert np.array_equal(code.decode(keep, stripe[keep]), data)
        info = code.plan_cache_info()
        assert info["size"] == 0 and info["misses"] == 3 and info["hits"] == 0

    def test_clear_plan_cache(self):
        code = MDSCode(8, 4)
        data = make_batch(1, 4, seed=11)[0]
        stripe = code.encode(data)
        keep = [0, 2, 5, 6]
        code.decode(keep, stripe[keep])
        code.clear_plan_cache()
        assert code.plan_cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "maxsize": 128,
        }

    def test_plan_requires_k_indices(self):
        code = MDSCode(6, 4)
        with pytest.raises(DecodeError):
            code.decode_plan([0, 1, 2])

    def test_plan_rejects_bad_indices(self):
        # Regression: negative/out-of-range/duplicate survivors must raise,
        # not silently cache a plan over the wrong generator rows.
        code = MDSCode(6, 4)
        with pytest.raises(DecodeError):
            code.decode_plan([-1, 0, 1, 2])
        with pytest.raises(DecodeError):
            code.decode_plan([0, 1, 2, 6])
        with pytest.raises(DecodeError):
            code.decode_plan([0, 0, 1, 2])
        assert code.plan_cache_info()["size"] == 0

    def test_plan_structure(self):
        code = MDSCode(9, 6)
        plan = code.decode_plan([8, 1, 4, 7, 2, 5])
        assert plan.indices == (1, 2, 4, 5, 7, 8)
        assert plan.missing == (0, 3)
        assert dict(plan.present) == {1: 0, 2: 1, 4: 2, 5: 3}
        assert plan.solve_rows.shape == (2, 6)
        assert np.array_equal(plan.solve_rows, plan.matrix[[0, 3]])

    def test_recode_rows_cached_and_correct(self):
        code = MDSCode(9, 6)
        data = make_batch(1, 6, seed=12)[0]
        stripe = code.encode(data)
        keep = [0, 1, 2, 3, 4, 6]
        plan = code.decode_plan(keep)
        row = plan.recode_row(code, 8)
        assert row is plan.recode_row(code, 8)  # cached object
        out = code.reconstruct_block(8, keep, stripe[keep])
        assert np.array_equal(out, stripe[8])

    @settings(max_examples=25, deadline=None)
    @given(
        width=st.sampled_from([4, 8, 16]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_cached_decode_identical_to_seed_path_across_fields(self, width, seed):
        gf = GF2m(width)
        code = MDSCode(7, 4, field=gf)
        rng = np.random.default_rng(seed)
        data = gf.random_elements(rng, (4, 10))
        stripe = code.encode(data)
        idx = rng.choice(7, size=4, replace=False).tolist()
        first = code.decode(idx, stripe[idx])
        again = code.decode(idx, stripe[idx])  # cache hit
        expect = seed_decode(code, idx, stripe[idx])
        assert np.array_equal(first, expect)
        assert np.array_equal(again, expect)


class TestPayloadBatch:
    def test_roundtrip(self):
        payloads = [b"hello world", b"", b"x" * 37]
        batch, lengths = split_payload_batch(payloads, k=4)
        assert batch.shape[0] == 3 and batch.shape[1] == 4
        assert join_payload_batch(batch, lengths) == payloads

    def test_empty_batch(self):
        batch, lengths = split_payload_batch([], k=3)
        assert batch.shape == (0, 3, 1) and lengths == []
        assert join_payload_batch(batch, lengths) == []

    def test_encode_decode_through_batch(self):
        code = MDSCode(6, 4)
        payloads = [bytes([i] * (10 + i)) for i in range(5)]
        batch, lengths = split_payload_batch(payloads, k=4)
        stripes = code.encode_batch(batch)
        keep = [0, 2, 4, 5]
        out = code.decode_batch(keep, stripes[:, keep])
        assert join_payload_batch(out, lengths) == payloads

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            split_payload_batch([b"x"], k=0)
        with pytest.raises(ConfigurationError):
            join_payload_batch(np.zeros((2, 4), dtype=np.uint8), [1, 2])
        with pytest.raises(ConfigurationError):
            join_payload_batch(np.zeros((2, 4, 2), dtype=np.uint8), [1])
