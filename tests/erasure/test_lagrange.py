"""Tests for the Lagrange-interpolation decode path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import MDSCode, lagrange_coefficients, lagrange_reconstruct
from repro.errors import CodeError, DecodeError
from repro.gf import GF256, GF2m


class TestCoefficients:
    def test_sum_to_one_on_constants(self):
        # For the constant polynomial f = c, sum of weights must be 1.
        coeffs = lagrange_coefficients(GF256, [1, 2, 3], 7)
        acc = 0
        for c in coeffs:
            acc ^= int(c)
        assert acc == 1

    def test_target_equal_to_point_gives_indicator(self):
        coeffs = lagrange_coefficients(GF256, [5, 9, 11], 9)
        assert coeffs.tolist() == [0, 1, 0]

    def test_distinct_points_required(self):
        with pytest.raises(CodeError):
            lagrange_coefficients(GF256, [1, 1, 2], 5)

    def test_range_checked(self):
        with pytest.raises(CodeError):
            lagrange_coefficients(GF256, [1, 256], 5)
        with pytest.raises(CodeError):
            lagrange_coefficients(GF256, [1, 2], 300)


class TestReconstruct:
    def test_matches_matrix_decode_all_subsets(self):
        """The independent polynomial path must agree with Gauss-Jordan."""
        from itertools import combinations

        code = MDSCode(7, 4, construction="vandermonde")
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=(4, 16), dtype=np.int64).astype(np.uint8)
        stripe = code.encode(data)
        for keep in combinations(range(7), 4):
            for target in range(7):
                via_matrix = code.reconstruct_block(target, list(keep), stripe[list(keep)])
                via_poly = lagrange_reconstruct(
                    GF256, list(keep), stripe[list(keep)], target
                )
                assert np.array_equal(via_matrix, via_poly), (keep, target)

    def test_known_point_shortcut(self):
        code = MDSCode(6, 3)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=(3, 8), dtype=np.int64).astype(np.uint8)
        stripe = code.encode(data)
        out = lagrange_reconstruct(GF256, [0, 2, 4], stripe[[0, 2, 4]], 2)
        assert np.array_equal(out, stripe[2])

    def test_shape_validation(self):
        with pytest.raises(DecodeError):
            lagrange_reconstruct(GF256, [0, 1], np.zeros((3, 4), dtype=np.uint8), 2)

    def test_other_field_widths(self):
        gf = GF2m(16)
        code = MDSCode(6, 3, field=gf)
        rng = np.random.default_rng(2)
        data = gf.random_elements(rng, (3, 8))
        stripe = code.encode(data)
        out = lagrange_reconstruct(gf, [1, 3, 5], stripe[[1, 3, 5]], 0)
        assert np.array_equal(out, stripe[0])

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nk=st.tuples(st.integers(3, 10), st.integers(1, 10)).filter(
            lambda t: t[0] > t[1]
        ),
    )
    def test_poly_matrix_agreement_property(self, seed, nk):
        n, k = nk
        code = MDSCode(n, k, construction="vandermonde")
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(k, 8), dtype=np.int64).astype(np.uint8)
        stripe = code.encode(data)
        keep = sorted(rng.choice(n, size=k, replace=False).tolist())
        target = int(rng.integers(0, n))
        via_matrix = code.reconstruct_block(target, keep, stripe[keep])
        via_poly = lagrange_reconstruct(code.field, keep, stripe[keep], target)
        assert np.array_equal(via_matrix, via_poly)
