"""Tests for MDSCode encode/decode/repair and delta updates."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DecodeError
from repro.gf import GF2m
from repro.erasure import MDSCode


def make_data(k: int, length: int = 32, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, length), dtype=np.int64).astype(np.uint8)


@pytest.fixture(params=["vandermonde", "cauchy"])
def code(request) -> MDSCode:
    return MDSCode(9, 6, construction=request.param)


class TestConstruction:
    def test_defaults(self):
        code = MDSCode(6, 4)
        assert code.field.width == 8
        assert code.construction == "vandermonde"
        assert code.m == 2

    def test_invalid_nk(self):
        with pytest.raises(ConfigurationError):
            MDSCode(3, 4)
        with pytest.raises(ConfigurationError):
            MDSCode(3, 0)

    def test_generator_read_only(self, code):
        with pytest.raises(ValueError):
            code.generator[0, 0] = 1

    def test_coefficient_accessor(self, code):
        for j in range(code.k, code.n):
            for i in range(code.k):
                assert code.coefficient(j, i) == int(code.generator[j, i])

    def test_coefficient_bounds(self, code):
        with pytest.raises(ConfigurationError):
            code.coefficient(0, 0)  # j must be a parity index
        with pytest.raises(ConfigurationError):
            code.coefficient(code.k, code.k)

    def test_is_data(self, code):
        assert code.is_data(0) and code.is_data(code.k - 1)
        assert not code.is_data(code.k)
        with pytest.raises(ConfigurationError):
            code.is_data(code.n)

    def test_storage_overhead(self):
        assert MDSCode(15, 8).storage_overhead() == pytest.approx(15 / 8)


class TestEncode:
    def test_systematic_rows(self, code):
        data = make_data(code.k)
        stripe = code.encode(data)
        assert stripe.shape == (code.n, data.shape[1])
        assert np.array_equal(stripe[: code.k], data)

    def test_parity_matches_eq1(self, code):
        data = make_data(code.k, seed=1)
        stripe = code.encode(data)
        for j in range(code.k, code.n):
            expect = np.zeros(data.shape[1], dtype=np.uint8)
            for i in range(code.k):
                expect ^= code.field.scalar_mul(code.coefficient(j, i), data[i])
            assert np.array_equal(stripe[j], expect)

    def test_encode_parity_only(self, code):
        data = make_data(code.k, seed=2)
        assert np.array_equal(code.encode_parity(data), code.encode(data)[code.k :])

    def test_encode_block(self, code):
        data = make_data(code.k, seed=3)
        stripe = code.encode(data)
        for idx in range(code.n):
            assert np.array_equal(code.encode_block(idx, data), stripe[idx])

    def test_encode_block_bounds(self, code):
        with pytest.raises(ConfigurationError):
            code.encode_block(code.n, make_data(code.k))

    def test_bad_data_shape(self, code):
        with pytest.raises(ConfigurationError):
            code.encode(np.zeros((code.k + 1, 8), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            code.encode(np.zeros(8, dtype=np.uint8))

    def test_zero_data_gives_zero_parity(self, code):
        stripe = code.encode(np.zeros((code.k, 16), dtype=np.uint8))
        assert not stripe.any()

    def test_k_equals_n_no_parity(self):
        code = MDSCode(4, 4)
        data = make_data(4)
        assert np.array_equal(code.encode(data), data)
        assert code.encode_parity(data).shape == (0, data.shape[1])


class TestDecode:
    def test_all_data_fast_path(self, code):
        data = make_data(code.k, seed=4)
        stripe = code.encode(data)
        idx = list(range(code.k))
        assert np.array_equal(code.decode(idx, stripe[idx]), data)

    def test_all_data_fast_path_shuffled(self, code):
        data = make_data(code.k, seed=5)
        stripe = code.encode(data)
        idx = list(range(code.k))[::-1]
        assert np.array_equal(code.decode(idx, stripe[idx]), data)

    def test_every_k_subset_decodes(self):
        code = MDSCode(8, 4)
        data = make_data(4, seed=6)
        stripe = code.encode(data)
        for subset in combinations(range(8), 4):
            idx = list(subset)
            assert np.array_equal(code.decode(idx, stripe[idx]), data), subset

    def test_extra_fragments_ignored(self, code):
        data = make_data(code.k, seed=7)
        stripe = code.encode(data)
        idx = list(range(code.n))
        assert np.array_equal(code.decode(idx, stripe[idx]), data)

    def test_too_few_fragments(self, code):
        data = make_data(code.k, seed=8)
        stripe = code.encode(data)
        idx = list(range(code.k - 1))
        with pytest.raises(DecodeError):
            code.decode(idx, stripe[idx])

    def test_duplicate_indices_rejected(self, code):
        data = make_data(code.k, seed=9)
        stripe = code.encode(data)
        idx = [0] * code.k
        with pytest.raises(DecodeError):
            code.decode(idx, stripe[idx])

    def test_out_of_range_index(self, code):
        frag = np.zeros((code.k, 8), dtype=np.uint8)
        with pytest.raises(DecodeError):
            code.decode([code.n] + list(range(code.k - 1)), frag)

    def test_fragment_shape_mismatch(self, code):
        with pytest.raises(DecodeError):
            code.decode(list(range(code.k)), np.zeros((code.k - 1, 8), dtype=np.uint8))

    def test_corrupted_fragment_changes_output(self, code):
        # Erasure codes do not detect corruption: flipping a byte in a used
        # fragment must change the decode result (documenting semantics).
        data = make_data(code.k, seed=10)
        stripe = code.encode(data)
        idx = list(range(1, code.k + 1))  # includes one parity row
        frags = stripe[idx].copy()
        frags[-1, 0] ^= 0xFF
        out = code.decode(idx, frags)
        assert not np.array_equal(out, data)


class TestReconstructRepair:
    def test_reconstruct_present_block(self, code):
        data = make_data(code.k, seed=11)
        stripe = code.encode(data)
        idx = list(range(code.k, code.n)) + [2]
        out = code.reconstruct_block(2, idx, stripe[idx])
        assert np.array_equal(out, data[2])

    def test_reconstruct_missing_data_block(self, code):
        data = make_data(code.k, seed=12)
        stripe = code.encode(data)
        idx = [i for i in range(code.n) if i != 0][: code.k]
        out = code.reconstruct_block(0, idx, stripe[idx])
        assert np.array_equal(out, data[0])

    def test_reconstruct_missing_parity_block(self, code):
        data = make_data(code.k, seed=13)
        stripe = code.encode(data)
        target = code.n - 1
        idx = list(range(code.k))
        out = code.reconstruct_block(target, idx, stripe[idx])
        assert np.array_equal(out, stripe[target])

    def test_repair_multiple_losses(self, code):
        data = make_data(code.k, seed=14)
        stripe = code.encode(data)
        lost = [0, code.k]  # one data + one parity
        survivors = [i for i in range(code.n) if i not in lost]
        repaired = code.repair(lost, survivors, stripe[survivors])
        assert np.array_equal(repaired[0], stripe[0])
        assert np.array_equal(repaired[1], stripe[code.k])

    def test_repair_up_to_nk_losses(self):
        code = MDSCode(9, 6)
        data = make_data(6, seed=15)
        stripe = code.encode(data)
        lost = [1, 4, 7]  # n - k = 3 losses
        survivors = [i for i in range(9) if i not in lost]
        repaired = code.repair(lost, survivors, stripe[survivors])
        for pos, b in enumerate(lost):
            assert np.array_equal(repaired[pos], stripe[b])


class TestDeltaUpdates:
    def test_delta_is_xor(self, code):
        old = make_data(1, seed=16)[0]
        new = make_data(1, seed=17)[0]
        assert np.array_equal(code.delta(old, new), old ^ new)

    def test_delta_shape_mismatch(self, code):
        with pytest.raises(ConfigurationError):
            code.delta(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8))

    def test_incremental_update_equals_reencode(self, code):
        data = make_data(code.k, seed=18)
        stripe = code.encode(data)
        new_block = make_data(1, seed=19)[0]
        i = 3
        delta = code.delta(data[i], new_block)
        for j in range(code.k, code.n):
            code.apply_parity_delta(stripe[j], j, i, delta)
        stripe[i] = new_block
        data2 = data.copy()
        data2[i] = new_block
        assert np.array_equal(stripe, code.encode(data2))

    def test_sequential_updates_commute_with_reencode(self, code):
        # Several updates to different blocks, applied as deltas, must land
        # on the same stripe as a re-encode (Galois-field commutativity the
        # paper invokes for "in-place updates").
        data = make_data(code.k, seed=20)
        stripe = code.encode(data)
        current = data.copy()
        rng = np.random.default_rng(21)
        for step in range(8):
            i = int(rng.integers(0, code.k))
            new_block = rng.integers(0, 256, size=data.shape[1], dtype=np.int64).astype(np.uint8)
            delta = code.delta(current[i], new_block)
            for j in range(code.k, code.n):
                code.apply_parity_delta(stripe[j], j, i, delta)
            stripe[i] = new_block
            current[i] = new_block
        assert np.array_equal(stripe, code.encode(current))

    def test_parity_delta_value(self, code):
        delta = make_data(1, seed=22)[0]
        j = code.k
        out = code.parity_delta(j, 0, delta)
        assert np.array_equal(out, code.field.scalar_mul(code.coefficient(j, 0), delta))

    def test_noop_update(self, code):
        block = make_data(1, seed=23)[0]
        delta = code.delta(block, block)
        assert not delta.any()
        parity = make_data(1, seed=24)[0].copy()
        before = parity.copy()
        code.apply_parity_delta(parity, code.k, 0, delta)
        assert np.array_equal(parity, before)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        nk=st.tuples(st.integers(2, 10), st.integers(1, 10)).filter(lambda t: t[0] >= t[1]),
        seed=st.integers(0, 2**31 - 1),
        construction=st.sampled_from(["vandermonde", "cauchy"]),
    )
    def test_random_k_subset_roundtrip(self, nk, seed, construction):
        n, k = nk
        code = MDSCode(n, k, construction=construction)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(k, 16), dtype=np.int64).astype(np.uint8)
        stripe = code.encode(data)
        idx = rng.choice(n, size=k, replace=False).tolist()
        assert np.array_equal(code.decode(idx, stripe[idx]), data)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), width=st.sampled_from([4, 8, 16]))
    def test_update_equivalence_across_fields(self, seed, width):
        gf = GF2m(width)
        code = MDSCode(7, 4, field=gf)
        rng = np.random.default_rng(seed)
        data = gf.random_elements(rng, (4, 8))
        stripe = code.encode(data)
        i = int(rng.integers(0, 4))
        new_block = gf.random_elements(rng, 8)
        delta = code.delta(data[i], new_block)
        for j in range(4, 7):
            code.apply_parity_delta(stripe[j], j, i, delta)
        stripe[i] = new_block
        data[i] = new_block
        assert np.array_equal(stripe, code.encode(data))
