"""Tests for MDS generator-matrix constructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gf import GF256, GF2m, identity
from repro.erasure.generator import (
    CONSTRUCTIONS,
    build_generator,
    systematic_cauchy,
    systematic_vandermonde,
    verify_mds,
)

PARAMS = [(3, 1), (4, 2), (5, 3), (6, 4), (9, 6), (12, 8), (15, 8), (15, 12)]


@pytest.mark.parametrize("construction", sorted(CONSTRUCTIONS))
class TestConstructions:
    @pytest.mark.parametrize("n,k", PARAMS)
    def test_systematic(self, construction, n, k):
        g = build_generator(GF256, n, k, construction)
        assert g.shape == (n, k)
        assert np.array_equal(g[:k], identity(GF256, k))

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 4), (9, 6), (8, 3)])
    def test_mds_exhaustive(self, construction, n, k):
        g = build_generator(GF256, n, k, construction)
        assert verify_mds(GF256, g)

    def test_k_equals_n(self, construction):
        g = build_generator(GF256, 4, 4, construction)
        assert np.array_equal(g, identity(GF256, 4))

    def test_k_equals_one(self, construction):
        # (n, 1) is replication: every coefficient must be nonzero.
        g = build_generator(GF256, 5, 1, construction)
        assert np.all(g != 0)
        assert verify_mds(GF256, g)

    def test_small_field(self, construction):
        gf = GF2m(4)
        g = build_generator(gf, 10, 6, construction)
        assert verify_mds(gf, g)

    def test_rejects_bad_params(self, construction):
        with pytest.raises(ConfigurationError):
            build_generator(GF256, 2, 3, construction)
        with pytest.raises(ConfigurationError):
            build_generator(GF256, 3, 0, construction)

    def test_field_capacity_limit(self, construction):
        gf = GF2m(2)  # only 4 elements
        with pytest.raises(ConfigurationError):
            build_generator(gf, 5, 2, construction)


class TestBuildGenerator:
    def test_unknown_construction(self):
        with pytest.raises(ConfigurationError):
            build_generator(GF256, 6, 4, "fountain")

    def test_vandermonde_differs_from_cauchy(self):
        gv = systematic_vandermonde(GF256, 6, 3)
        gc = systematic_cauchy(GF256, 6, 3)
        assert not np.array_equal(gv, gc)

    def test_verify_mds_detects_violation(self):
        # Duplicate a parity row: the two equal rows form a singular pair
        # with any k-2 others, so the check must fail.
        g = systematic_vandermonde(GF256, 6, 3).copy()
        g[4] = g[5]
        assert not verify_mds(GF256, g)

    def test_verify_mds_sampled_path(self):
        g = systematic_cauchy(GF256, 24, 12)
        assert verify_mds(GF256, g, exhaustive_limit=10, samples=60)

    def test_paper_fig1_parameters(self):
        # The paper's running example: Nbnode = n - k + 1 = 15.
        # With k = 8 that is n = 22: a (22, 8) code must be constructible.
        g = build_generator(GF256, 22, 8, "vandermonde")
        assert verify_mds(GF256, g, exhaustive_limit=0, samples=200)
