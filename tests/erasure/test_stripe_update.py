"""Tests for stripe layout helpers and update planning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.erasure import (
    MDSCode,
    StripeLayout,
    join_payload,
    plan_update,
    split_payload,
    update_io_cost,
)


class TestSplitJoin:
    def test_roundtrip_exact_multiple(self):
        payload = bytes(range(24))
        blocks, length = split_payload(payload, 4)
        assert blocks.shape == (4, 6)
        assert join_payload(blocks, length) == payload

    def test_roundtrip_with_padding(self):
        payload = b"hello, trapezoid world"
        blocks, length = split_payload(payload, 5)
        assert length == len(payload)
        assert join_payload(blocks, length) == payload

    def test_empty_payload(self):
        blocks, length = split_payload(b"", 3)
        assert blocks.shape == (3, 1)
        assert length == 0
        assert join_payload(blocks, length) == b""

    def test_single_byte(self):
        blocks, length = split_payload(b"x", 4)
        assert blocks.shape == (4, 1)
        assert join_payload(blocks, length) == b"x"

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            split_payload(b"abc", 0)

    def test_join_validation(self):
        with pytest.raises(ConfigurationError):
            join_payload(np.zeros(4, dtype=np.uint8), 2)
        with pytest.raises(ConfigurationError):
            join_payload(np.zeros((2, 2), dtype=np.uint8), 5)

    @settings(max_examples=50)
    @given(st.binary(max_size=300), st.integers(1, 12))
    def test_roundtrip_property(self, payload, k):
        blocks, length = split_payload(payload, k)
        assert blocks.shape[0] == k
        assert join_payload(blocks, length) == payload


class TestStripeLayout:
    def test_default_node_ids(self):
        layout = StripeLayout(6, 4)
        assert layout.node_ids == (0, 1, 2, 3, 4, 5)

    def test_custom_node_ids(self):
        layout = StripeLayout(4, 2, node_ids=(10, 11, 12, 13))
        assert layout.node_of_block(0) == 10
        assert layout.block_of_node(12) == 2

    def test_data_and_parity_nodes(self):
        layout = StripeLayout(6, 4)
        assert layout.data_nodes == (0, 1, 2, 3)
        assert layout.parity_nodes == (4, 5)

    def test_consistency_group_matches_paper(self):
        # Block i's group is {N_i} u {parity nodes}: size n - k + 1 (eq. 5).
        layout = StripeLayout(9, 6)
        for i in range(6):
            group = layout.consistency_group(i)
            assert group[0] == i
            assert group[1:] == (6, 7, 8)
            assert len(group) == layout.group_size == 4

    def test_consistency_group_bounds(self):
        layout = StripeLayout(6, 4)
        with pytest.raises(ConfigurationError):
            layout.consistency_group(4)  # parity index is not a data block

    def test_block_of_unknown_node(self):
        layout = StripeLayout(4, 2)
        with pytest.raises(ConfigurationError):
            layout.block_of_node(99)

    def test_node_of_block_bounds(self):
        layout = StripeLayout(4, 2)
        with pytest.raises(ConfigurationError):
            layout.node_of_block(4)

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(3, 2, node_ids=(1, 1, 2))

    def test_wrong_count_rejected(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(3, 2, node_ids=(1, 2))

    def test_invalid_nk(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(2, 3)


class TestUpdatePlan:
    def test_plan_matches_reencode(self):
        code = MDSCode(9, 6)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=(6, 16), dtype=np.int64).astype(np.uint8)
        stripe = code.encode(data)
        new_block = rng.integers(0, 256, size=16, dtype=np.int64).astype(np.uint8)
        plan = plan_update(code, 2, data[2], new_block)
        assert plan.touched_blocks() == 4  # target + 3 parities = n - k + 1
        stripe[2] = plan.new_block
        for j, buf in plan.parity_deltas.items():
            stripe[j] ^= buf
        data[2] = new_block
        assert np.array_equal(stripe, code.encode(data))

    def test_noop_plan(self):
        code = MDSCode(6, 4)
        block = np.arange(8, dtype=np.uint8)
        plan = plan_update(code, 0, block, block.copy())
        assert plan.is_noop
        assert all(not b.any() for b in plan.parity_deltas.values())

    def test_plan_index_bounds(self):
        code = MDSCode(6, 4)
        blk = np.zeros(8, dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            plan_update(code, 4, blk, blk)  # parity index not writable

    def test_new_block_is_copied(self):
        code = MDSCode(6, 4)
        old = np.zeros(8, dtype=np.uint8)
        new = np.ones(8, dtype=np.uint8)
        plan = plan_update(code, 0, old, new)
        new[0] = 99
        assert plan.new_block[0] == 1


class TestUpdateIOCost:
    def test_paper_96_example(self):
        # "a (9,6)-MDS will require 8 read and write operations": 4 reads +
        # 4 writes in our accounting of (n - k + 1) blocks touched twice.
        cost = update_io_cost(9, 6)
        assert cost["reads"] == 4
        assert cost["writes"] == 4
        assert cost["total"] == 8

    def test_replication_cost(self):
        assert update_io_cost(5, 5)["total"] == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            update_io_cost(3, 4)
