"""Coverage for remaining API corners across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    counts_to_probability,
    exactly,
    subset_counts,
)
from repro.cluster import Cluster, FailureTrace, Network
from repro.core import ReadResult, WriteResult
from repro.errors import ConfigurationError
from repro.gf import GF256
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import TraceSimConfig, TraceSimulation


class TestExactEnumerationAPI:
    def test_subset_counts_majority(self):
        counts = subset_counts(3, lambda s: len(s) >= 2)
        assert counts.tolist() == [0, 0, 3, 1]

    def test_subset_counts_guard(self):
        with pytest.raises(ConfigurationError):
            subset_counts(25, lambda s: True)
        with pytest.raises(ConfigurationError):
            subset_counts(-1, lambda s: True)

    def test_counts_to_probability_matches_binomial(self):
        # All subsets satisfying: probability must be 1 for any p.
        counts = subset_counts(4, lambda s: True)
        p = np.linspace(0, 1, 5)
        np.testing.assert_allclose(counts_to_probability(counts, 4, p), 1.0)

    def test_counts_to_probability_single_subset(self):
        # Only the full set: probability p^n.
        counts = subset_counts(3, lambda s: len(s) == 3)
        np.testing.assert_allclose(
            counts_to_probability(counts, 3, 0.5), 0.125
        )

    def test_exact_availability_kind_guard(self):
        from repro.analysis import exact_availability
        from repro.quorum import MajoritySystem

        with pytest.raises(ConfigurationError):
            exact_availability(MajoritySystem(3), 0.5, kind="both")


class TestNetworkDetails:
    def test_by_kind_counter(self):
        cluster = Cluster(2)
        cluster.rpc(0, "data_version", "k")
        cluster.rpc(0, "data_version", "k")
        cluster.rpc(1, "put_data", "k", np.zeros(4, dtype=np.uint8), 0)
        assert cluster.network.stats.by_kind["data_version"] == 2
        assert cluster.network.stats.by_kind["put_data"] == 1

    def test_failed_rpc_still_counts_messages(self):
        cluster = Cluster(2)
        cluster.fail(0)
        before = cluster.network.stats.messages
        with pytest.raises(Exception):
            cluster.rpc(0, "data_version", "k")
        assert cluster.network.stats.messages == before + 2

    def test_is_reachable(self):
        net = Network()
        cluster = Cluster(2, network=net)
        assert net.is_reachable(cluster.node(0))
        cluster.fail(0)
        assert not net.is_reachable(cluster.node(0))
        cluster.recover(0)
        net.partition([0])
        assert not net.is_reachable(cluster.node(0))


class TestResultTypes:
    def test_write_result_truthiness(self):
        assert WriteResult(success=True)
        assert not WriteResult(success=False)

    def test_read_result_truthiness(self):
        assert ReadResult(success=True)
        assert not ReadResult(success=False)

    def test_defaults(self):
        r = ReadResult(success=False)
        assert r.value is None and r.version == -1 and r.case is None
        w = WriteResult(success=False)
        assert w.acks_per_level == [] and w.failed_level is None


class TestTraceSimWipeMode:
    def test_wipe_on_repair_with_anti_entropy(self):
        """Disk-replacement recoveries (wipe) plus periodic repair still
        preserve consistency; availability degrades but stays positive."""
        from repro.cluster import EventKind, FailureEvent

        events = []
        for t, node in [(10.0, 5), (30.0, 6), (50.0, 2)]:
            events.append(FailureEvent(t, node, EventKind.FAIL))
            events.append(FailureEvent(t + 8.0, node, EventKind.REPAIR))
        trace = FailureTrace(7, events)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        config = TraceSimConfig(
            horizon=120.0,
            op_rate=2.0,
            repair_interval=6.0,
            wipe_on_repair=True,
        )
        tally = TraceSimulation(7, 4, quorum, trace, config, rng=0).run()
        assert tally.consistency_violations == 0
        assert tally.reads_succeeded > 0
        assert tally.writes_succeeded > 0
        assert tally.repairs > 0


class TestFieldCorners:
    def test_random_elements_nonzero(self):
        rng = np.random.default_rng(0)
        vals = GF256.random_elements(rng, 500, nonzero=True)
        assert not (vals == 0).any()

    def test_pow_vectorized(self):
        vec = np.array([0, 1, 2, 3], dtype=np.uint8)
        out = GF256.pow(vec, 2)
        assert out.tolist() == [0, 1, 4, 5]  # 3^2 = 5 over 0x11D

    def test_exactly_full_support_sums_to_one(self):
        total = sum(float(exactly(6, m, 0.37)) for m in range(7))
        assert total == pytest.approx(1.0)


class TestVolumeSpans:
    def test_write_span_reports_partial_failure(self):
        from repro.storage import VirtualDisk

        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(cluster, 12, 32, 9, 6, quorum)
        disk.format()
        cluster.fail_many([6, 7])  # writes impossible (w_1 = 2 of 1 alive)
        assert disk.write_span(0, b"x" * 64) is False

    def test_read_span_none_on_failure(self):
        from repro.storage import VirtualDisk

        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(cluster, 12, 32, 9, 6, quorum)
        disk.format()
        cluster.fail_many([1, 6, 7, 8])
        assert disk.read_span(0, 3) is None


class TestGeneratorNegativeSampling:
    def test_sampled_verify_detects_planted_defect(self):
        from repro.erasure import systematic_vandermonde, verify_mds

        g = systematic_vandermonde(GF256, 20, 10).copy()
        g[15] = g[16]  # planted duplicate row
        rng = np.random.default_rng(0)
        assert not verify_mds(
            GF256, g, exhaustive_limit=0, samples=4000, rng=rng
        )


class TestFigureCustomParams:
    def test_fig2_custom_grid(self):
        from repro.bench import fig2_series

        series = fig2_series(np.array([0.25, 0.75]))
        assert series.x.tolist() == [0.25, 0.75]

    def test_fig3_custom_w(self):
        from repro.bench import fig3_series

        series = fig3_series(w=5)
        assert "w=5" in series.name
