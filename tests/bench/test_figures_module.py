"""Tests for the figure-series generators and runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    FIG_K,
    FIG_N,
    FIG_SHAPE,
    FigureSeries,
    all_series,
    default_p_grid,
    fig1_layout,
    fig2_series,
    fig3_series,
    fig4_quorum,
    fig4_series,
    fig5_series,
    fig_quorum,
    run_all,
    scan_fig3_configs,
)
from repro.errors import ConfigurationError


class TestCanonicalConfig:
    def test_constants(self):
        assert (FIG_N, FIG_K) == (15, 8)
        assert FIG_SHAPE.level_sizes == (3, 5)
        assert FIG_SHAPE.total_nodes == FIG_N - FIG_K + 1

    def test_fig_quorum_default(self):
        q = fig_quorum()
        assert q.w == (2, 3)
        assert q.read_thresholds == (2, 3)

    def test_fig4_quorum_majority_per_level(self):
        q = fig4_quorum(8)
        assert q.w == (2, 3)  # coincides with the anchor configuration
        q12 = fig4_quorum(12)
        assert q12.shape.total_nodes == 4

    def test_p_grid(self):
        grid = default_p_grid()
        assert grid[0] == pytest.approx(0.05)
        assert grid[-1] == pytest.approx(1.0)
        assert np.all(np.diff(grid) > 0)


class TestFigureSeries:
    def test_column_shape_validated(self):
        with pytest.raises(ConfigurationError):
            FigureSeries("x", "p", np.arange(3.0), {"bad": np.arange(4.0)})

    def test_render_text_contains_data(self):
        series = fig5_series()
        text = series.render_text()
        assert "Figure 5" in text
        assert "TRAP-ERC (n/k)" in text
        assert "1.8750" in text  # k = 8 anchor

    def test_csv_roundtrip(self, tmp_path):
        series = fig2_series(np.array([0.5, 0.9]))
        path = tmp_path / "fig2.csv"
        series.to_csv(path)
        rows = path.read_text().strip().split("\n")
        assert rows[0].startswith("p,")
        assert len(rows) == 3


class TestSeriesContents:
    def test_fig1_mentions_shape(self):
        assert "s_l = 2l + 3" in fig1_layout()

    def test_fig2_five_curves(self):
        series = fig2_series()
        assert list(series.columns) == [f"w={w}" for w in range(1, 6)]

    def test_fig3_columns(self):
        series = fig3_series()
        assert set(series.columns) == {
            "TRAP-FR (eq.10)",
            "TRAP-ERC (eq.13)",
            "TRAP-ERC (exact)",
        }

    def test_fig4_custom_ks(self):
        series = fig4_series(ks=(8, 4))
        assert list(series.columns) == ["n-k=7", "n-k=11"]

    def test_fig5_custom_ks(self):
        series = fig5_series(ks=[3, 5])
        assert series.x.tolist() == [3.0, 5.0]

    def test_all_series_returns_four(self):
        assert len(all_series()) == 4


class TestRunner:
    def test_run_all_writes_artifacts(self, tmp_path):
        paths = run_all(tmp_path, quiet=True)
        names = {p.name for p in paths}
        assert names == {
            "fig1_layout.txt",
            "fig2.csv",
            "fig3.csv",
            "fig4.csv",
            "fig5.csv",
        }
        for p in paths:
            assert p.exists() and p.stat().st_size > 0

    def test_results_dir_env(self, tmp_path, monkeypatch):
        from repro.bench import results_dir

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "custom"))
        out = results_dir()
        assert out == tmp_path / "custom"
        assert out.exists()


class TestCalibration:
    def test_scan_returns_sorted(self):
        results = scan_fig3_configs(top=5)
        scores = [r.score for r in results]
        assert scores == sorted(scores)

    def test_winner_hits_anchors(self):
        best = scan_fig3_configs(top=1)[0]
        assert best.fr_at_anchor == pytest.approx(0.75, abs=1e-6)
        assert best.erc_at_anchor == pytest.approx(0.635, abs=1e-3)

    def test_restricted_k_scan(self):
        results = scan_fig3_configs(ks=[4], top=3)
        assert all(r.k == 4 for r in results)
