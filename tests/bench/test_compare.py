"""Tests for the perf regression gate (``repro.bench.compare``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_docs, main, wallclock_deltas
from repro.errors import ConfigurationError


def _doc(**results) -> dict:
    return {
        "schema": "repro-bench-perf/1",
        "config": {"n": 6, "k": 4},
        "results": results,
        "speedups": {},
    }


BASELINE = _doc(
    encode={"seconds_per_call": 0.01, "payload_bytes": 1000, "mb_per_s": 100.0},
    mc_write={"seconds_per_call": 0.1, "trials": 1000, "trials_per_s": 10_000.0},
    optimizer={"seconds_per_call": 0.05, "evaluated": 8},
    decode_plan_cache={"hits": 3, "misses": 1},
)

LATENCY_BASELINE = _doc(
    latency_sim={"seconds_per_call": 0.2, "ops": 600, "ops_per_s": 3000.0},
)


class TestLatencySimGate:
    """The event-runtime bench section gates on ops_per_s."""

    def test_ops_per_s_drift_tolerated(self):
        fresh = _doc(
            latency_sim={"seconds_per_call": 0.24, "ops": 600, "ops_per_s": 2500.0}
        )
        assert compare_docs(LATENCY_BASELINE, fresh) == []

    def test_ops_per_s_regression_detected(self):
        fresh = _doc(
            latency_sim={"seconds_per_call": 0.6, "ops": 600, "ops_per_s": 1000.0}
        )
        regressions = compare_docs(LATENCY_BASELINE, fresh)
        assert len(regressions) == 1
        assert "latency_sim" in regressions[0] and "ops_per_s" in regressions[0]

    def test_missing_latency_section_fails_gate(self):
        regressions = compare_docs(LATENCY_BASELINE, _doc())
        assert regressions and "missing" in regressions[0]


SHARDED_BASELINE = _doc(
    sharded_throughput={
        "seconds_per_call": 0.25, "ops": 800, "shards": 4, "clients": 16,
        "ops_per_s": 3200.0,
    },
)


class TestShardedThroughputGate:
    """The sharded-runtime bench section gates on aggregate ops_per_s."""

    def test_regression_detected(self):
        fresh = _doc(
            sharded_throughput={
                "seconds_per_call": 0.8, "ops": 800, "shards": 4, "clients": 16,
                "ops_per_s": 1000.0,
            },
        )
        regressions = compare_docs(SHARDED_BASELINE, fresh)
        assert len(regressions) == 1
        assert "sharded_throughput" in regressions[0]
        assert "ops_per_s" in regressions[0]

    def test_missing_sharded_section_fails_gate(self):
        regressions = compare_docs(SHARDED_BASELINE, _doc())
        assert regressions and "missing" in regressions[0]


EVENT_CORE_BASELINE = _doc(
    event_core={
        "seconds_per_call": 4.0, "ops": 100_000, "fanout": 24, "need": 13,
        "clients": 256, "events_per_op": 2.0, "ops_per_s": 25_000.0,
    },
    event_core_reference={
        "seconds_per_call": 7.0, "ops": 10_000, "fanout": 24, "need": 13,
        "clients": 256, "events_per_op": 48.0, "ops_per_s": 1_400.0,
    },
)


class TestEventCoreGate:
    """The vectorized-session-layer bench section gates on ops_per_s."""

    def test_drift_tolerated(self):
        fresh = _doc(
            event_core={"seconds_per_call": 4.5, "ops": 100_000, "ops_per_s": 22_000.0},
            event_core_reference={
                "seconds_per_call": 7.5, "ops": 10_000, "ops_per_s": 1_300.0,
            },
        )
        assert compare_docs(EVENT_CORE_BASELINE, fresh) == []

    def test_regression_detected(self):
        fresh = _doc(
            event_core={"seconds_per_call": 10.0, "ops": 100_000, "ops_per_s": 10_000.0},
            event_core_reference=EVENT_CORE_BASELINE["results"][
                "event_core_reference"
            ],
        )
        regressions = compare_docs(EVENT_CORE_BASELINE, fresh)
        assert len(regressions) == 1
        assert "event_core" in regressions[0] and "ops_per_s" in regressions[0]

    def test_missing_event_core_section_fails_gate(self):
        regressions = compare_docs(EVENT_CORE_BASELINE, _doc())
        assert len(regressions) == 2
        assert any("event_core:" in r and "missing" in r for r in regressions)
        assert any("event_core_reference:" in r and "missing" in r for r in regressions)


def _par_entry(speedup, jobs=4, host_cpus=8, byte_identical=True, **over):
    entry = {
        "seconds_per_call": 1.0,
        "serial_seconds_per_call": speedup,
        "jobs": jobs,
        "host_cpus": host_cpus,
        "points": 4,
        "ops": 1200,
        "speedup": speedup,
        "byte_identical": byte_identical,
    }
    entry.update(over)
    return entry


PARALLEL_BASELINE = _doc(parallel_scaling=_par_entry(3.1))


class TestParallelScalingGate:
    """parallel_scaling gates on byte-identity always, and on the
    speedup floor only where the host has the cores to realize it."""

    def test_fast_enough_passes(self):
        fresh = _doc(parallel_scaling=_par_entry(3.0))
        assert compare_docs(PARALLEL_BASELINE, fresh) == []

    def test_slow_on_capable_host_fails(self):
        fresh = _doc(parallel_scaling=_par_entry(1.4, jobs=4, host_cpus=8))
        regressions = compare_docs(PARALLEL_BASELINE, fresh)
        assert len(regressions) == 1
        assert "parallel_scaling" in regressions[0]
        assert "floor" in regressions[0]

    def test_small_host_is_informational(self):
        # A 1-CPU container cannot beat serial; its entry records the
        # numbers but must not fail the gate.
        fresh = _doc(parallel_scaling=_par_entry(0.5, jobs=4, host_cpus=1))
        assert compare_docs(PARALLEL_BASELINE, fresh) == []

    def test_byte_identity_violation_always_fails(self):
        fresh = _doc(
            parallel_scaling=_par_entry(
                3.0, jobs=4, host_cpus=1, byte_identical=False
            )
        )
        regressions = compare_docs(PARALLEL_BASELINE, fresh)
        assert len(regressions) == 1
        assert "byte_identical" in regressions[0]

    def test_missing_section_fails_gate(self):
        regressions = compare_docs(PARALLEL_BASELINE, _doc())
        assert regressions
        assert any(
            "parallel_scaling" in r and "missing" in r for r in regressions
        )

    def test_missing_speedup_field_fails(self):
        entry = _par_entry(3.0)
        del entry["speedup"]
        fresh = _doc(parallel_scaling=entry)
        regressions = compare_docs(PARALLEL_BASELINE, fresh)
        assert any("speedup missing" in r for r in regressions)

    def test_custom_floor(self):
        fresh = _doc(parallel_scaling=_par_entry(3.0))
        assert compare_docs(
            PARALLEL_BASELINE, fresh, min_parallel_speedup=3.5
        ) != []
        assert (
            compare_docs(PARALLEL_BASELINE, fresh, min_parallel_speedup=2.0)
            == []
        )

    def test_fresh_gate_applies_without_baseline_entry(self):
        # Gate is on the fresh document: a baseline predating the
        # section doesn't exempt a bad fresh entry.
        fresh = _doc(parallel_scaling=_par_entry(1.0, jobs=4, host_cpus=8))
        regressions = compare_docs(_doc(), fresh)
        assert len(regressions) == 1
        assert "floor" in regressions[0]

    def test_docs_without_the_section_stay_green(self):
        assert compare_docs(BASELINE, BASELINE) == []


class TestWallclockDeltas:
    def test_deltas_cover_both_directions(self):
        fresh = _doc(
            encode={
                "seconds_per_call": 0.02,
                "payload_bytes": 1000,
                "mb_per_s": 50.0,
            },
            mc_write={
                "seconds_per_call": 0.05,
                "trials": 1000,
                "trials_per_s": 20_000.0,
            },
            optimizer=BASELINE["results"]["optimizer"],
        )
        lines = wallclock_deltas(BASELINE, fresh)
        text = "\n".join(lines)
        assert "encode: 0.01s -> 0.02s (+100.0%)" in text
        assert "mc_write: 0.1s -> 0.05s (-50.0%)" in text
        assert "optimizer: 0.05s -> 0.05s (+0.0%)" in text

    def test_missing_fresh_entry_reported(self):
        lines = wallclock_deltas(BASELINE, _doc())
        assert any("(missing)" in line for line in lines)


class TestCompareDocs:
    def test_identical_docs_pass(self):
        assert compare_docs(BASELINE, BASELINE) == []

    def test_small_drift_tolerated(self):
        fresh = _doc(
            encode={"seconds_per_call": 0.012, "payload_bytes": 1000, "mb_per_s": 83.0},
            mc_write={"seconds_per_call": 0.11, "trials": 1000, "trials_per_s": 9_000.0},
            optimizer={"seconds_per_call": 0.06, "evaluated": 8},
        )
        assert compare_docs(BASELINE, fresh) == []

    def test_throughput_regression_detected(self):
        fresh = _doc(
            encode={"seconds_per_call": 0.02, "payload_bytes": 1000, "mb_per_s": 50.0},
            mc_write=BASELINE["results"]["mc_write"],
            optimizer=BASELINE["results"]["optimizer"],
        )
        regressions = compare_docs(BASELINE, fresh)
        assert len(regressions) == 1
        assert "encode" in regressions[0] and "mb_per_s" in regressions[0]

    def test_wall_time_regression_detected(self):
        # optimizer has no throughput field: seconds_per_call rising must trip.
        fresh = _doc(
            encode=BASELINE["results"]["encode"],
            mc_write=BASELINE["results"]["mc_write"],
            optimizer={"seconds_per_call": 0.5, "evaluated": 8},
        )
        regressions = compare_docs(BASELINE, fresh)
        assert len(regressions) == 1
        assert "optimizer" in regressions[0]

    def test_missing_metric_is_a_regression(self):
        fresh = _doc(
            encode=BASELINE["results"]["encode"],
            optimizer=BASELINE["results"]["optimizer"],
        )
        regressions = compare_docs(BASELINE, fresh)
        assert len(regressions) == 1
        assert "mc_write" in regressions[0] and "missing" in regressions[0]

    def test_counter_entries_ignored(self):
        # decode_plan_cache has no throughput metric; dropping it is fine.
        fresh = dict(BASELINE)
        fresh["results"] = {
            k: v for k, v in BASELINE["results"].items() if k != "decode_plan_cache"
        }
        assert compare_docs(BASELINE, fresh) == []

    def test_config_mismatch_rejected(self):
        fresh = dict(BASELINE)
        fresh["config"] = {"n": 12, "k": 8}
        with pytest.raises(ConfigurationError):
            compare_docs(BASELINE, fresh)
        assert compare_docs(BASELINE, fresh, require_matching_config=False) == []

    def test_tolerance_validated(self):
        with pytest.raises(ConfigurationError):
            compare_docs(BASELINE, BASELINE, max_regression=0.0)
        with pytest.raises(ConfigurationError):
            compare_docs(BASELINE, BASELINE, max_regression=1.5)


class TestCliEntry:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_green_gate_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", BASELINE)
        assert main([base, base]) == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", BASELINE)
        fresh_doc = _doc(
            encode={"seconds_per_call": 0.1, "payload_bytes": 1000, "mb_per_s": 10.0},
            mc_write=BASELINE["results"]["mc_write"],
            optimizer=BASELINE["results"]["optimizer"],
        )
        fresh = self._write(tmp_path / "fresh.json", fresh_doc)
        assert main([base, fresh]) == 1
        out = capsys.readouterr().out
        assert "regression" in out and "encode" in out

    def test_allow_config_mismatch_flag(self, tmp_path):
        base = self._write(tmp_path / "base.json", BASELINE)
        other = dict(BASELINE)
        other["config"] = {"n": 99}
        fresh = self._write(tmp_path / "fresh.json", other)
        with pytest.raises(ConfigurationError):
            main([base, fresh])
        assert main([base, fresh, "--allow-config-mismatch"]) == 0

    def test_wallclock_delta_summary_printed(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", BASELINE)
        assert main([base, base]) == 0
        out = capsys.readouterr().out
        assert "wall-clock per section" in out
        assert "encode: 0.01s -> 0.01s (+0.0%)" in out
        assert main([base, base, "--quiet"]) == 0
        assert "wall-clock" not in capsys.readouterr().out

    def test_min_parallel_speedup_flag(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", PARALLEL_BASELINE)
        fresh = self._write(
            tmp_path / "fresh.json", _doc(parallel_scaling=_par_entry(3.0))
        )
        assert main([base, fresh, "--min-parallel-speedup", "3.5"]) == 1
        assert "floor" in capsys.readouterr().out
        assert main([base, fresh, "--min-parallel-speedup", "2.0"]) == 0
