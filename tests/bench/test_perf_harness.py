"""Tier-1-adjacent smoke test: the perf harness runs on tiny sizes.

Runs the same code paths as ``python -m repro.bench --json`` so a kernel
or harness regression fails fast in the normal test run, without paying
for production-sized blocks.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import TINY_SIZES, run_perf, write_perf_json
from repro.bench.perf import section_names
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def perf_doc() -> dict:
    return run_perf(sizes=TINY_SIZES)


class TestPerfHarness:
    def test_document_structure(self, perf_doc):
        assert perf_doc["schema"] == "repro-bench-perf/1"
        assert perf_doc["config"]["k"] == TINY_SIZES["k"]
        for name in (
            "encode",
            "encode_seed",
            "encode_batch",
            "encode_small_loop",
            "encode_small_batch",
            "decode_seed",
            "decode_repeated",
            "decode_batch",
            "update_deltas",
            "mc_write",
            "mc_read_erc",
            "exact_enum_seed",
            "exact_enum_occupancy",
            "exact_enum_occupancy_warm",
            "optimizer_seed",
            "optimizer",
            "latency_sim",
            "byzantine_overhead",
            "metadata_byzantine",
            "sharded_throughput",
            "wallclock_inproc",
            "event_core",
            "event_core_reference",
            "parallel_scaling",
        ):
            assert name in perf_doc["results"], name
        assert perf_doc["sections"] == list(section_names())

    def test_sharded_throughput_entry(self, perf_doc):
        entry = perf_doc["results"]["sharded_throughput"]
        assert entry["shards"] == TINY_SIZES["shard_count"]
        assert entry["ops_per_s"] > 0

    def test_wallclock_inproc_entry(self, perf_doc):
        entry = perf_doc["results"]["wallclock_inproc"]
        assert entry["ops"] == TINY_SIZES["wc_ops"]
        assert entry["clients"] == TINY_SIZES["wc_clients"]
        assert entry["ops_per_s"] > 0

    def test_byzantine_overhead_entry(self, perf_doc):
        entry = perf_doc["results"]["byzantine_overhead"]
        assert entry["ops_per_s"] > 0
        assert entry["baseline_seconds_per_call"] > 0
        assert entry["overhead_ratio"] > 0

    def test_metadata_byzantine_entry(self, perf_doc):
        entry = perf_doc["results"]["metadata_byzantine"]
        assert entry["ops_per_s"] > 0
        assert entry["f"] == TINY_SIZES["mbyz_f"]
        assert entry["baseline_seconds_per_call"] > 0
        assert entry["overhead_ratio"] > 0

    def test_event_core_entries(self, perf_doc):
        entry = perf_doc["results"]["event_core"]
        reference = perf_doc["results"]["event_core_reference"]
        assert entry["ops"] == TINY_SIZES["ec_ops"]
        assert reference["ops"] == TINY_SIZES["ec_ref_ops"]
        assert entry["ops_per_s"] > 0
        assert reference["ops_per_s"] > 0
        # The architectural signature: the vectorized path batches a
        # whole wave into ~2 events per round, the per-object loop pays
        # two legs plus a timer per attempt.
        assert entry["events_per_op"] < reference["events_per_op"]
        assert perf_doc["speedups"]["event_core_vs_reference"] > 0

    def test_throughputs_positive(self, perf_doc):
        for name, entry in perf_doc["results"].items():
            if "mb_per_s" in entry:
                assert entry["mb_per_s"] > 0, name
            if "trials_per_s" in entry:
                assert entry["trials_per_s"] > 0, name

    def test_speedups_present_and_positive(self, perf_doc):
        speedups = perf_doc["speedups"]
        for name in (
            "event_core_vs_reference",
            "decode_repeated_vs_seed",
            "decode_batch_vs_seed",
            "encode_vs_seed",
            "encode_batch_vs_seed",
            "encode_small_batch_vs_loop",
            "exact_enum_vs_seed",
            "optimizer_vs_seed",
            "parallel_vs_serial_saturation",
        ):
            assert speedups[name] > 0, name

    def test_parallel_scaling_entry(self, perf_doc):
        entry = perf_doc["results"]["parallel_scaling"]
        assert entry["byte_identical"] is True
        assert entry["jobs"] == TINY_SIZES["par_jobs"]
        assert entry["points"] == len(TINY_SIZES["par_clients"])
        assert entry["host_cpus"] >= 1
        assert entry["serial_seconds_per_call"] > 0
        assert entry["speedup"] > 0
        assert entry["warm_pool"] is True

    def test_exact_enum_sections_consistent(self, perf_doc):
        results = perf_doc["results"]
        nb = results["exact_enum_seed"]["nbnode"]
        cfg = perf_doc["config"]
        assert nb == cfg["enum_n"] - cfg["enum_k"] + 1
        assert results["exact_enum_occupancy"]["seconds_per_call"] > 0
        assert results["optimizer"]["evaluated"] >= 1
        assert (
            results["optimizer"]["evaluated"]
            == results["optimizer_seed"]["evaluated"]
        )

    def test_plan_cache_observed(self, perf_doc):
        cache = perf_doc["results"]["decode_plan_cache"]
        # Repeated decode of one survivor set: exactly one inversion.
        assert cache["misses"] == 1
        assert cache["hits"] >= 1

    def test_json_round_trip(self, tmp_path):
        path = write_perf_json(tmp_path / "perf.json", sizes=TINY_SIZES, quiet=True)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-bench-perf/1"
        assert doc["speedups"]


class TestCliEntry:
    def test_main_json_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "BENCH_perf.json"
        assert main(["--json", str(out), "--tiny", "--quiet"]) == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "Wrote:" in captured.out

    def test_profile_flag_prints_section_profiles(self, capsys, monkeypatch):
        # The plumbing behind --profile: with the switch set, a section's
        # warmup call is profiled and its top-15 cumulative table prints.
        from repro.bench import perf

        monkeypatch.setattr(perf, "_PROFILE_SECTIONS", True)
        seconds = perf._time_call(lambda: sum(range(1000)), 1, "demo_section")
        out = capsys.readouterr().out
        assert seconds >= 0
        assert "=== profile: demo_section ===" in out
        assert "cumulative" in out

    def test_run_perf_restores_profile_switch(self, monkeypatch):
        import repro.bench.perf as perf

        calls = []
        monkeypatch.setattr(
            perf,
            "_run_perf",
            lambda sizes, seed, sections=None, jobs=0: calls.append(
                (perf._PROFILE_SECTIONS, jobs)
            ),
        )
        perf.run_perf(sizes={}, profile=True, jobs=4)
        # profile forces the serial path: cProfile is per-process.
        assert calls == [(True, 0)]
        assert perf._PROFILE_SECTIONS is False


class TestSectionFilter:
    def test_subset_runs_only_requested_sections(self):
        doc = run_perf(sizes=TINY_SIZES, sections=["mc"])
        assert doc["sections"] == ["mc"]
        assert sorted(doc["results"]) == ["mc_read_erc", "mc_write"]
        assert doc["speedups"] == {}

    def test_filter_order_is_document_order(self):
        doc = run_perf(sizes=TINY_SIZES, sections=["mc", "encode"])
        assert doc["sections"] == ["encode", "mc"]

    def test_unknown_section_lists_valid_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            run_perf(sizes=TINY_SIZES, sections=["encode", "nope"])
        msg = str(excinfo.value)
        assert "nope" in msg
        for name in section_names():
            assert name in msg

    def test_section_names_cover_registry(self):
        names = section_names()
        assert "encode" in names
        assert "parallel_scaling" in names

    def test_jobs_fanout_matches_serial_structure(self):
        serial = run_perf(sizes=TINY_SIZES, sections=["update", "mc"])
        fanned = run_perf(sizes=TINY_SIZES, sections=["update", "mc"], jobs=2)
        assert sorted(fanned["results"]) == sorted(serial["results"])
        assert fanned["sections"] == serial["sections"]

    def test_main_sections_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "perf.json"
        assert (
            main(
                [
                    "--json", str(out), "--tiny", "--quiet",
                    "--sections", "mc",
                ]
            )
            == 0
        )
        doc = json.loads(out.read_text())
        assert doc["sections"] == ["mc"]

    def test_main_unknown_section_errors(self, tmp_path):
        from repro.bench.__main__ import main

        with pytest.raises(ConfigurationError):
            main(["--json", str(tmp_path / "x.json"), "--tiny",
                  "--sections", "bogus"])
