"""Tier-1-adjacent smoke test: the perf harness runs on tiny sizes.

Runs the same code paths as ``python -m repro.bench --json`` so a kernel
or harness regression fails fast in the normal test run, without paying
for production-sized blocks.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import TINY_SIZES, run_perf, write_perf_json


@pytest.fixture(scope="module")
def perf_doc() -> dict:
    return run_perf(sizes=TINY_SIZES)


class TestPerfHarness:
    def test_document_structure(self, perf_doc):
        assert perf_doc["schema"] == "repro-bench-perf/1"
        assert perf_doc["config"]["k"] == TINY_SIZES["k"]
        for name in (
            "encode",
            "encode_seed",
            "encode_batch",
            "encode_small_loop",
            "encode_small_batch",
            "decode_seed",
            "decode_repeated",
            "decode_batch",
            "update_deltas",
            "mc_write",
            "mc_read_erc",
            "exact_enum_seed",
            "exact_enum_occupancy",
            "exact_enum_occupancy_warm",
            "optimizer_seed",
            "optimizer",
            "latency_sim",
            "byzantine_overhead",
            "metadata_byzantine",
            "sharded_throughput",
            "wallclock_inproc",
            "event_core",
            "event_core_reference",
        ):
            assert name in perf_doc["results"], name

    def test_sharded_throughput_entry(self, perf_doc):
        entry = perf_doc["results"]["sharded_throughput"]
        assert entry["shards"] == TINY_SIZES["shard_count"]
        assert entry["ops_per_s"] > 0

    def test_wallclock_inproc_entry(self, perf_doc):
        entry = perf_doc["results"]["wallclock_inproc"]
        assert entry["ops"] == TINY_SIZES["wc_ops"]
        assert entry["clients"] == TINY_SIZES["wc_clients"]
        assert entry["ops_per_s"] > 0

    def test_byzantine_overhead_entry(self, perf_doc):
        entry = perf_doc["results"]["byzantine_overhead"]
        assert entry["ops_per_s"] > 0
        assert entry["baseline_seconds_per_call"] > 0
        assert entry["overhead_ratio"] > 0

    def test_metadata_byzantine_entry(self, perf_doc):
        entry = perf_doc["results"]["metadata_byzantine"]
        assert entry["ops_per_s"] > 0
        assert entry["f"] == TINY_SIZES["mbyz_f"]
        assert entry["baseline_seconds_per_call"] > 0
        assert entry["overhead_ratio"] > 0

    def test_event_core_entries(self, perf_doc):
        entry = perf_doc["results"]["event_core"]
        reference = perf_doc["results"]["event_core_reference"]
        assert entry["ops"] == TINY_SIZES["ec_ops"]
        assert reference["ops"] == TINY_SIZES["ec_ref_ops"]
        assert entry["ops_per_s"] > 0
        assert reference["ops_per_s"] > 0
        # The architectural signature: the vectorized path batches a
        # whole wave into ~2 events per round, the per-object loop pays
        # two legs plus a timer per attempt.
        assert entry["events_per_op"] < reference["events_per_op"]
        assert perf_doc["speedups"]["event_core_vs_reference"] > 0

    def test_throughputs_positive(self, perf_doc):
        for name, entry in perf_doc["results"].items():
            if "mb_per_s" in entry:
                assert entry["mb_per_s"] > 0, name
            if "trials_per_s" in entry:
                assert entry["trials_per_s"] > 0, name

    def test_speedups_present_and_positive(self, perf_doc):
        speedups = perf_doc["speedups"]
        for name in (
            "event_core_vs_reference",
            "decode_repeated_vs_seed",
            "decode_batch_vs_seed",
            "encode_vs_seed",
            "encode_batch_vs_seed",
            "encode_small_batch_vs_loop",
            "exact_enum_vs_seed",
            "optimizer_vs_seed",
        ):
            assert speedups[name] > 0, name

    def test_exact_enum_sections_consistent(self, perf_doc):
        results = perf_doc["results"]
        nb = results["exact_enum_seed"]["nbnode"]
        cfg = perf_doc["config"]
        assert nb == cfg["enum_n"] - cfg["enum_k"] + 1
        assert results["exact_enum_occupancy"]["seconds_per_call"] > 0
        assert results["optimizer"]["evaluated"] >= 1
        assert (
            results["optimizer"]["evaluated"]
            == results["optimizer_seed"]["evaluated"]
        )

    def test_plan_cache_observed(self, perf_doc):
        cache = perf_doc["results"]["decode_plan_cache"]
        # Repeated decode of one survivor set: exactly one inversion.
        assert cache["misses"] == 1
        assert cache["hits"] >= 1

    def test_json_round_trip(self, tmp_path):
        path = write_perf_json(tmp_path / "perf.json", sizes=TINY_SIZES, quiet=True)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-bench-perf/1"
        assert doc["speedups"]


class TestCliEntry:
    def test_main_json_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "BENCH_perf.json"
        assert main(["--json", str(out), "--tiny", "--quiet"]) == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "Wrote:" in captured.out

    def test_profile_flag_prints_section_profiles(self, capsys, monkeypatch):
        # The plumbing behind --profile: with the switch set, a section's
        # warmup call is profiled and its top-15 cumulative table prints.
        from repro.bench import perf

        monkeypatch.setattr(perf, "_PROFILE_SECTIONS", True)
        seconds = perf._time_call(lambda: sum(range(1000)), 1, "demo_section")
        out = capsys.readouterr().out
        assert seconds >= 0
        assert "=== profile: demo_section ===" in out
        assert "cumulative" in out

    def test_run_perf_restores_profile_switch(self, monkeypatch):
        import repro.bench.perf as perf

        calls = []
        monkeypatch.setattr(
            perf, "_run_perf", lambda sizes, seed: calls.append(perf._PROFILE_SECTIONS)
        )
        perf.run_perf(sizes={}, profile=True)
        assert calls == [True]
        assert perf._PROFILE_SECTIONS is False
