"""Full-stack integration tests: every layer working together.

These scenarios compose the substrates end to end — GF arithmetic under
the erasure codec, the codec under the protocol engines, the engines
under the virtual disk and the trace simulator — and assert system-level
invariants that no single-layer unit test can see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import exact_read_erc, write_availability
from repro.cluster import Cluster, FixedLatency, Network, exponential_trace
from repro.core import RepairService, TrapErcProtocol, TrapFrProtocol
from repro.erasure import MDSCode, join_payload, split_payload
from repro.quorum import TrapezoidQuorum, TrapezoidShape, verify_intersection, TrapezoidSystem
from repro.sim import TraceSimConfig, TraceSimulation
from repro.storage import DiskClient, VirtualDisk


class TestBytesToProtocolRoundtrip:
    def test_payload_through_full_stack(self):
        """bytes -> split -> stripe -> protocol -> decode -> bytes."""
        payload = b"The quick brown fox jumps over the lazy dog" * 3
        k = 6
        blocks, length = split_payload(payload, k)
        cluster = Cluster(9)
        code = MDSCode(9, 6)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        proto = TrapErcProtocol(cluster, code, quorum)
        proto.initialize(blocks)
        # Degrade the cluster to the tolerance limit and read everything
        # back through decode paths only.
        cluster.fail_many([0, 1])
        out_blocks = []
        for i in range(k):
            result = proto.read_block(i)
            assert result.success
            out_blocks.append(result.value)
        assert join_payload(np.stack(out_blocks), length) == payload


class TestErcVsFrEquivalence:
    def test_same_visible_history_on_same_cluster_events(self):
        """ERC and FR engines exposed to identical failure schedules must
        produce identical visible histories (success pattern + values)."""
        rng = np.random.default_rng(3)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        data = rng.integers(0, 256, size=(6, 16), dtype=np.int64).astype(np.uint8)

        cluster_a = Cluster(9)
        erc = TrapErcProtocol(cluster_a, MDSCode(9, 6), quorum)
        erc.initialize(data)
        cluster_b = Cluster(9)
        fr = TrapFrProtocol(cluster_b, 9, 6, quorum)
        fr.initialize(data)

        for step in range(60):
            down = rng.choice(9, size=rng.integers(0, 3), replace=False).tolist()
            for cluster in (cluster_a, cluster_b):
                cluster.recover_all()
                cluster.fail_many(down)
            i = int(rng.integers(0, 6))
            if rng.random() < 0.5:
                value = rng.integers(0, 256, 16, dtype=np.int64).astype(np.uint8)
                ra = erc.write_block(i, value)
                rb = fr.write_block(i, value)
                # Write availability is structurally identical (eq. 8 = 9)
                # ... except ERC's read-before-write can fail when FR's
                # version check succeeds; both engines must agree when the
                # ERC read prerequisite holds.
                if ra.success or rb.success:
                    assert ra.success == rb.success or not ra.success, step
            else:
                ra = erc.read_block(i)
                rb = fr.read_block(i)
                if ra.success and rb.success:
                    assert ra.version == rb.version, step
                    assert np.array_equal(ra.value, rb.value), step


class TestLatencyAndTrafficAccounting:
    def test_message_delay_accumulates_through_protocol(self):
        network = Network(latency=FixedLatency(0.001))
        cluster = Cluster(9, network=network)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        proto = TrapErcProtocol(cluster, MDSCode(9, 6), quorum)
        rng = np.random.default_rng(4)
        proto.initialize(rng.integers(0, 256, size=(6, 8), dtype=np.int64).astype(np.uint8))
        before = network.stats.total_message_delay
        result = proto.read_block(0)
        assert network.stats.total_message_delay > before
        # The instant path now also reports per-operation latency: the
        # sum over its fan-out rounds of the max-of-parallel delay, which
        # is bounded by (and under fan-out strictly less than) the
        # summed per-message delay.
        assert 0 < result.latency <= network.stats.total_message_delay - before
        assert network.stats.operation_latency > 0

    def test_bytes_accounting_scales_with_block_size(self):
        results = {}
        for block in (64, 512):
            cluster = Cluster(9)
            quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
            proto = TrapErcProtocol(cluster, MDSCode(9, 6), quorum)
            rng = np.random.default_rng(5)
            proto.initialize(
                rng.integers(0, 256, size=(6, block), dtype=np.int64).astype(np.uint8)
            )
            cluster.reset_stats()
            proto.write_block(0, rng.integers(0, 256, block, dtype=np.int64).astype(np.uint8))
            results[block] = cluster.network.stats.bytes_sent
        assert results[512] > results[64] * 4


class TestDiskUnderTraceDrivenFailures:
    def test_disk_with_repair_survives_full_trace(self):
        """A virtual disk under a long failure trace with periodic repair
        never violates consistency and keeps serving most operations."""
        rng = np.random.default_rng(6)
        cluster = Cluster(9)
        disk = VirtualDisk(cluster, num_blocks=12, block_size=64, n=9, k=6)
        disk.format()
        client = DiskClient(disk, max_retries=1, repair_on_failure=True)
        trace = exponential_trace(9, mtbf=50.0, mttr=8.0, horizon=300.0, rng=7)

        written: dict[int, bytes] = {}
        indeterminate: dict[int, set[bytes]] = {}
        t = 0.0
        ok_ops = 0
        total_ops = 0
        while t < 300.0:
            cluster.apply_alive_vector(trace.alive_vector(t))
            block = int(rng.integers(0, 12))
            total_ops += 1
            if rng.random() < 0.5:
                payload = bytes(rng.integers(0, 256, 64, dtype=np.int64).astype(np.uint8))
                if client.write(block, payload):
                    written[block] = payload
                    indeterminate[block] = set()
                    ok_ops += 1
                else:
                    indeterminate.setdefault(block, set()).add(payload)
            else:
                data = client.read(block)
                if data is not None:
                    ok_ops += 1
                    if block in written:
                        assert data == written[block] or data in indeterminate.get(
                            block, set()
                        ), f"consistency violation at t={t}"
            t += rng.exponential(2.0)
        assert ok_ops / total_ops > 0.5  # the system stayed mostly usable


class TestAnalysisMatchesTraceSimulation:
    """Snapshot formulas vs trace-driven reality (EXPERIMENTS.md).

    Key reproduction finding: the paper's write-availability analysis
    silently assumes recovered nodes are fresh. In a trace-driven run a
    parity that misses one delta rejects every later delta for that
    block (Alg. 1 line 26), so write availability COLLAPSES without a
    repair process — while read availability is essentially unaffected
    (reads only need any quorum plus a consistent decode pool).
    """

    MTBF, MTTR = 40.0, 10.0  # long-run p = 0.8
    QUORUM = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)

    def _run(self, read_fraction: float, repair_interval, seed: int):
        trace = exponential_trace(
            7, mtbf=self.MTBF, mttr=self.MTTR, horizon=2500.0, rng=seed
        )
        config = TraceSimConfig(
            horizon=2500.0,
            op_rate=2.0,
            read_fraction=read_fraction,
            repair_interval=repair_interval,
        )
        return TraceSimulation(7, 4, self.QUORUM, trace, config, rng=seed + 1).run()

    def test_write_availability_collapses_without_repair(self):
        p = self.MTBF / (self.MTBF + self.MTTR)
        predicted = float(write_availability(self.QUORUM, p))
        no_repair = self._run(0.0, None, seed=8).write_availability().mean
        with_repair = self._run(0.0, 5.0, seed=8).write_availability().mean
        assert predicted > 0.7
        assert no_repair < 0.1, "staleness should nearly kill writes"
        assert with_repair > 0.55, "repair should mostly restore writes"
        # The snapshot formula is an upper bound even with repair
        # (staleness windows + the embedded read-before-write).
        assert with_repair <= predicted + 0.02

    def test_more_frequent_repair_helps_writes(self):
        coarse = self._run(0.0, 5.0, seed=8).write_availability().mean
        fine = self._run(0.0, 1.0, seed=8).write_availability().mean
        assert fine >= coarse - 0.01

    def test_read_availability_trace_vs_exact(self):
        p = self.MTBF / (self.MTBF + self.MTTR)
        predicted = float(exact_read_erc(self.QUORUM, 7, 4, p))
        for repair in (None, 5.0):
            measured = self._run(1.0, repair, seed=10).read_availability()
            assert abs(measured.mean - predicted) < 0.02, (repair, measured)


class TestQuorumSystemsAgreeWithProtocols:
    def test_trapezoid_system_predicates_match_protocol_outcomes(self):
        """The abstract TrapezoidSystem predicate and the executable FR
        engine must agree on which alive-sets allow reads and writes."""
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        system = TrapezoidSystem(quorum)
        assert verify_intersection(system)
        cluster = Cluster(9)
        proto = TrapFrProtocol(cluster, 9, 6, quorum)
        rng = np.random.default_rng(12)
        proto.initialize(rng.integers(0, 256, size=(6, 8), dtype=np.int64).astype(np.uint8))

        group = proto.placement.group_nodes(0)  # block 0's trapezoid nodes
        for mask in range(16):
            alive_positions = {pos for pos in range(4) if mask >> pos & 1}
            cluster.recover_all()
            cluster.fail_many([group[pos] for pos in range(4) if pos not in alive_positions])
            can_read = proto.read_block(0).success
            can_write = proto.write_block(0, np.zeros(8, dtype=np.uint8)).success
            assert can_read == system.is_read_quorum(alive_positions), mask
            assert can_write == system.is_write_quorum(alive_positions), mask
        cluster.recover_all()
