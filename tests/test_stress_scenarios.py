"""Stress scenarios: adversarial combinations of features under churn.

Each test composes several mechanisms (concurrent coordinators, repair
daemons, read repair, rotating placement, failure churn) and asserts the
system-level invariants: the stored stripe stays a valid codeword, acked
writes are never lost, and versions serialize.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import RepairService, TrapErcProtocol
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.storage import DiskClient, RotatingPlacement, VirtualDisk

L = 16


def stripe_is_codeword(cluster: Cluster, proto: TrapErcProtocol) -> bool:
    """Check the physically stored stripe is consistent with its version
    vectors: for every parity node, recomputing its payload from data
    blocks *at the versions its vector names* must match.

    Under failures some data nodes may be ahead of a parity's recorded
    contribution; we therefore verify per-parity consistency only when
    every named version matches the data node's stored version (i.e. the
    parity is fully synced), which repair passes should establish.
    """
    code = proto.code
    data = []
    versions = []
    for i in range(code.k):
        node = cluster.node(proto.layout.node_of_block(i))
        payload, version = node._data[proto.data_key(i)].payload, node._data[
            proto.data_key(i)
        ].version
        data.append(payload)
        versions.append(version)
    data = np.stack(data)
    ok = True
    for j in range(code.k, code.n):
        node = cluster.node(proto.layout.node_of_block(j))
        rec = node._parity[proto.parity_key()]
        if all(int(rec.versions[i]) == versions[i] for i in range(code.k)):
            expect = code.encode_block(j, data)
            ok &= bool(np.array_equal(rec.payload, expect))
    return ok


class TestDualCoordinatorChurn:
    def test_two_coordinators_with_repair_daemon(self):
        rng = np.random.default_rng(101)
        cluster = Cluster(9)
        code = MDSCode(9, 6)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        alice = TrapErcProtocol(cluster, code, quorum, stripe_id="shared")
        bob = TrapErcProtocol(cluster, code, quorum, stripe_id="shared")
        repair = RepairService(alice)
        data = rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)
        alice.initialize(data)

        committed: dict[int, tuple[int, np.ndarray]] = {
            i: (0, data[i].copy()) for i in range(6)
        }
        versions_seen: dict[int, list[int]] = {i: [0] for i in range(6)}

        for step in range(150):
            cluster.recover_all()
            if step % 10 == 0:
                repair.sync_all()
            down = rng.choice(9, size=rng.integers(0, 3), replace=False)
            cluster.fail_many(down.tolist())
            writer = alice if rng.random() < 0.5 else bob
            i = int(rng.integers(0, 6))
            action = rng.random()
            if action < 0.6:
                value = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
                res = writer.write_block(i, value)
                if res.success:
                    committed[i] = (res.version, value.copy())
                    versions_seen[i].append(res.version)
            else:
                res = writer.read_block(i)
                if res.success:
                    version, value = committed[i]
                    assert res.version >= version, f"step {step}"
                    if res.version == version:
                        assert np.array_equal(res.value, value), f"step {step}"

        # acked versions strictly increase per block
        for i, vs in versions_seen.items():
            assert vs == sorted(vs)
            assert len(set(vs)) == len(vs)

        # after full recovery + repair, the stripe is a clean codeword
        cluster.recover_all()
        repair.sync_all()
        assert stripe_is_codeword(cluster, alice)

    def test_read_repair_plus_anti_entropy_coexist(self):
        rng = np.random.default_rng(202)
        cluster = Cluster(9)
        code = MDSCode(9, 6)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        proto = TrapErcProtocol(cluster, code, quorum, read_repair=True)
        repair = RepairService(proto)
        data = rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)
        proto.initialize(data)
        committed = {i: (0, data[i].copy()) for i in range(6)}

        for step in range(120):
            cluster.recover_all()
            if step % 15 == 0:
                repair.sync_all()
            down = rng.choice(9, size=rng.integers(0, 3), replace=False)
            cluster.fail_many(down.tolist())
            i = int(rng.integers(0, 6))
            if rng.random() < 0.5:
                value = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
                res = proto.write_block(i, value)
                if res.success:
                    committed[i] = (res.version, value.copy())
            else:
                res = proto.read_block(i)
                if res.success:
                    version, value = committed[i]
                    assert res.version >= version
                    if res.version == version:
                        assert np.array_equal(res.value, value)
        cluster.recover_all()
        repair.sync_all()
        assert stripe_is_codeword(cluster, proto)


class TestRotatingDiskUnderChurn:
    def test_rotating_placement_with_client_retries(self):
        rng = np.random.default_rng(303)
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(
            cluster, 18, 64, 9, 6, quorum, placement=RotatingPlacement(9, 6, 9)
        )
        disk.format()
        client = DiskClient(disk, max_retries=1, repair_on_failure=True)

        view: dict[int, bytes] = {}
        indeterminate: dict[int, set[bytes]] = {}
        ok_reads = 0
        for step in range(200):
            cluster.recover_all()
            down = rng.choice(9, size=rng.integers(0, 3), replace=False)
            cluster.fail_many(down.tolist())
            block = int(rng.integers(0, 18))
            if rng.random() < 0.5:
                payload = bytes(
                    rng.integers(0, 256, 64, dtype=np.int64).astype(np.uint8)
                )
                if client.write(block, payload):
                    view[block] = payload
                    indeterminate[block] = set()
                else:
                    indeterminate.setdefault(block, set()).add(payload)
            else:
                got = client.read(block)
                if got is not None and block in view:
                    assert got == view[block] or got in indeterminate.get(
                        block, set()
                    ), f"step {step}"
                    ok_reads += 1
        assert ok_reads > 20

    def test_all_stripes_remain_codewords_after_recovery(self):
        rng = np.random.default_rng(404)
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(
            cluster, 12, 32, 9, 6, quorum, placement=RotatingPlacement(9, 6, 9)
        )
        disk.format()
        for step in range(60):
            cluster.recover_all()
            down = rng.choice(9, size=rng.integers(0, 3), replace=False)
            cluster.fail_many(down.tolist())
            disk.write(int(rng.integers(0, 12)), bytes([step % 256]) * 16)
        cluster.recover_all()
        disk.repair_all()
        for stripe in disk.stripes:
            assert stripe_is_codeword(cluster, stripe)
