"""The Byzantine metadata tier: self-verifying records, 3f+1 quorums,
verified anti-entropy.

Covers the tentpole layers of the hardened metadata tier end to end:

* record primitives — :func:`writer_key` / :func:`record_tag`
  determinism and coordinate binding;
* :class:`MetadataQuorum` Byzantine sizing validation (3f+1 tiers,
  2f+1 thresholds, intersection);
* :class:`MetadataByzantineBehavior` — the metadata-node lie model
  (forge / stale_record / equivocate, prime-time snapshots,
  first-sight adoption);
* the resolution rule — f+1-matching with the freshness refusal: the
  hardened tier returns correct bytes through f rollback liars and
  fails *cleanly* at f+1, where the fail-stop tier is silently fooled;
* verified anti-entropy — an unverified :class:`RepairService`
  launders corruption onto healthy disks, the verifier-equipped twin
  refuses and counts;
* runner integration — liars armed from the spec, determinism of the
  armed run, zero consistency violations through f on live workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import MetadataSpec, SystemSpec, build_system, run_spec
from repro.cluster import make_rng
from repro.cluster.node import (
    ByzantineBehavior,
    MetadataByzantineBehavior,
    StorageNode,
)
from repro.core import RepairService, TrapErcProtocol
from repro.errors import ConfigurationError
from repro.runtime import (
    DIGEST_SIZE,
    TAG_SIZE,
    BlockVerifier,
    MetadataQuorum,
    block_digest,
    record_tag,
    writer_key,
)

N, K = 9, 6
BLOCK = 32  # the WorkloadSpec default; built.initialize() seeds this size

FAILSTOP = MetadataSpec(nodes=3)
HARDENED = MetadataSpec(nodes=4, f=1)


def hardened_spec(meta=HARDENED, seed=7, **extra):
    return SystemSpec.trapezoid(N, K, 2, 1, 1, 2, metadata=meta, seed=seed, **extra)


# --------------------------------------------------------------------- #
# record primitives
# --------------------------------------------------------------------- #


class TestRecordPrimitives:
    def test_writer_key_is_deterministic_per_namespace(self):
        assert writer_key("stripe-0") == writer_key("stripe-0")
        assert writer_key("stripe-0") != writer_key("stripe-1")
        assert len(writer_key("stripe-0")) == 32

    def test_record_tag_shape_and_determinism(self):
        key = writer_key("s")
        digest = block_digest(np.arange(BLOCK, dtype=np.uint8))
        tag = record_tag(key, "s", 1, 2, digest)
        assert len(tag) == TAG_SIZE
        assert tag == record_tag(key, "s", 1, 2, digest)

    def test_record_tag_binds_every_coordinate(self):
        key = writer_key("s")
        digest = block_digest(np.arange(BLOCK, dtype=np.uint8))
        base = record_tag(key, "s", 1, 2, digest)
        other_digest = block_digest(np.zeros(BLOCK, dtype=np.uint8))
        assert base != record_tag(writer_key("t"), "s", 1, 2, digest)
        assert base != record_tag(key, "t", 1, 2, digest)
        assert base != record_tag(key, "s", 2, 2, digest)
        assert base != record_tag(key, "s", 1, 3, digest)
        assert base != record_tag(key, "s", 1, 2, other_digest)
        # block/version are length-delimited: (1, 2) must not collide
        # with (12, ...) style tuple confusion.
        assert record_tag(key, "s", 1, 2, digest) != record_tag(
            key, "s", 12, 2, digest
        )


# --------------------------------------------------------------------- #
# MetadataQuorum Byzantine sizing
# --------------------------------------------------------------------- #


class TestMetadataQuorumSizing:
    def test_f_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            MetadataQuorum(range(4), 3, 3, f=-1)

    def test_f_requires_3f_plus_1_nodes(self):
        with pytest.raises(ConfigurationError):
            MetadataQuorum(range(3), 2, 2, f=1)
        MetadataQuorum(range(4), 3, 3, f=1)  # 3f+1 exactly: fine

    def test_thresholds_must_reach_2f_plus_1(self):
        with pytest.raises(ConfigurationError):
            MetadataQuorum(range(4), 3, 2, f=1)
        with pytest.raises(ConfigurationError):
            MetadataQuorum(range(4), 2, 3, f=1)

    def test_quorums_must_intersect(self):
        with pytest.raises(ConfigurationError):
            MetadataQuorum(range(4), 2, 2, f=0)

    def test_from_system_overrides_registry_counts_when_f_positive(self):
        from repro.api import QuorumSpec, build_quorum_system

        system = build_quorum_system(QuorumSpec(kind="majority", size=7))
        quorum = MetadataQuorum.from_system(range(9, 16), system, f=2)
        assert (quorum.write_need, quorum.read_need) == (5, 5)
        assert quorum.f == 2

    def test_spec_level_validation(self):
        with pytest.raises(ConfigurationError):
            MetadataSpec(nodes=3, f=1)  # < 3f+1
        with pytest.raises(ConfigurationError):
            MetadataSpec(nodes=4, f=1, signed=False)  # f needs signatures
        assert MetadataSpec(nodes=4, f=1).effective_signed is True
        assert MetadataSpec(nodes=3).effective_signed is False
        assert MetadataSpec(nodes=3, signed=True).effective_signed is True


# --------------------------------------------------------------------- #
# the metadata lie model
# --------------------------------------------------------------------- #


def meta_node(built, offset=0):
    return built.cluster.node(built.spec.cluster.num_nodes + offset)


class TestMetadataByzantineBehavior:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MetadataByzantineBehavior("gaslight", 1.0, make_rng(0))
        with pytest.raises(ConfigurationError):
            MetadataByzantineBehavior("forge", 1.5, make_rng(0))

    def test_rate_zero_is_inert(self):
        behavior = MetadataByzantineBehavior("forge", 0.0, make_rng(1))
        value = (np.arange(4, dtype=np.uint8), 3)
        assert behavior.apply(StorageNode(0), "read_data", value, ("k",)) is value

    def test_forge_bumps_version_and_garbles_record(self):
        node = StorageNode(0)
        behavior = MetadataByzantineBehavior("forge", 1.0, make_rng(2))
        record = np.arange(DIGEST_SIZE, dtype=np.uint8)
        payload, version = behavior.apply(node, "read_data", (record, 3), ("k",))
        assert version == 4
        assert not np.array_equal(payload, record)
        assert behavior.apply(node, "data_version", 3, ("k",)) == 4
        assert node.stats.corrupted_replies == 2

    def test_stale_record_replays_the_primed_snapshot(self):
        built = build_system(hardened_spec(meta=FAILSTOP))
        built.initialize()
        node = meta_node(built)
        key = next(iter(dict(node._data)))
        truth_v0 = node.read_data(key)
        behavior = MetadataByzantineBehavior("stale_record", 1.0, make_rng(3))
        behavior.prime(node)
        node.put_data(key, np.zeros(DIGEST_SIZE, dtype=np.uint8), 9)
        payload, version = behavior.apply(
            node, "read_data", node.read_data(key), (key,)
        )
        assert version == truth_v0[1]
        assert np.array_equal(payload, truth_v0[0])
        assert behavior.injected == 1
        # replaying the truth itself is not counted as an injection
        node.put_data(key, truth_v0[0], truth_v0[1])
        behavior.apply(node, "read_data", node.read_data(key), (key,))
        assert behavior.injected == 1

    def test_stale_record_adopts_unknown_keys_on_first_sight(self):
        node = StorageNode(0)
        behavior = MetadataByzantineBehavior("stale_record", 1.0, make_rng(4))
        first = (np.full(DIGEST_SIZE, 7, dtype=np.uint8), 2)
        # first sight: passed through truthfully, snapshotted
        out = behavior.apply(node, "read_data", first, ("new",))
        assert out is first and behavior.injected == 0
        later = (np.full(DIGEST_SIZE, 9, dtype=np.uint8), 3)
        payload, version = behavior.apply(node, "read_data", later, ("new",))
        assert version == 2 and np.array_equal(payload, first[0])
        assert behavior.injected == 1


# --------------------------------------------------------------------- #
# the resolution rule: rollback through f, clean failure at f+1
# --------------------------------------------------------------------- #


def rollback_attack(meta: MetadataSpec, liars: int, seed: int = 11):
    """Authentic-rollback replay plus one backup-restored data node.

    Returns (result, new_value, built): liars replay the version-0
    records they held before the write committed, and the home node's
    disk is rolled back to the version-0 payload — the only honest
    configuration in which a rollback can serve *matching* stale bytes.
    """
    built = build_system(hardened_spec(meta=meta, seed=seed))
    data = built.initialize()
    first = built.spec.cluster.num_nodes
    behaviors = []
    for idx in range(liars):
        behavior = MetadataByzantineBehavior(
            "stale_record", 1.0, make_rng(1000 + idx)
        )
        behavior.prime(built.cluster.node(first + idx))
        behaviors.append((first + idx, behavior))
    new_value = (
        make_rng(seed + 1).integers(0, 256, BLOCK, dtype=np.int64).astype(np.uint8)
    )
    assert built.engine.write_block(0, new_value).success
    ni = built.layout.node_of_block(0)
    built.cluster.rpc(ni, "put_data", built.engine.data_key(0), data[0], 0)
    for node_id, behavior in behaviors:
        built.cluster.node(node_id).set_byzantine(behavior)
    return built.engine.read_block(0), new_value, built


class TestRollbackResolution:
    def test_failstop_tier_is_silently_fooled_at_quorum_coverage(self):
        # The control: once liars cover the majority read quorum (2 of
        # 3), the fail-stop tier serves version-0 bytes with no error.
        result, new_value, _ = rollback_attack(FAILSTOP, liars=2)
        assert result.success
        assert result.version == 0
        assert not np.array_equal(result.value, new_value)

    def test_hardened_tier_correct_through_f(self):
        for liars in (0, 1):
            result, new_value, built = rollback_attack(HARDENED, liars=liars)
            assert result.success, liars
            assert np.array_equal(result.value, new_value), liars
            assert built.engine.verifier.metadata_failures == 0

    def test_hardened_tier_fails_cleanly_at_f_plus_1(self):
        # f+1 colluding replays assemble a qualifying stale group; the
        # freshness refusal rejects it because an authenticated record
        # is newer — a clean failure, never wrong bytes.
        result, _, built = rollback_attack(HARDENED, liars=2)
        assert not result.success
        assert built.engine.verifier.metadata_failures >= 1

    def test_forged_records_die_at_the_tag_check(self):
        built = build_system(hardened_spec())
        built.initialize()
        liar = meta_node(built)
        liar.set_byzantine(MetadataByzantineBehavior("forge", 1.0, make_rng(5)))
        result = built.engine.read_block(0)
        assert result.success and result.version == 0
        assert built.engine.verifier.tag_rejections >= 1
        assert built.engine.verifier.metadata_failures == 0

    def test_version_tie_conflicts_surface_in_failstop_mode(self):
        # Satellite: equal-version records with differing digests are
        # counted even when the fail-stop max-version fold would have
        # silently kept the first-seen digest.
        built = build_system(hardened_spec(meta=FAILSTOP))
        built.initialize()
        verifier = built.engine.verifier
        key = ("meta", verifier.namespace, 0)
        first = built.spec.cluster.num_nodes
        digest_a = block_digest(np.zeros(BLOCK, dtype=np.uint8))
        digest_b = block_digest(np.ones(BLOCK, dtype=np.uint8))
        for node_id, digest in ((first, digest_a), (first + 1, digest_b)):
            built.cluster.rpc(
                node_id,
                "put_data",
                key,
                np.frombuffer(digest, dtype=np.uint8).copy(),
                5,
            )
        record = verifier.lookup(0)
        assert record is not None and record[0] == 5
        assert verifier.record_conflicts >= 1


# --------------------------------------------------------------------- #
# verified anti-entropy: repair refuses to launder corruption
# --------------------------------------------------------------------- #


def unverified_twin(built) -> TrapErcProtocol:
    """A fail-stop engine over the *same* cluster, keys and layout."""
    return TrapErcProtocol(
        built.cluster,
        built.code,
        built.quorum,
        layout=built.layout,
        stripe_id="api-stripe",
    )


def repair_verifier(built) -> BlockVerifier:
    first = built.spec.cluster.num_nodes
    quorum = MetadataQuorum(range(first, first + 3), 2, 2)
    return BlockVerifier(built.cluster, quorum, namespace="api-stripe")


class TestVerifiedAntiEntropy:
    def arm_home(self, built, block=0):
        ni = built.layout.node_of_block(block)
        built.cluster.node(ni).set_byzantine(
            ByzantineBehavior("payload", 1.0, make_rng(6))
        )
        return ni

    def test_unverified_repair_launders_corruption_onto_disk(self):
        # The fooled control: the corrupt home reply round-trips through
        # an unverified repair and lands *on disk* — after the liar is
        # disarmed, reads still return wrong bytes.
        built = build_system(hardened_spec(meta=FAILSTOP))
        data = built.initialize()
        ni = self.arm_home(built)
        svc = RepairService(unverified_twin(built))
        assert svc.repair_data_node(0)
        assert svc.repairs_performed == 1
        built.cluster.node(ni).set_byzantine(None)
        payload, version = built.cluster.node(ni).read_data(
            built.engine.data_key(0)
        )
        assert version == 0
        assert not np.array_equal(payload, data[0])

    def test_verified_repair_blocks_and_counts(self):
        built = build_system(hardened_spec(meta=FAILSTOP))
        data = built.initialize()
        ni = self.arm_home(built)
        svc = RepairService(unverified_twin(built), verifier=repair_verifier(built))
        assert not svc.repair_data_node(0)
        assert svc.repairs_blocked == 1
        assert svc.records_rejected == 1
        assert svc.repairs_performed == 0
        built.cluster.node(ni).set_byzantine(None)
        payload, _ = built.cluster.node(ni).read_data(built.engine.data_key(0))
        assert np.array_equal(payload, data[0])  # disk untouched

    def test_unverified_parity_repair_poisons_a_healthy_node(self):
        built = build_system(hardened_spec(meta=FAILSTOP))
        data = built.initialize()
        self.arm_home(built)
        parity_node = built.layout.parity_nodes[0]
        built.cluster.fail(parity_node)
        built.cluster.recover(parity_node, wipe=True)
        svc = RepairService(unverified_twin(built))
        assert svc.repair_parity_node(parity_node)
        j = built.layout.block_of_node(parity_node)
        correct = built.code.encode_block(j, data)
        rebuilt, _ = built.cluster.node(parity_node).read_parity(
            built.engine.parity_key()
        )
        assert not np.array_equal(rebuilt, correct)  # laundered

    def test_verified_parity_repair_leaves_the_node_wiped(self):
        built = build_system(hardened_spec(meta=FAILSTOP))
        built.initialize()
        self.arm_home(built)
        parity_node = built.layout.parity_nodes[0]
        built.cluster.fail(parity_node)
        built.cluster.recover(parity_node, wipe=True)
        svc = RepairService(unverified_twin(built), verifier=repair_verifier(built))
        assert not svc.repair_parity_node(parity_node)
        assert svc.repairs_blocked == 1
        assert svc.records_rejected >= 1
        assert (
            built.cluster.rpc(parity_node, "parity_versions", built.engine.parity_key())
            is None
        )

    def test_counters_surface(self):
        svc = RepairService(
            unverified_twin(build_system(hardened_spec(meta=FAILSTOP)))
        )
        assert svc.counters() == {
            "repairs_performed": 0,
            "repairs_blocked": 0,
            "records_rejected": 0,
        }


# --------------------------------------------------------------------- #
# runner integration: liars from the spec, determinism, live safety
# --------------------------------------------------------------------- #


def liar_spec(seed, liars, mode="forge", meta=None, **extra):
    meta = {"nodes": 4, "f": 1} if meta is None else meta
    payload = {
        "protocol": "trap-erc",
        "seed": seed,
        "metadata": meta,
        "workload": {"num_ops": 40},
        "scenario": {
            "kind": "latency",
            "clients": 1,
            "horizon": 10_000.0,
            "faultload": {
                "kind": "byzantine",
                "byzantine_fraction": 0.0,
                "metadata_liars": liars,
                "metadata_mode": mode,
            },
        },
    }
    payload.update(extra)
    return SystemSpec.from_dict(payload)


class TestRunnerIntegration:
    def test_liars_need_a_metadata_section(self):
        with pytest.raises(ConfigurationError):
            run_spec(liar_spec(0, liars=1, meta=None, metadata=None))

    def test_liars_cannot_exceed_the_tier(self):
        with pytest.raises(ConfigurationError):
            run_spec(liar_spec(0, liars=5))

    def test_armed_run_is_deterministic(self):
        first = run_spec(liar_spec(3, liars=1)).to_json()
        second = run_spec(liar_spec(3, liars=1)).to_json()
        assert first == second

    def test_arming_zero_liars_matches_unarmed_run(self):
        # The appended stream 13 is consumed only when liars are armed:
        # a liars=0 byzantine faultload replays the unarmed run exactly.
        base = run_spec(liar_spec(4, liars=0)).data
        armed = run_spec(liar_spec(4, liars=0)).data
        assert armed["summary"] == base["summary"]
        assert armed["trace_hash"] == base["trace_hash"]
        assert armed["byzantine"]["metadata_nodes"] == []
        assert armed["byzantine"]["metadata_injected"] == 0

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        mode=st.sampled_from(["forge", "stale_record", "equivocate"]),
    )
    def test_zero_wrong_bytes_through_f_on_live_workloads(self, seed, mode):
        # The acceptance pin: f armed liars of a 3f+1 signed tier never
        # produce a consistency violation — reads are correct or fail.
        data = run_spec(liar_spec(seed, liars=1, mode=mode)).data
        assert data["summary"]["consistency_violations"] == 0
        assert data["byzantine"]["metadata_nodes"]

    def test_forgers_are_detected_and_survived_at_f(self):
        data = run_spec(liar_spec(9, liars=1, mode="forge")).data
        assert data["summary"]["read_availability"] == 1.0
        assert data["summary"]["write_availability"] == 1.0
        assert data["summary"]["consistency_violations"] == 0
        assert data["byzantine"]["metadata_injected"] > 0
        assert data["byzantine"]["detected"]["tag_rejections"] > 0

    def test_repair_counters_surface_in_the_report(self):
        data = run_spec(
            liar_spec(
                5,
                liars=1,
                scenario={
                    "kind": "latency",
                    "clients": 1,
                    "horizon": 10_000.0,
                    "repair_interval": 50.0,
                    "faultload": {
                        "kind": "byzantine",
                        "byzantine_fraction": 0.0,
                        "metadata_liars": 1,
                        "metadata_mode": "forge",
                    },
                },
            )
        ).data
        repair = data["byzantine"]["repair"]
        assert set(repair) == {
            "repairs_performed",
            "repairs_blocked",
            "records_rejected",
        }
