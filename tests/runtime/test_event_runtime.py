"""Event-path session-layer semantics: delivery, refusal, drop, retry.

These tests drive the EventCoordinator directly with hand-built plans so
each message-lifecycle rule is observable in isolation: dead nodes refuse
fast (error reply after a round trip), partitioned nodes drop silently
(only the timeout resolves them), retries resend, quorum-wait completes
on the q-th fastest response, and the whole thing replays bit-identically
from one seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, Simulator
from repro.cluster.network import FixedLatency, Network
from repro.errors import SimulationError
from repro.runtime import (
    EventCoordinator,
    Request,
    RetryPolicy,
    Round,
)

DELAY = 0.001  # one message leg
RTT = 2 * DELAY


def make_world(num_nodes=5, timeout=0.05, retries=0):
    network = Network(latency=FixedLatency(DELAY))
    cluster = Cluster(num_nodes, network=network)
    sim = Simulator()
    coordinator = EventCoordinator(
        cluster,
        sim,
        rng=0,
        policy=RetryPolicy(timeout=timeout, retries=retries),
        record_trace=True,
    )
    for node in cluster.nodes:
        node.put_data("k", np.zeros(4, dtype=np.uint8), 0)
    return cluster, sim, coordinator


def version_round(cluster, need=None, **kwargs):
    return Round(
        [Request(n.node_id, "data_version", ("k",)) for n in cluster.nodes],
        need=need,
        **kwargs,
    )


def run_plan(coordinator, round_):
    def plan():
        outcome = yield round_
        return outcome

    return coordinator.execute(plan())


class TestDeliveryLifecycle:
    def test_round_trip_latency_is_two_legs(self):
        cluster, sim, coordinator = make_world()
        outcome = run_plan(coordinator, version_round(cluster))
        assert outcome.satisfied
        assert outcome.elapsed == pytest.approx(RTT)
        assert len(outcome.accepted) == len(cluster)

    def test_quorum_wait_completes_at_need_not_all(self):
        cluster, sim, coordinator = make_world()
        outcome = run_plan(coordinator, version_round(cluster, need=2))
        assert outcome.satisfied and len(outcome.accepted) == 2
        # messages attributed to the op: 5 sends + the 2 replies that
        # arrived before completion (FixedLatency ties break by order).
        assert outcome.messages == len(cluster) + 2

    def test_dead_node_refuses_fast(self):
        cluster, sim, coordinator = make_world()
        cluster.fail(1)
        outcome = run_plan(coordinator, version_round(cluster))
        assert outcome.elapsed == pytest.approx(RTT)  # refusal is not a timeout
        assert len(outcome.accepted) == len(cluster) - 1
        failed = [r for r in outcome.responses if not r.ok]
        assert [r.request.node_id for r in failed] == [1]
        assert cluster.network.stats.timeouts == 0

    def test_partitioned_node_times_out(self):
        cluster, sim, coordinator = make_world(timeout=0.05)
        cluster.network.partition([2])
        outcome = run_plan(coordinator, version_round(cluster))
        assert outcome.elapsed == pytest.approx(0.05)  # the timeout bounds it
        assert cluster.network.stats.timeouts == 1
        assert cluster.network.stats.messages_dropped == 1

    def test_retry_reaches_node_after_heal(self):
        cluster, sim, coordinator = make_world(timeout=0.05, retries=2)
        cluster.network.partition([2])
        # Heal while the first attempt's timeout is pending: the resend
        # goes through.
        sim.schedule_at(0.06, lambda: cluster.network.heal())
        outcome = run_plan(coordinator, version_round(cluster))
        assert outcome.satisfied and len(outcome.accepted) == len(cluster)
        assert cluster.network.stats.retries >= 1

    def test_retries_exhausted_resolve_failed(self):
        cluster, sim, coordinator = make_world(timeout=0.02, retries=1)
        cluster.network.partition([2])
        outcome = run_plan(coordinator, version_round(cluster))
        failed = [r for r in outcome.responses if not r.ok]
        assert [r.request.node_id for r in failed] == [2]
        # two attempts, two timeouts
        assert cluster.network.stats.timeouts == 2
        assert outcome.elapsed == pytest.approx(0.04)

    def test_node_failing_mid_flight_refuses_at_delivery(self):
        cluster, sim, coordinator = make_world()
        # The node dies while the request is on the wire.
        sim.schedule_at(DELAY / 2, lambda: cluster.fail(3))
        outcome = run_plan(coordinator, version_round(cluster))
        failed = [r for r in outcome.responses if not r.ok]
        assert [r.request.node_id for r in failed] == [3]

    def test_partition_mid_flight_drops_request(self):
        cluster, sim, coordinator = make_world(timeout=0.03)
        sim.schedule_at(DELAY / 2, lambda: cluster.network.partition([3]))
        outcome = run_plan(coordinator, version_round(cluster))
        failed = [r for r in outcome.responses if not r.ok]
        assert [r.request.node_id for r in failed] == [3]
        assert cluster.network.stats.messages_dropped == 1

    def test_empty_round_completes_immediately(self):
        _, _, coordinator = make_world()
        outcome = run_plan(coordinator, Round([]))
        assert outcome.satisfied and outcome.elapsed == 0.0

    def test_no_retransmission_after_round_completes(self):
        # need=3 of 5 with one silent node: the op completes on the fast
        # quorum; the partitioned attempt must die quietly at its first
        # timeout instead of burning through the retry budget on behalf
        # of a finished operation.
        cluster, sim, coordinator = make_world(timeout=0.05, retries=3)
        cluster.network.partition([4])
        outcome = run_plan(coordinator, version_round(cluster, need=3))
        assert outcome.satisfied
        sim.run()  # drain everything the session layer still scheduled
        assert cluster.network.stats.timeouts == 0
        assert cluster.network.stats.retries == 0
        # one send to the silent node, never repeated
        assert cluster.network.stats.messages_dropped == 1
        # the dangling timer chain must not stretch virtual time:
        # everything resolves within one timeout window.
        assert sim.now <= 0.05 + RTT


class TestOperationBookkeeping:
    def test_concurrent_submits_tracked(self):
        cluster, sim, coordinator = make_world()

        def plan():
            yield version_round(cluster)
            return "done"

        results = []
        coordinator.submit(plan(), results.append)
        coordinator.submit(plan(), results.append)
        assert coordinator.in_flight == 2
        sim.run()
        assert results == ["done", "done"]
        assert coordinator.max_in_flight == 2
        assert coordinator.in_flight == 0

    def test_execute_rejects_reentrancy(self):
        cluster, sim, coordinator = make_world()

        def inner():
            return "inner"
            yield  # pragma: no cover

        def outer():
            outcome = yield version_round(cluster)
            coordinator.execute(inner())
            return outcome

        with pytest.raises(SimulationError, match="re-entrant"):
            coordinator.execute(outer())

    def test_round_kind_message_accounting(self):
        cluster, sim, coordinator = make_world()
        run_plan(coordinator, version_round(cluster, kind="version-query"))
        sim.run()
        # 5 sends + 5 replies, all attributed to the version-query kind.
        assert coordinator.round_messages["version-query"] == 2 * len(cluster)


class TestDeterminism:
    def _trace(self, fail_at=None):
        cluster, sim, coordinator = make_world(timeout=0.03, retries=1)
        cluster.network.partition([4])
        if fail_at is not None:
            sim.schedule_at(fail_at, lambda: cluster.fail(0))

        def plan():
            yield version_round(cluster, need=3)
            outcome = yield version_round(cluster)
            return outcome

        coordinator.execute(plan())
        sim.run()
        return coordinator.trace_hash()

    def test_same_seed_same_trace(self):
        assert self._trace() == self._trace()

    def test_different_schedule_different_trace(self):
        assert self._trace() != self._trace(fail_at=0.0005)


class TestShutdownHygiene:
    """Discarding a coordinator mid-simulation must not leak sessions."""

    def test_shutdown_cancels_outstanding_timers(self):
        cluster, sim, coordinator = make_world(timeout=0.05)
        cluster.network.partition(range(len(cluster)))  # all silent
        handle = coordinator.submit(
            (lambda: (yield version_round(cluster, need=5)))()
        )
        # every attempt sent, dropped, and now waiting on its timer
        assert len(coordinator.outstanding) == len(cluster)
        cancelled = coordinator.shutdown()
        assert cancelled == len(cluster)
        assert len(coordinator.outstanding) == 0
        # the heap holds only dead timers: nothing fires, time never moves
        processed = sim.processed
        sim.run()
        assert sim.processed == processed
        assert not handle.done  # the abandoned operation stays abandoned

    def test_shutdown_after_clean_run_is_noop(self):
        cluster, sim, coordinator = make_world()
        outcome = run_plan(coordinator, version_round(cluster))
        assert outcome.satisfied
        assert coordinator.shutdown() == 0

    def test_coordinator_stays_usable_after_shutdown(self):
        cluster, sim, coordinator = make_world(timeout=0.05)
        cluster.network.partition([0])
        coordinator.submit(
            (lambda: (yield version_round(cluster, need=5)))()
        )
        coordinator.shutdown()
        cluster.network.heal()
        # shutdown drains, it does not poison: a fresh plan completes
        outcome = run_plan(coordinator, version_round(cluster, need=3))
        assert outcome.satisfied

    def test_closed_loop_sim_shuts_coordinator_down(self):
        # the trace-sim driver calls shutdown() after run(): no attempt
        # may survive with a live timer once a simulation finishes
        from repro.api import ScenarioRunner, SystemSpec

        spec = SystemSpec.from_dict(
            {
                "protocol": "trap-erc",
                "code": {"n": 9, "k": 6},
                "quorum": {"kind": "trapezoid", "a": 2, "b": 1, "h": 1, "w": 2},
                "workload": {"num_ops": 30, "block_length": 16},
                "scenario": {"kind": "latency", "clients": 2, "horizon": 60.0},
                "seed": 3,
            }
        )
        result = ScenarioRunner(spec).run()
        assert result.data["summary"]["read_latency"]["count"] > 0
