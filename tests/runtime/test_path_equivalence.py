"""Property tests pinning the instant and event execution paths together.

The acceptance contract of the runtime refactor: all four protocol
engines run the *same* plans on both coordinators, and under a fixed
failure state the two paths return identical operation results. With a
constant per-message latency the event path resolves responses in
request order (ties break by send order), so even the accepted-subset
choices match the legacy sequential loop — results are equal field by
field, not just statistically.

Messages are exempt: the event path fans out to every node of a round by
design, the instant path stops issuing at the threshold. (The instant
path's own counts are pinned against the pre-runtime engines by the
legacy suite: tests/core, tests/analysis/test_cost_optimizer.py.)
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SystemSpec, build_system, protocol_names
from repro.cluster.network import FixedLatency, Network
from repro.cluster.events import Simulator
from repro.cluster.rng import make_rng
from repro.runtime import EventCoordinator, RetryPolicy

N, K = 9, 6
BLOCK = 8
SPEC = SystemSpec.trapezoid(N, K, 2, 1, 1, 2, seed=5)


def build_pair(protocol: str):
    """One instant system + one event system, identically initialized."""
    spec = SPEC.replace(protocol=protocol)
    instant = build_system(spec)
    sim = Simulator()

    def factory(cluster):
        cluster.network.latency = FixedLatency(0.001)
        return EventCoordinator(
            cluster, sim, rng=1, policy=RetryPolicy(timeout=0.05)
        )

    event = build_system(spec, coordinator_factory=factory)
    data = (
        make_rng(7)
        .integers(0, 256, size=(K, BLOCK), dtype=np.int64)
        .astype(np.uint8)
    )
    instant.initialize(data)
    event.initialize(data)
    return instant, event, sim


def assert_read_equal(a, b):
    assert a.success == b.success
    assert a.version == b.version
    assert a.case == b.case
    assert a.check_level == b.check_level
    if a.success:
        assert np.array_equal(a.value, b.value)


def assert_write_equal(a, b):
    assert a.success == b.success
    assert a.version == b.version
    assert a.failed_level == b.failed_level


def node_state(cluster) -> dict:
    """Full on-disk state snapshot (payloads + versions), network-free."""
    state = {}
    for node in cluster.nodes:
        records = {}
        for key, rec in node._data.items():
            records[key] = ("data", rec.payload.tobytes(), rec.version)
        for key, rec in node._parity.items():
            records[key] = ("parity", rec.payload.tobytes(), tuple(rec.versions))
        state[node.node_id] = records
    return state


def apply_alive(system, alive_ids, sim=None):
    for node in system.cluster.nodes:
        if node.node_id in alive_ids and not node.alive:
            node.recover()
        elif node.node_id not in alive_ids and node.alive:
            node.fail()


alive_subsets = st.sets(st.integers(0, N - 1), max_size=N).map(
    lambda down: frozenset(range(N)) - down
)


class TestSyncedStateEquivalence:
    """Fresh synced state + one failure pattern: results match exactly."""

    @pytest.mark.parametrize("protocol", sorted(protocol_names()))
    @settings(max_examples=25, deadline=None)
    @given(alive=alive_subsets, block=st.integers(0, K - 1))
    def test_read_and_write_agree(self, protocol, alive, block):
        instant, event, sim = build_pair(protocol)
        apply_alive(instant, alive)
        apply_alive(event, alive)

        ri = instant.engine.read_block(block)
        re = event.engine.read_block(block)
        assert_read_equal(ri, re)

        value = np.full(BLOCK, 7, dtype=np.uint8)
        wi = instant.engine.write_block(block, value)
        we = event.engine.write_block(block, value)
        assert_write_equal(wi, we)
        sim.run()  # drain straggler deliveries before comparing disks
        assert node_state(instant.cluster) == node_state(event.cluster)


HISTORY_PROTOCOLS = ("trap-erc", "trap-fr", "rowa")
# majority is excluded from the *history* property: its legacy read polls
# every replica and takes the global max version, while the event path's
# quorum-wait legitimately returns after a majority — under staleness
# (partial failed writes) the two may surface different uncommitted
# versions. Both satisfy majority-read safety; they are not bit-equal.

steps = st.lists(
    st.tuples(
        st.sets(st.integers(0, N - 1), max_size=3),  # down nodes
        st.booleans(),  # read?
        st.integers(0, K - 1),  # block
    ),
    min_size=1,
    max_size=6,
)


class TestFailureHistoryEquivalence:
    """Multi-step histories with accumulated staleness stay in lockstep."""

    @pytest.mark.parametrize("protocol", HISTORY_PROTOCOLS)
    @settings(max_examples=20, deadline=None)
    @given(history=steps)
    def test_lockstep_history(self, protocol, history):
        instant, event, sim = build_pair(protocol)
        version = 0
        for down, is_read, block in history:
            alive = frozenset(range(N)) - down
            apply_alive(instant, alive)
            apply_alive(event, alive)
            if is_read:
                assert_read_equal(
                    instant.engine.read_block(block),
                    event.engine.read_block(block),
                )
            else:
                version += 1
                value = np.full(BLOCK, version % 256, dtype=np.uint8)
                assert_write_equal(
                    instant.engine.write_block(block, value),
                    event.engine.write_block(block, value),
                )
            sim.run()  # drain stragglers: end-of-step disks must agree
            assert node_state(instant.cluster) == node_state(event.cluster)
