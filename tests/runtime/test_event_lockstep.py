"""Lockstep equivalence: vectorized event core vs the frozen reference.

:class:`~repro.runtime.event.EventCoordinator` (struct-of-arrays session
table, batched deliveries, pooled waves) must replay
:class:`~repro.runtime.reference.ReferenceEventCoordinator` (the
per-object pre-vectorization loop, kept verbatim as the oracle)
bit-for-bit: same values and versions, same message/timeout/drop
counters, same ``trace_hash``. Pinned here across all four protocols,
churn/partition/byzantine faultloads, and shards in {1, 4} — both as an
exhaustive deterministic grid and hypothesis-style over seeds, client
counts and latency models.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, FixedLatency, Network, Simulator
from repro.cluster.failures import exponential_trace
from repro.cluster.network import LognormalLatency, TwoTierLatency
from repro.cluster.node import ByzantineBehavior
from repro.cluster.rng import make_rng, spawn_rngs
from repro.core.replication import MajorityProtocol, RowaProtocol
from repro.core.trap_erc import TrapErcProtocol
from repro.core.trap_fr import TrapFrProtocol
from repro.erasure import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.runtime import (
    EventCoordinator,
    RetryPolicy,
    Shard,
    ShardRouter,
    make_service_queues,
)
from repro.runtime.reference import ReferenceEventCoordinator
from repro.sim import (
    ClosedLoopConfig,
    ClosedLoopSimulation,
    PartitionWindow,
    ShardedClosedLoopSimulation,
    schedule_partitions,
    schedule_trace,
    uniform_workload,
)
from repro.cluster import FixedServiceTime

N, K = 9, 6
BLOCK = 8
HORIZON = 60.0

PROTOCOLS = ("trap-erc", "trap-fr", "rowa", "majority")
FAULTLOADS = ("none", "churn", "partition", "byzantine")

LATENCIES = {
    "fixed": lambda: FixedLatency(0.001),
    "lognormal": lambda: LognormalLatency(),
    "two_tier": lambda: TwoTierLatency(
        local=0.0005, remote=0.004, rack_size=3, jitter=0.3
    ),
}


def _quorum():
    return TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)


def _make_engine(protocol, cluster, code, coordinator, shard_index):
    layout = StripeLayout(N, K, tuple((b + shard_index) % N for b in range(N)))
    stripe_id = f"lockstep-{shard_index}"
    if protocol == "trap-erc":
        return TrapErcProtocol(
            cluster, code, _quorum(), layout=layout,
            stripe_id=stripe_id, coordinator=coordinator,
        )
    if protocol == "trap-fr":
        return TrapFrProtocol(
            cluster, N, K, _quorum(), layout=layout,
            stripe_id=stripe_id, coordinator=coordinator,
        )
    cls = RowaProtocol if protocol == "rowa" else MajorityProtocol
    return cls(
        cluster, list(layout.consistency_group(0)), stripe_id,
        coordinator=coordinator,
    )


def _apply_faultload(kind, sim, cluster):
    if kind == "none":
        return
    if kind == "churn":
        trace = exponential_trace(
            N, mtbf=8.0, mttr=2.0, horizon=HORIZON, rng=make_rng(7)
        )
        schedule_trace(sim, cluster, trace, HORIZON)
    elif kind == "partition":
        windows = [
            PartitionWindow(0.02, 0.31, (0, 1)),
            PartitionWindow(0.45, 0.90, (4, 5, 6)),
            PartitionWindow(1.10, 2.00, (2,)),
        ]
        schedule_partitions(sim, cluster, windows, HORIZON)
    elif kind == "byzantine":
        cluster.node(2).set_byzantine(ByzantineBehavior("payload", 0.4, make_rng(11)))
        cluster.node(5).set_byzantine(ByzantineBehavior("stale", 0.4, make_rng(12)))
    else:  # pragma: no cover - guard against typo'd parametrization
        raise AssertionError(kind)


def _node_digest(cluster):
    """SHA-256 over every node's stored records (payloads + versions)."""
    digest = hashlib.sha256()
    for node in cluster.nodes:
        for key in sorted(node._data, key=repr):
            rec = node._data[key]
            digest.update(repr((node.node_id, key, rec.version)).encode())
            digest.update(np.ascontiguousarray(rec.payload).tobytes())
        for key in sorted(node._parity, key=repr):
            rec = node._parity[key]
            digest.update(repr((node.node_id, key)).encode())
            for name in rec.__dataclass_fields__:
                value = getattr(rec, name)
                if isinstance(value, np.ndarray):
                    digest.update(np.ascontiguousarray(value).tobytes())
                else:
                    digest.update(repr(value).encode())
    return digest.hexdigest()


def _run(coordinator_cls, protocol, faultload, shards, seed, clients,
         read_fraction, latency="fixed", service=False, retries=1):
    """One closed-loop run; returns the full observable fingerprint."""
    network = Network(latency=LATENCIES[latency]())
    cluster = Cluster(N, network=network)
    sim = Simulator()
    queues = (
        make_service_queues(sim, N, FixedServiceTime(0.0004), rng=99)
        if service else None
    )
    policy = RetryPolicy(timeout=0.05, retries=retries)
    code = MDSCode(N, K)
    init_rng = make_rng(1)
    rngs = [make_rng(seed)] if shards == 1 else spawn_rngs(make_rng(seed), shards)
    shard_objs = []
    for s in range(shards):
        coordinator = coordinator_cls(
            cluster, sim, rng=rngs[s], policy=policy,
            record_trace=True, queues=queues,
        )
        engine = _make_engine(protocol, cluster, code, coordinator, s)
        engine.initialize(
            init_rng.integers(0, 256, size=(K, BLOCK), dtype=np.int64)
            .astype(np.uint8)
        )
        shard_objs.append(Shard(s, engine, coordinator, K))
    cluster.reset_stats()
    _apply_faultload(faultload, sim, cluster)
    ops = 30
    config = ClosedLoopConfig(clients=clients, think_time=0.0, horizon=HORIZON)
    if shards == 1:
        shard = shard_objs[0]
        workload = uniform_workload(ops, K, read_fraction, rng=make_rng(2))
        driver = ClosedLoopSimulation(
            cluster, shard.engine, shard.coordinator, workload, config=config
        )
        tally = driver.run()
        trace = shard.coordinator.trace_hash()
    else:
        router = ShardRouter(shard_objs)
        workload = uniform_workload(
            ops, router.num_blocks, read_fraction, rng=make_rng(2)
        )
        driver = ShardedClosedLoopSimulation(
            cluster, router, workload, config=config
        )
        tally = driver.run()
        trace = router.trace_hash()
    stats = network.stats
    round_messages = sum(
        (shard.coordinator.round_messages for shard in shard_objs), start=type(
            shard_objs[0].coordinator.round_messages
        )()
    )
    return {
        "summary": tally.summary(),
        "read_latencies": list(tally.read_latencies),
        "write_latencies": list(tally.write_latencies),
        "committed": dict(driver._committed),
        "traffic": (
            stats.messages, stats.bytes_sent, stats.messages_dropped,
            stats.timeouts, stats.retries, stats.rpc_failures, stats.rounds,
        ),
        "delays": (stats.total_message_delay, stats.operation_latency),
        "by_kind": dict(stats.by_kind),
        "round_messages": dict(round_messages),
        "trace_hash": trace,
        "nodes": _node_digest(cluster),
        "virtual_now": sim.now,
    }


def _assert_lockstep(**kwargs):
    vectorized = _run(EventCoordinator, **kwargs)
    reference = _run(ReferenceEventCoordinator, **kwargs)
    assert vectorized == reference


class TestLockstepGrid:
    """Exhaustive deterministic grid: protocol x faultload x shards."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("faultload", FAULTLOADS)
    @pytest.mark.parametrize("shards", (1, 4))
    def test_vectorized_matches_reference(self, protocol, faultload, shards):
        _assert_lockstep(
            protocol=protocol, faultload=faultload, shards=shards,
            seed=5, clients=3, read_fraction=0.5,
        )


class TestLockstepProperty:
    """Hypothesis sweep over seeds, clients, mixes and latency models."""

    @given(
        seed=st.integers(0, 2**16),
        clients=st.integers(1, 6),
        read_fraction=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        faultload=st.sampled_from(FAULTLOADS),
        shards=st.sampled_from([1, 4]),
        latency=st.sampled_from(sorted(LATENCIES)),
        protocol=st.sampled_from(PROTOCOLS),
    )
    @settings(max_examples=25, deadline=None)
    def test_fingerprints_identical(
        self, seed, clients, read_fraction, faultload, shards, latency, protocol
    ):
        _assert_lockstep(
            protocol=protocol, faultload=faultload, shards=shards, seed=seed,
            clients=clients, read_fraction=read_fraction, latency=latency,
        )

    @given(seed=st.integers(0, 2**12), retries=st.integers(0, 2))
    @settings(max_examples=10, deadline=None)
    def test_queued_service_and_retries_identical(self, seed, retries):
        """Service queues (batched push_many) + retry ladder stay lockstep."""
        _assert_lockstep(
            protocol="trap-erc", faultload="churn", shards=4, seed=seed,
            clients=4, read_fraction=0.5, latency="lognormal",
            service=True, retries=retries,
        )
