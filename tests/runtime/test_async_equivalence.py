"""Property tests pinning AsyncCoordinator to the instant path.

The wall-clock backend's acceptance contract: over a zero-latency
in-process transport, all four protocol engines run their *unmodified*
round plans through :class:`AsyncCoordinator` and return exactly what
:class:`InstantCoordinator` returns — values, versions, result fields,
on-disk state, and per-kind message counts.

Message counts match because the async path issues quorum rounds
lazily: the first ``need`` requests go out concurrently and the round
widens one request per failure, reproducing the instant path's
sequential issue-until-threshold traffic. The one structural exemption
is ROWA's write round (``abort_on_reject`` + ``send_all``) under
failures: concurrent issues cannot be un-sent after the first reject,
so its message count may legitimately exceed the sequential loop's.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SystemSpec, build_system, protocol_names
from repro.cluster.rng import make_rng
from repro.runtime import AsyncCoordinator, RetryPolicy
from repro.services import ServiceGroup

N, K = 9, 6
BLOCK = 8
SPEC = SystemSpec.trapezoid(N, K, 2, 1, 1, 2, seed=5)
# generous timeout: inproc calls are microseconds, so retries never fire
# and the only failures are genuine error replies
POLICY = RetryPolicy(timeout=5.0, retries=0)


def build_pair(protocol: str):
    """One instant system + one async-over-inproc system, same init."""
    spec = SPEC.replace(protocol=protocol)
    instant = build_system(spec)
    loop = asyncio.new_event_loop()

    def factory(cluster):
        return AsyncCoordinator({}, policy=POLICY, loop=loop)

    live = build_system(spec, coordinator_factory=factory)
    group = ServiceGroup.for_cluster(live.cluster)  # inproc: nothing to start
    live.engine.coordinator.transports.update(group.make_transports())
    data = (
        make_rng(7)
        .integers(0, 256, size=(K, BLOCK), dtype=np.int64)
        .astype(np.uint8)
    )
    instant.initialize(data)
    live.initialize(data)
    return instant, live


def close_pair(live) -> None:
    live.engine.coordinator.close()


def drain(live) -> None:
    """Pump straggler replies (the instant path has none to wait for)."""
    coordinator = live.engine.coordinator
    coordinator._ensure_loop().run_until_complete(coordinator.drain())


def assert_read_equal(a, b):
    assert a.success == b.success
    assert a.version == b.version
    assert a.case == b.case
    assert a.check_level == b.check_level
    if a.success:
        assert np.array_equal(a.value, b.value)


def assert_write_equal(a, b):
    assert a.success == b.success
    assert a.version == b.version
    assert a.failed_level == b.failed_level


def node_state(cluster) -> dict:
    state = {}
    for node in cluster.nodes:
        records = {}
        for key, rec in node._data.items():
            records[key] = ("data", rec.payload.tobytes(), rec.version)
        for key, rec in node._parity.items():
            records[key] = ("parity", rec.payload.tobytes(), tuple(rec.versions))
        state[node.node_id] = records
    return state


def apply_alive(system, alive_ids):
    for node in system.cluster.nodes:
        if node.node_id in alive_ids and not node.alive:
            node.recover()
        elif node.node_id not in alive_ids and node.alive:
            node.fail()


alive_subsets = st.sets(st.integers(0, N - 1), max_size=N).map(
    lambda down: frozenset(range(N)) - down
)


def messages_comparable(protocol: str, alive) -> bool:
    """ROWA's abort_on_reject write fans out concurrently; under rejects
    (any dead replica) its traffic legitimately diverges."""
    return protocol != "rowa" or len(alive) == N


class TestAsyncInstantEquivalence:
    """Fresh synced state + one failure pattern: exact result equality."""

    @pytest.mark.parametrize("protocol", sorted(protocol_names()))
    @settings(max_examples=10, deadline=None)
    @given(alive=alive_subsets, block=st.integers(0, K - 1))
    def test_read_write_version_agree(self, protocol, alive, block):
        instant, live = build_pair(protocol)
        try:
            apply_alive(instant, alive)
            apply_alive(live, alive)

            assert_read_equal(
                instant.engine.read_block(block),
                live.engine.read_block(block),
            )
            value = np.full(BLOCK, 7, dtype=np.uint8)
            assert_write_equal(
                instant.engine.write_block(block, value),
                live.engine.write_block(block, value),
            )
            if hasattr(instant.engine, "latest_version"):
                assert instant.engine.latest_version(block) == live.engine.latest_version(block)
            drain(live)
            assert node_state(instant.cluster) == node_state(live.cluster)
            if messages_comparable(protocol, alive):
                assert (
                    instant.engine.coordinator.round_messages
                    == live.engine.coordinator.round_messages
                )
        finally:
            close_pair(live)


steps = st.lists(
    st.tuples(
        st.sets(st.integers(0, N - 1), max_size=3),  # down nodes
        st.booleans(),  # read?
        st.integers(0, K - 1),  # block
    ),
    min_size=1,
    max_size=5,
)

HISTORY_PROTOCOLS = ("trap-erc", "trap-fr", "rowa")
# majority excluded for the same reason as the event-path suite: its
# legacy read polls every replica for the global max version while a
# quorum-wait read legitimately stops at the majority threshold.


class TestAsyncHistoryEquivalence:
    """Multi-step histories with accumulated staleness stay in lockstep."""

    @pytest.mark.parametrize("protocol", HISTORY_PROTOCOLS)
    @settings(max_examples=8, deadline=None)
    @given(history=steps)
    def test_lockstep_history(self, protocol, history):
        instant, live = build_pair(protocol)
        try:
            version = 0
            for down, is_read, block in history:
                alive = frozenset(range(N)) - down
                apply_alive(instant, alive)
                apply_alive(live, alive)
                if is_read:
                    assert_read_equal(
                        instant.engine.read_block(block),
                        live.engine.read_block(block),
                    )
                else:
                    version += 1
                    value = np.full(BLOCK, version % 256, dtype=np.uint8)
                    assert_write_equal(
                        instant.engine.write_block(block, value),
                        live.engine.write_block(block, value),
                    )
                drain(live)
                assert node_state(instant.cluster) == node_state(live.cluster)
        finally:
            close_pair(live)
