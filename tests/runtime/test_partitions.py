"""Satellite: partition behavior at the predicted quorum thresholds.

Setting: the paper's (9, 6) code, trapezoid shape (a=2, b=1, h=1) with
w = (1, 2) — level 0 is {N_i} alone (w_0 = r_0 = 1), level 1 holds the
three parity nodes (w_1 = 2, r_1 = 2). Block 0's consistency group is
{0, 6, 7, 8}.

A partitioned minority of that group must make writes fail exactly when
it blocks a level quorum — node 0 cut off (w_0 unreachable) or two of
the three parity nodes cut off (w_1 unreachable) — while reads, which
only need *some* level to pass the r_l check plus a retrieval path,
survive every minority partition: level 0 + the direct read when N_i is
reachable, otherwise the level-1 check plus a decode from the five data
nodes and a surviving parity.

Both execution paths are exercised over every minority partition of the
group, exhaustively, against the same closed-form prediction.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.api import SystemSpec, build_system
from repro.cluster.events import Simulator
from repro.cluster.network import FixedLatency
from repro.cluster.rng import make_rng
from repro.runtime import EventCoordinator, RetryPolicy

N, K = 9, 6
BLOCK = 8
GROUP = (0, 6, 7, 8)  # block 0's consistency group (N_0 + parities)
PARITIES = frozenset((6, 7, 8))
SPEC = SystemSpec.trapezoid(N, K, 2, 1, 1, 2, seed=9)

MINORITY_PARTITIONS = [
    frozenset(c) for size in (0, 1, 2) for c in combinations(GROUP, size)
]


def predicted_write_ok(partition: frozenset) -> bool:
    """Every level must keep its w_l: w_0 = 1 on {N_0}, w_1 = 2 on parities."""
    return 0 not in partition and len(PARITIES - partition) >= 2


def predicted_read_ok(partition: frozenset) -> bool:
    """Direct path via level 0, else level-1 check + decode (5 data rows
    are always up, so one reachable parity completes the k = 6 rows)."""
    if 0 not in partition:
        return True
    return len(PARITIES - partition) >= 2


def build(path: str):
    if path == "instant":
        built = build_system(SPEC)
        sim = None
    else:
        sim = Simulator()

        def factory(cluster):
            cluster.network.latency = FixedLatency(0.001)
            return EventCoordinator(
                cluster, sim, rng=2, policy=RetryPolicy(timeout=0.01)
            )

        built = build_system(SPEC, coordinator_factory=factory)
    data = (
        make_rng(3).integers(0, 256, size=(K, BLOCK), dtype=np.int64).astype(np.uint8)
    )
    built.initialize(data)
    return built, sim, data


@pytest.mark.parametrize("path", ["instant", "event"])
@pytest.mark.parametrize(
    "partition", MINORITY_PARTITIONS, ids=lambda p: "cut-" + "-".join(map(str, sorted(p))) if p else "healthy"
)
class TestMinorityPartitionThresholds:
    def test_write_fails_exactly_when_a_level_quorum_is_cut(self, path, partition):
        built, sim, _ = build(path)
        built.cluster.network.partition(partition)
        result = built.engine.write_block(0, np.full(BLOCK, 5, dtype=np.uint8))
        assert result.success == predicted_write_ok(partition), result.reason

    def test_read_survives_every_minority_partition(self, path, partition):
        built, sim, data = build(path)
        built.cluster.network.partition(partition)
        result = built.engine.read_block(0)
        assert result.success == predicted_read_ok(partition), result.reason
        if result.success:
            assert result.version == 0
            assert np.array_equal(result.value, data[0])

    def test_failed_write_leaves_consistent_state_after_heal(self, path, partition):
        built, sim, data = build(path)
        built.cluster.network.partition(partition)
        write = built.engine.write_block(0, np.full(BLOCK, 5, dtype=np.uint8))
        if sim is not None:
            sim.run()  # drain stragglers
        built.cluster.network.heal()
        read = built.engine.read_block(0)
        assert read.success
        if write.success:
            assert read.version == 1
            assert np.array_equal(read.value, np.full(BLOCK, 5, dtype=np.uint8))
        else:
            # A write that missed its quorum may still have reached some
            # nodes; the read must nevertheless return a single coherent
            # version of the block (the committed one, or the newer value
            # on the surviving path) — never a mix.
            assert read.version in (0, 1)
            expected = (
                data[0] if read.version == 0 else np.full(BLOCK, 5, dtype=np.uint8)
            )
            assert np.array_equal(read.value, expected)
