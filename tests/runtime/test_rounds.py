"""Unit tests for the round primitives and the QuorumWait tracker."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime.rounds import (
    QuorumWait,
    Request,
    Response,
    RetryPolicy,
    Round,
)


def _requests(n: int) -> list[Request]:
    return [Request(i, "data_version", (("k", i),)) for i in range(n)]


def _ok(request: Request, value=0) -> Response:
    return Response(request=request, ok=True, value=value)


def _fail(request: Request) -> Response:
    return Response(request=request, ok=False, error=RuntimeError("down"))


class TestRoundValidation:
    def test_need_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="need must be >= 1"):
            Round(_requests(3), need=0)

    def test_default_accept_is_ok(self):
        round_ = Round(_requests(1))
        assert round_.accept(_ok(round_.requests[0]))
        assert not round_.accept(_fail(round_.requests[0]))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)

    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.timeout > 0 and policy.retries == 0


class TestQuorumWait:
    def test_completes_on_qth_accept(self):
        round_ = Round(_requests(5), need=2)
        wait = QuorumWait(round_)
        assert not wait.offer(_ok(round_.requests[0]))
        assert wait.offer(_ok(round_.requests[1]))
        assert wait.done and wait.satisfied
        assert len(wait.accepted) == 2

    def test_unreachable_threshold_fails_early(self):
        # 3 requests, need 3: the first failure proves it unsatisfiable.
        round_ = Round(_requests(3), need=3)
        wait = QuorumWait(round_)
        assert wait.offer(_fail(round_.requests[0]))
        assert wait.done and not wait.satisfied

    def test_failures_tolerated_up_to_slack(self):
        round_ = Round(_requests(4), need=2)
        wait = QuorumWait(round_)
        assert not wait.offer(_fail(round_.requests[0]))
        assert not wait.offer(_fail(round_.requests[1]))
        assert not wait.offer(_ok(round_.requests[2]))
        assert wait.offer(_ok(round_.requests[3]))
        assert wait.satisfied

    def test_gather_all_waits_for_every_response(self):
        round_ = Round(_requests(3))  # need=None
        wait = QuorumWait(round_)
        assert not wait.offer(_ok(round_.requests[0]))
        assert not wait.offer(_fail(round_.requests[1]))
        assert wait.offer(_ok(round_.requests[2]))
        assert wait.satisfied  # gather rounds always satisfy

    def test_abort_on_reject(self):
        round_ = Round(_requests(3), need=3, abort_on_reject=True)
        wait = QuorumWait(round_)
        assert not wait.offer(_ok(round_.requests[0]))
        assert wait.offer(_fail(round_.requests[1]))
        assert wait.done and not wait.satisfied

    def test_stragglers_ignored_after_completion(self):
        round_ = Round(_requests(3), need=1)
        wait = QuorumWait(round_)
        assert wait.offer(_ok(round_.requests[0]))
        assert not wait.offer(_ok(round_.requests[1]))
        assert len(wait.accepted) == 1
        assert len(wait.responses) == 1

    def test_custom_accept_predicate(self):
        round_ = Round(
            _requests(3),
            need=2,
            accept=lambda response: response.ok and response.value >= 0,
        )
        wait = QuorumWait(round_)
        # ok but INVALID (-1): resolved, not accepted.
        assert not wait.offer(_ok(round_.requests[0], value=-1))
        assert not wait.offer(_ok(round_.requests[1], value=3))
        assert wait.offer(_ok(round_.requests[2], value=0))
        assert wait.satisfied
        assert [response.value for response in wait.accepted] == [3, 0]
