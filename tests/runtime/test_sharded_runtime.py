"""Sharded multi-volume runtime: router, service queues, bit-identity.

The acceptance contract of the sharding refactor: a 1-shard router with
zero service time is *transparent* — the sharded closed-loop driver
replays the unsharded :class:`ClosedLoopSimulation` byte for byte
(results, message counts, trace hash), pinned here property-style over
seeds/clients/workloads. Everything the refactor adds (hash routing,
FIFO service queues, shared-substrate contention, per-link latency)
is tested on top of that floor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    LatencySpec,
    ScenarioRunner,
    ScenarioSpec,
    ServiceTimeSpec,
    ShardingSpec,
    SystemSpec,
    WorkloadSpec,
    build_sharded_system,
)
from repro.cluster import (
    Cluster,
    ExponentialServiceTime,
    FixedLatency,
    FixedServiceTime,
    Network,
    Simulator,
    TwoTierLatency,
)
from repro.cluster.rng import make_rng, spawn_rngs
from repro.core.trap_erc import TrapErcProtocol
from repro.erasure import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.runtime import (
    EventCoordinator,
    NodeServiceQueue,
    RetryPolicy,
    Shard,
    ShardRouter,
    make_service_queues,
)
from repro.sim import (
    ClosedLoopConfig,
    ClosedLoopSimulation,
    ShardedClosedLoopSimulation,
    uniform_workload,
)

N, K = 9, 6
BLOCK = 8


def _quorum():
    return TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)


def build_unsharded(seed, ops, clients, think, read_fraction):
    network = Network(latency=FixedLatency(0.001))
    cluster = Cluster(N, network=network)
    sim = Simulator()
    coordinator = EventCoordinator(
        cluster, sim, rng=seed, policy=RetryPolicy(timeout=0.05),
        record_trace=True,
    )
    engine = TrapErcProtocol(
        cluster, MDSCode(N, K), _quorum(), coordinator=coordinator
    )
    engine.initialize(
        make_rng(1).integers(0, 256, size=(K, BLOCK), dtype=np.int64).astype(np.uint8)
    )
    cluster.reset_stats()
    workload = uniform_workload(ops, K, read_fraction, rng=make_rng(2))
    return (
        ClosedLoopSimulation(
            cluster, engine, coordinator, workload,
            config=ClosedLoopConfig(clients=clients, think_time=think, horizon=100.0),
        ),
        coordinator,
    )


def build_sharded(
    seed, ops, clients, think, read_fraction,
    shards=1, service=None, routing="interleave",
):
    network = Network(latency=FixedLatency(0.001))
    cluster = Cluster(N, network=network)
    sim = Simulator()
    queues = (
        make_service_queues(sim, N, service, rng=99) if service is not None else None
    )
    rngs = [make_rng(seed)] if shards == 1 else spawn_rngs(make_rng(seed), shards)
    code = MDSCode(N, K)
    init_rng = make_rng(1)
    shard_objs = []
    for s in range(shards):
        coordinator = EventCoordinator(
            cluster, sim, rng=rngs[s], policy=RetryPolicy(timeout=0.05),
            record_trace=True, queues=queues,
        )
        layout = StripeLayout(N, K, tuple((b + s) % N for b in range(N)))
        engine = TrapErcProtocol(
            cluster, code, _quorum(), layout=layout,
            stripe_id=f"shard-{s}", coordinator=coordinator,
        )
        engine.initialize(
            init_rng.integers(0, 256, size=(K, BLOCK), dtype=np.int64)
            .astype(np.uint8)
        )
        shard_objs.append(Shard(s, engine, coordinator, K))
    cluster.reset_stats()
    router = ShardRouter(shard_objs, routing=routing)
    workload = uniform_workload(ops, router.num_blocks, read_fraction, rng=make_rng(2))
    return (
        ShardedClosedLoopSimulation(
            cluster, router, workload,
            config=ClosedLoopConfig(clients=clients, think_time=think, horizon=100.0),
        ),
        router,
    )


class TestOneShardBitIdentity:
    """A 1-shard, zero-service router replays the unsharded path exactly."""

    @given(
        seed=st.integers(0, 2**16),
        clients=st.integers(1, 6),
        ops=st.integers(20, 80),
        think=st.sampled_from([0.0, 0.01, 0.1]),
        read_fraction=st.sampled_from([0.0, 0.3, 0.5, 1.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_summary_messages_and_trace_identical(
        self, seed, clients, ops, think, read_fraction
    ):
        unsharded, coordinator = build_unsharded(
            seed, ops, clients, think, read_fraction
        )
        sharded, router = build_sharded(seed, ops, clients, think, read_fraction)
        tally_u = unsharded.run()
        tally_s = sharded.run()
        assert tally_u.summary() == tally_s.summary()
        assert tally_u.messages == tally_s.messages
        assert tally_u.max_in_flight == tally_s.max_in_flight
        assert coordinator.trace_hash() == router.trace_hash()

    def test_runner_level_identity(self):
        """ShardingSpec(shards=1) reproduces the legacy latency scenario."""
        base = SystemSpec.trapezoid(
            N, K, 2, 1, 1, 2,
            latency=LatencySpec(kind="lognormal"),
            workload=WorkloadSpec(num_ops=80, block_length=16),
            scenario=ScenarioSpec(kind="latency", clients=3, think_time=0.05,
                                  horizon=30.0),
            seed=11,
        )
        legacy = ScenarioRunner(base).run().data
        sharded = ScenarioRunner(
            base.replace(sharding=ShardingSpec(shards=1))
        ).run().data
        assert legacy["summary"] == sharded["summary"]
        assert legacy["trace_hash"] == sharded["trace_hash"]
        assert legacy["virtual_duration"] == sharded["virtual_duration"]
        # The sharded path adds the per-shard/queue views on top.
        assert sharded["shards"] == 1
        assert len(sharded["per_shard"]) == 1


class TestShardRouter:
    def test_interleave_locate_is_a_bijection(self):
        _, router = build_sharded(0, 10, 1, 0.0, 0.5, shards=4)
        homes = {router.locate(b)[0].index * K + router.locate(b)[1]
                 for b in range(router.num_blocks)}
        assert len(homes) == router.num_blocks
        # Round-robin: consecutive blocks land on consecutive shards.
        assert [router.locate(b)[0].index for b in range(4)] == [0, 1, 2, 3]

    def test_hash_routing_is_a_seeded_bijection(self):
        _, router = build_sharded(0, 10, 1, 0.0, 0.5, shards=4, routing="hash")
        homes = {(router.locate(b)[0].index, router.locate(b)[1])
                 for b in range(router.num_blocks)}
        assert len(homes) == router.num_blocks
        _, router2 = build_sharded(0, 10, 1, 0.0, 0.5, shards=4, routing="hash")
        assert all(
            router.locate(b)[0].index == router2.locate(b)[0].index
            for b in range(router.num_blocks)
        )

    def test_route_key_stable_and_in_range(self):
        _, router = build_sharded(0, 10, 1, 0.0, 0.5, shards=4)
        blocks = [router.route_key(("volume", i)) for i in range(100)]
        assert blocks == [router.route_key(("volume", i)) for i in range(100)]
        assert all(0 <= b < router.num_blocks for b in blocks)
        assert len(set(blocks)) > 1  # keys spread over the volume

    def test_locate_range_checked(self):
        _, router = build_sharded(0, 10, 1, 0.0, 0.5, shards=2)
        with pytest.raises(ConfigurationError, match="logical block"):
            router.locate(router.num_blocks)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ShardRouter([])
        _, router = build_sharded(0, 10, 1, 0.0, 0.5)
        with pytest.raises(ConfigurationError, match="routing"):
            ShardRouter(router.shards, routing="modulo")

    def test_multi_shard_run_spreads_and_stays_consistent(self):
        sharded, router = build_sharded(3, 160, 6, 0.0, 0.5, shards=4)
        tally = sharded.run()
        assert tally.reads_attempted + tally.writes_attempted == 160
        assert tally.consistency_violations == 0
        per_shard = sharded.shard_summaries()
        assert [row["shard"] for row in per_shard] == [0, 1, 2, 3]
        assert all(row["reads"] + row["writes"] > 0 for row in per_shard)
        assert sum(row["reads"] + row["writes"] for row in per_shard) == 160


class TestNodeServiceQueue:
    def test_fifo_order_and_waits(self):
        sim = Simulator()
        queue = NodeServiceQueue(sim, 0, FixedServiceTime(1.0), rng=0)
        order = []
        for tag in "abc":
            queue.push(lambda t=tag: order.append((t, sim.now)))
        assert len(queue) == 3
        sim.run()
        assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        stats = queue.stats
        assert stats.arrivals == stats.served == 3
        assert stats.max_queue_len == 3
        assert stats.total_service == pytest.approx(3.0)
        # b waited 1s, c waited 2s.
        assert stats.total_wait == pytest.approx(3.0)
        assert stats.mean_wait == pytest.approx(1.0)
        assert stats.utilization(3.0) == pytest.approx(1.0)

    def test_idle_server_starts_immediately(self):
        sim = Simulator()
        queue = NodeServiceQueue(sim, 0, FixedServiceTime(0.5), rng=0)
        queue.push(lambda: None)
        sim.run()
        queue.push(lambda: None)
        sim.run()
        assert queue.stats.total_wait == 0.0

    def test_exponential_service_is_deterministic_per_stream(self):
        draws = [
            ExponentialServiceTime(0.01).sample(make_rng(5)) for _ in range(2)
        ]
        assert draws[0] == draws[1] > 0

    def test_make_service_queues_independent_streams(self):
        sim = Simulator()
        queues = make_service_queues(sim, 3, ExponentialServiceTime(0.01), rng=7)
        assert sorted(queues) == [0, 1, 2]
        samples = {i: q.model.sample(q.rng) for i, q in queues.items()}
        assert len(set(samples.values())) == 3


class TestQueueAwareDelivery:
    def test_service_time_adds_to_operation_latency(self):
        fast, _ = build_sharded(0, 40, 1, 0.0, 1.0)
        slow, _ = build_sharded(0, 40, 1, 0.0, 1.0, service=FixedServiceTime(0.01))
        p50_fast = fast.run().read_percentiles()["p50"]
        p50_slow = slow.run().read_percentiles()["p50"]
        assert p50_slow >= p50_fast + 0.01

    def test_contention_queues_requests(self):
        sharded, router = build_sharded(
            1, 200, 8, 0.0, 0.5, shards=4, service=FixedServiceTime(0.002)
        )
        tally = sharded.run()
        queues = router.shards[0].coordinator.queues
        stats = [q.stats for q in queues.values()]
        assert sum(s.total_wait for s in stats) > 0  # someone queued
        assert max(s.max_queue_len for s in stats) >= 2
        assert tally.consistency_violations == 0

    def test_node_failing_while_queued_refuses_at_service_time(self):
        network = Network(latency=FixedLatency(0.001))
        cluster = Cluster(N, network=network)
        sim = Simulator()
        queues = make_service_queues(sim, N, FixedServiceTime(0.05), rng=0)
        coordinator = EventCoordinator(
            cluster, sim, rng=0, policy=RetryPolicy(timeout=10.0), queues=queues,
        )
        engine = TrapErcProtocol(
            cluster, MDSCode(N, K), _quorum(), coordinator=coordinator
        )
        engine.initialize(
            make_rng(1).integers(0, 256, size=(K, BLOCK), dtype=np.int64)
            .astype(np.uint8)
        )
        # Kill node 0 while its version-query sits in the queue: delivery
        # happened, but service-time execution sees the failure.
        handle = coordinator.submit(engine.read_plan(0))
        sim.schedule_at(0.01, lambda: cluster.fail(0))
        sim.run()
        assert handle.done
        assert handle.result.success  # quorum survives one refusal
        assert cluster.node(0).stats.failed_rpcs > 0


class TestPerLinkLatency:
    def test_default_models_delegate_sample_link(self):
        model = FixedLatency(0.003)
        assert model.sample_link(make_rng(0), None, 5) == 0.003

    def test_two_tier_local_vs_remote(self):
        model = TwoTierLatency(local=0.001, remote=0.02, rack_size=3)
        rng = make_rng(0)
        assert model.sample_link(rng, 0, 2) == 0.001  # same rack
        assert model.sample_link(rng, 0, 3) == 0.02  # cross rack
        assert model.sample_link(rng, None, 2) == 0.02  # off-cluster client
        assert model.sample(rng) == 0.02  # single-dist fallback is WAN

    def test_two_tier_jitter_bounds_and_validation(self):
        model = TwoTierLatency(local=0.001, remote=0.02, rack_size=3, jitter=0.5)
        rng = make_rng(1)
        draws = [model.sample_link(rng, 0, 1) for _ in range(50)]
        assert all(0.0005 <= d <= 0.0015 for d in draws)
        assert len(set(draws)) > 1
        with pytest.raises(ConfigurationError, match="local <= remote"):
            TwoTierLatency(local=0.01, remote=0.001)
        with pytest.raises(ConfigurationError, match="jitter"):
            TwoTierLatency(jitter=1.0)

    def test_colocated_coordinator_is_faster(self):
        def p50(site):
            network = Network()
            cluster = Cluster(N, network=network)
            sim = Simulator()
            coordinator = EventCoordinator(
                cluster, sim, rng=0,
                latency=TwoTierLatency(local=0.001, remote=0.02, rack_size=9),
                policy=RetryPolicy(timeout=10.0), site=site,
            )
            engine = TrapErcProtocol(
                cluster, MDSCode(N, K), _quorum(), coordinator=coordinator
            )
            engine.initialize(
                make_rng(1).integers(0, 256, size=(K, BLOCK), dtype=np.int64)
                .astype(np.uint8)
            )
            result = coordinator.execute(engine.read_plan(0))
            assert result.success
            return result.latency

        # rack_size=9: one rack, so a colocated coordinator talks local
        # to every node, an off-cluster one pays WAN both ways.
        assert p50(site=0) < p50(site=None) / 5

    def test_sharded_build_places_coordinators_in_racks(self):
        spec = SystemSpec.trapezoid(
            N, K, 2, 1, 1, 2,
            latency=LatencySpec(kind="two_tier", local=0.001, remote=0.02,
                                rack_size=3),
            sharding=ShardingSpec(shards=4),
            seed=0,
        )
        system = build_sharded_system(spec, rng=0)
        sites = [shard.coordinator.site for shard in system.shards]
        assert sites == [0, 3, 6, 0]  # round-robin over the 3 racks

    def test_bare_build_is_reproducible_from_the_spec(self):
        """Default rng/service_rng derive from spec.seed (streams 8/10)."""
        spec = SystemSpec.trapezoid(
            N, K, 2, 1, 1, 2,
            latency=LatencySpec(kind="lognormal"),
            sharding=ShardingSpec(shards=2),
            service=ServiceTimeSpec(kind="exponential", time=0.001),
            seed=13,
        )

        def one_run():
            system = build_sharded_system(spec, record_trace=True)
            system.initialize()
            results = [system.router.execute_read(b) for b in range(4)]
            assert all(r.success for r in results)
            return system.trace_hash(), [r.latency for r in results]

        assert one_run() == one_run()

    def test_service_spec_build(self):
        spec = SystemSpec.trapezoid(
            N, K, 2, 1, 1, 2,
            service=ServiceTimeSpec(kind="exponential", time=0.001),
            sharding=ShardingSpec(shards=2),
            seed=0,
        )
        system = build_sharded_system(spec, rng=0, service_rng=1)
        assert system.queues is not None and len(system.queues) == N
        # One shared mapping: every shard coordinator sees the same queues.
        assert all(s.coordinator.queues is system.queues for s in system.shards)
