"""Byzantine corruption injection and the verified read path.

Covers the three tentpole layers end to end:

* :class:`ByzantineBehavior` — the node-side corruption model (payload /
  stale / mixed modes, rate coin, read-methods-only scope);
* injection points — delivery time on the event path (queued messages
  corrupt too) and the instant-path twin in ``Network.rpc``;
* the verified read path — rate-0 equivalence with the fail-stop path
  (digest bookkeeping only), and the headline safety property: with f
  corrupt nodes under the tolerance bound, every successful read returns
  the correct bytes, on both execution paths, across seeds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    MetadataSpec,
    SystemSpec,
    build_system,
    protocol_names,
    run_spec,
)
from repro.cluster import Cluster, Simulator, make_rng, spawn_rngs
from repro.cluster.network import FixedLatency
from repro.cluster.node import ByzantineBehavior
from repro.errors import ConfigurationError
from repro.runtime import (
    EventCoordinator,
    Request,
    RetryPolicy,
    Round,
)

N, K = 9, 6
BLOCK = 8
SPEC = SystemSpec.trapezoid(N, K, 2, 1, 1, 2, seed=5)


# --------------------------------------------------------------------- #
# ByzantineBehavior unit semantics
# --------------------------------------------------------------------- #


class TestByzantineBehavior:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ByzantineBehavior("gaslight", 1.0, make_rng(0))
        with pytest.raises(ConfigurationError):
            ByzantineBehavior("payload", 1.5, make_rng(0))
        with pytest.raises(ConfigurationError):
            ByzantineBehavior("payload", -0.1, make_rng(0))

    def _node(self, cluster=None):
        cluster = cluster if cluster is not None else Cluster(1)
        node = cluster.node(0)
        node.put_data("k", np.arange(BLOCK, dtype=np.uint8), 3)
        return node

    def test_rate_zero_is_inert(self):
        node = self._node()
        behavior = ByzantineBehavior("payload", 0.0, make_rng(1))
        value = node.read_data("k")
        assert behavior.apply(node, "read_data", value) is value
        assert behavior.injected == 0
        assert node.stats.corrupted_replies == 0

    def test_payload_mode_garbles_every_byte(self):
        node = self._node()
        behavior = ByzantineBehavior("payload", 1.0, make_rng(2))
        payload, version = behavior.apply(node, "read_data", node.read_data("k"))
        # XOR with a mask in [1, 255]: every byte differs, version truthful.
        assert not np.any(payload == np.arange(BLOCK, dtype=np.uint8))
        assert version == 3
        assert behavior.injected == 1
        assert node.stats.corrupted_replies == 1

    def test_stale_mode_decrements_version_keeps_bytes(self):
        node = self._node()
        behavior = ByzantineBehavior("stale", 1.0, make_rng(3))
        payload, version = behavior.apply(node, "read_data", node.read_data("k"))
        assert np.array_equal(payload, np.arange(BLOCK, dtype=np.uint8))
        assert version == 2
        assert behavior.apply(node, "data_version", 0) == -1  # floor at -1

    def test_mixed_mode_draws_both(self):
        node = self._node()
        behavior = ByzantineBehavior("mixed", 1.0, make_rng(4))
        saw_payload = saw_stale = False
        clean = node.read_data("k")
        for _ in range(64):
            payload, version = behavior.apply(node, "read_data", clean)
            if version != 3:
                saw_stale = True
            elif not np.array_equal(payload, clean[0]):
                saw_payload = True
        assert saw_payload and saw_stale

    def test_write_methods_untouched(self):
        node = self._node()
        behavior = ByzantineBehavior("payload", 1.0, make_rng(5))
        assert behavior.apply(node, "write_data", True) is True
        assert behavior.apply(node, "put_data", None) is None
        assert behavior.injected == 0

    def test_rate_coin_matches_rate(self):
        node = self._node()
        behavior = ByzantineBehavior("payload", 0.25, make_rng(6))
        clean = node.read_data("k")
        trials = 2000
        corrupted = 0
        for _ in range(trials):
            payload, _ = behavior.apply(node, "read_data", clean)
            corrupted += not np.array_equal(payload, clean[0])
        assert abs(corrupted / trials - 0.25) < 0.05


# --------------------------------------------------------------------- #
# injection points: instant Network.rpc and event-path delivery
# --------------------------------------------------------------------- #


def arm(cluster, node_id, mode="payload", rate=1.0, seed=0):
    behavior = ByzantineBehavior(mode, rate, make_rng(seed))
    cluster.node(node_id).set_byzantine(behavior)
    return behavior


class TestInjectionPoints:
    def test_instant_rpc_applies_corruption(self):
        cluster = Cluster(2)
        cluster.node(0).put_data("k", np.arange(BLOCK, dtype=np.uint8), 1)
        arm(cluster, 0)
        payload, version = cluster.rpc(0, "read_data", "k")
        assert version == 1
        assert not np.array_equal(payload, np.arange(BLOCK, dtype=np.uint8))
        cluster.node(0).clear_byzantine()
        payload, _ = cluster.rpc(0, "read_data", "k")
        assert np.array_equal(payload, np.arange(BLOCK, dtype=np.uint8))

    def test_event_delivery_applies_corruption(self):
        # Corruption is injected when the reply is *served*, so messages
        # already queued when the node turns Byzantine corrupt too.
        cluster = Cluster(3)
        cluster.network.latency = FixedLatency(0.001)
        sim = Simulator()
        coordinator = EventCoordinator(
            cluster, sim, rng=0, policy=RetryPolicy(timeout=0.05)
        )
        for node in cluster.nodes:
            node.put_data("k", np.arange(BLOCK, dtype=np.uint8), 1)
        arm(cluster, 1)

        def plan():
            outcome = yield Round(
                [Request(i, "read_data", ("k",)) for i in range(3)],
                need=3,
            )
            return outcome

        outcome = coordinator.execute(plan())
        by_node = {r.request.node_id: r.value for r in outcome.accepted}
        assert np.array_equal(by_node[0][0], np.arange(BLOCK, dtype=np.uint8))
        assert np.array_equal(by_node[2][0], np.arange(BLOCK, dtype=np.uint8))
        assert not np.array_equal(by_node[1][0], np.arange(BLOCK, dtype=np.uint8))


# --------------------------------------------------------------------- #
# rate-0 equivalence properties
# --------------------------------------------------------------------- #


def latency_spec(seed, **extra):
    payload = {
        "protocol": "trap-erc",
        "seed": seed,
        "workload": {"num_ops": 40},
        "scenario": {"kind": "latency", "clients": 1, "horizon": 10_000.0},
    }
    payload.update(extra)
    return SystemSpec.from_dict(payload)


class TestRateZeroEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**20))
    def test_byzantine_rate_zero_bit_identical_to_none(self, seed):
        # Arming with corruption_rate 0 draws no coins and flips no
        # replies: the whole run (summary + event trace) must match a
        # kind-"none" faultload bit for bit.
        base = run_spec(latency_spec(seed)).data
        armed = run_spec(
            latency_spec(
                seed,
                scenario={
                    "kind": "latency",
                    "clients": 1,
                    "horizon": 10_000.0,
                    "faultload": {
                        "kind": "byzantine",
                        "byzantine_fraction": 0.5,
                        "corruption_rate": 0.0,
                    },
                },
            )
        ).data
        assert armed["summary"] == base["summary"]
        assert armed["trace_hash"] == base["trace_hash"]
        assert armed["byzantine"]["injected"] == 0
        assert armed["byzantine"]["nodes"]  # armed, just silent

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**20))
    def test_verified_path_adds_only_metadata_rounds(self, seed):
        # The rate-0 acceptance pin: with a healthy cluster the verified
        # read path must not change availability or any non-metadata
        # round's message count — digests ride along, nothing else moves.
        base = run_spec(latency_spec(seed)).data
        verified = run_spec(
            latency_spec(seed, metadata={"nodes": 3})
        ).data
        for key in ("read_availability", "write_availability"):
            assert verified["summary"][key] == base["summary"][key]
        assert verified["summary"]["consistency_violations"] == 0
        base_rounds = dict(base["summary"]["round_messages"])
        verified_rounds = dict(verified["summary"]["round_messages"])
        assert verified_rounds.pop("metadata", 0) > 0
        assert verified_rounds == base_rounds
        assert verified["byzantine"]["detected"]["digest_mismatches"] == 0


# --------------------------------------------------------------------- #
# the headline safety property: no silent corruption below the bound
# --------------------------------------------------------------------- #


def build_verified(protocol, seed, event=False, metadata_nodes=3):
    spec = SPEC.replace(
        protocol=protocol, seed=seed, metadata=MetadataSpec(nodes=metadata_nodes)
    )
    sim = None
    if event:
        sim = Simulator()

        def factory(cluster):
            cluster.network.latency = FixedLatency(0.001)
            return EventCoordinator(
                cluster, sim, rng=seed, policy=RetryPolicy(timeout=0.05)
            )

        built = build_system(spec, coordinator_factory=factory)
    else:
        built = build_system(spec)
    data = (
        make_rng(seed + 1)
        .integers(0, 256, size=(K, BLOCK), dtype=np.int64)
        .astype(np.uint8)
    )
    built.initialize(data)
    return built, data


VERIFIED_PROTOCOLS = tuple(sorted(protocol_names()))


class TestNoSilentCorruption:
    @pytest.mark.parametrize("protocol", VERIFIED_PROTOCOLS)
    @pytest.mark.parametrize("event", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reads_survive_f_corrupt_nodes(self, protocol, event, seed):
        # f = n - k = 3 payload-corrupting nodes (claiming true versions,
        # serving garbage) sit inside the erasure tolerance; every read
        # must still return the exact committed bytes.
        built, data = build_verified(protocol, seed, event=event)
        rng = make_rng(seed + 10)
        corrupt = rng.choice(N, size=N - K, replace=False)
        for stream, node_id in zip(spawn_rngs(rng, len(corrupt)), corrupt):
            built.cluster.node(int(node_id)).set_byzantine(
                ByzantineBehavior("payload", 1.0, stream)
            )
        for block in range(built.num_blocks):
            result = built.engine.read_block(block)
            assert result.success, result.reason
            assert np.array_equal(result.value, data[block])
        # Writes then re-reads: fresh digests keep protecting new data.
        value = make_rng(seed + 20).integers(
            0, 256, BLOCK, dtype=np.int64
        ).astype(np.uint8)
        assert built.engine.write_block(0, value).success
        result = built.engine.read_block(0)
        assert result.success and np.array_equal(result.value, value)

    @pytest.mark.parametrize("protocol", VERIFIED_PROTOCOLS)
    def test_corrupt_leg_is_detected_and_survived(self, protocol):
        # Corrupt the one node every protocol's block-0 read path starts
        # from (node 0 holds data block 0 in all four layouts): the read
        # must detect the garbled leg, count it, and still succeed.
        built, data = build_verified(protocol, seed=13)
        built.cluster.node(0).set_byzantine(
            ByzantineBehavior("payload", 1.0, make_rng(0))
        )
        result = built.engine.read_block(0)
        assert result.success, result.reason
        assert np.array_equal(result.value, data[0])
        assert built.verifier.digest_mismatches > 0

    @pytest.mark.parametrize("protocol", VERIFIED_PROTOCOLS)
    def test_stale_mode_cannot_roll_back(self, protocol):
        # Stale-claiming nodes understate versions; the metadata record
        # is the version authority, so reads never accept rolled-back
        # payloads and writes never reuse version numbers.
        built, data = build_verified(protocol, seed=7)
        for node_id in (0, 1):
            built.cluster.node(node_id).set_byzantine(
                ByzantineBehavior("stale", 1.0, make_rng(node_id))
            )
        value = np.full(BLOCK, 9, dtype=np.uint8)
        write = built.engine.write_block(0, value)
        assert write.success
        result = built.engine.read_block(0)
        assert result.success
        assert result.version == write.version
        assert np.array_equal(result.value, value)

    def test_failstop_engine_is_fooled_without_verifier(self):
        # The control: the same corruption against the fail-stop engine
        # silently serves garbage — which is exactly why the verified
        # path exists (the read "succeeds" with wrong bytes).
        spec = SPEC.replace(protocol="trap-fr", seed=3)
        built = build_system(spec)
        data = (
            make_rng(4)
            .integers(0, 256, size=(K, BLOCK), dtype=np.int64)
            .astype(np.uint8)
        )
        built.initialize(data)
        fooled = 0
        for node_id in range(N):
            built.cluster.node(node_id).set_byzantine(
                ByzantineBehavior("payload", 1.0, make_rng(node_id))
            )
        for block in range(K):
            result = built.engine.read_block(block)
            if result.success and not np.array_equal(result.value, data[block]):
                fooled += 1
        assert fooled > 0

    def test_exhausted_quorum_fails_cleanly(self):
        # Corrupt *every* payload node: the verified read must fail with
        # a reason, not return garbage or loop forever.
        built, data = build_verified("trap-erc", seed=11)
        for node_id in range(N):
            built.cluster.node(node_id).set_byzantine(
                ByzantineBehavior("payload", 1.0, make_rng(node_id))
            )
        result = built.engine.read_block(0)
        assert not result.success
        assert result.reason
        assert built.verifier.digest_mismatches > 0


# --------------------------------------------------------------------- #
# runner integration
# --------------------------------------------------------------------- #


class TestRunnerIntegration:
    def test_latency_run_detects_and_survives(self):
        spec = SystemSpec.from_dict({
            "protocol": "trap-erc",
            "seed": 9,
            "metadata": {"nodes": 3},
            "workload": {"num_ops": 60},
            "scenario": {
                "kind": "latency",
                "clients": 2,
                "horizon": 10_000.0,
                "faultload": {
                    "kind": "byzantine",
                    "byzantine_fraction": 0.25,
                    "corruption_mode": "payload",
                    "corruption_rate": 0.5,
                },
            },
        })
        result = run_spec(spec).data
        byz = result["byzantine"]
        assert len(byz["nodes"]) == 2  # round(0.25 * 9)
        assert all(n < N for n in byz["nodes"])  # metadata tier untouched
        assert byz["injected"] > 0
        assert byz["detected"]["digest_mismatches"] > 0
        assert result["summary"]["consistency_violations"] == 0
        # Determinism: the same spec reproduces the identical run.
        again = run_spec(spec).data
        assert again == result

    def test_saturation_reports_per_point(self):
        spec = SystemSpec.from_dict({
            "protocol": "trap-erc",
            "seed": 5,
            "metadata": {"nodes": 3},
            "workload": {"num_ops": 30},
            "sharding": {"shards": 2},
            "scenario": {
                "kind": "saturation",
                "client_counts": [1, 2],
                "horizon": 5_000.0,
                "faultload": {
                    "kind": "byzantine",
                    "byzantine_fraction": 0.25,
                    "corruption_rate": 0.5,
                },
            },
        })
        result = run_spec(spec).data
        points = result["byzantine"]["points"]
        assert len(points) == 2
        assert all(p["detected"] is not None for p in points)


# --------------------------------------------------------------------- #
# docs / star-import surface sync
# --------------------------------------------------------------------- #


class TestExportSurface:
    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro.runtime import *", namespace)  # noqa: S102
        imported = {name for name in namespace if not name.startswith("_")}
        import repro.runtime

        assert imported == set(repro.runtime.__all__)

    def test_docs_listing_matches_all(self):
        """The "Exported API" code block in docs/RUNTIME.md is the
        public surface — it must name exactly ``repro.runtime.__all__``."""
        import re
        from pathlib import Path

        import repro.runtime

        docs = Path(__file__).resolve().parents[2] / "docs" / "RUNTIME.md"
        text = docs.read_text(encoding="utf-8")
        section = text.split("## Exported API", 1)[1]
        block = re.search(r"```\n(.*?)```", section, flags=re.S).group(1)
        documented = set(block.split())
        assert documented == set(repro.runtime.__all__)
