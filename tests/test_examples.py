"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken example is a broken
deliverable, so they are executed end to end (with trimmed workloads via
environment where applicable) as part of the suite.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script, capsys, monkeypatch):
    # Examples print to stdout; run them in-process for speed and so
    # coverage tools see them.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a meaningful report


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "availability_study", "virtual_disk",
            "protocol_comparison", "failure_injection"} <= names
