"""Tests for the closed-form availability formulas (eqs. 8-13)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    erc_betas_lambdas,
    exact_availability,
    exact_read_erc,
    read_availability_erc,
    read_availability_erc_terms,
    read_availability_fr,
    validate_erc_geometry,
    write_availability,
)
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape, TrapezoidSystem

P = np.linspace(0.0, 1.0, 21)

#: the paper's running configuration: trapezoid 2l+3 (Fig. 1),
#: Nbnode = 15 => (n, k) with n - k + 1 = 15, e.g. (22, 8).
SHAPE15 = TrapezoidShape(2, 3, 2)


def quorum15(w: int = 3) -> TrapezoidQuorum:
    return TrapezoidQuorum.uniform(SHAPE15, w)


class TestValidateGeometry:
    def test_accepts_matching(self):
        validate_erc_geometry(quorum15(), 22, 8)

    def test_rejects_mismatch(self):
        with pytest.raises(ConfigurationError):
            validate_erc_geometry(quorum15(), 15, 8)

    def test_rejects_bad_nk(self):
        with pytest.raises(ConfigurationError):
            validate_erc_geometry(quorum15(), 8, 22)


class TestWriteAvailability:
    def test_matches_exact_enumeration(self):
        for w in (1, 3, 5):
            q = quorum15(w)
            closed = write_availability(q, P)
            exact = exact_availability(TrapezoidSystem(q), P, kind="write")
            np.testing.assert_allclose(closed, exact, atol=1e-10)

    def test_boundaries(self):
        q = quorum15(3)
        assert write_availability(q, 0.0) == pytest.approx(0.0)
        assert write_availability(q, 1.0) == pytest.approx(1.0)

    def test_monotone_in_p(self):
        vals = write_availability(quorum15(3), np.linspace(0, 1, 50))
        assert np.all(np.diff(vals) >= -1e-12)

    def test_decreasing_in_w(self):
        # Larger write quorums are harder to assemble.
        p = 0.7
        vals = [float(write_availability(quorum15(w), p)) for w in range(1, 6)]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_single_level_reduces_to_majority(self):
        from repro.quorum import MajoritySystem

        q = TrapezoidQuorum.uniform(TrapezoidShape(0, 7, 0))
        np.testing.assert_allclose(
            write_availability(q, P), MajoritySystem(7).write_availability(P), atol=1e-12
        )

    def test_flat_rectangle(self):
        q = TrapezoidQuorum.uniform(TrapezoidShape(0, 3, 1), 2)
        closed = write_availability(q, P)
        exact = exact_availability(TrapezoidSystem(q), P, kind="write")
        np.testing.assert_allclose(closed, exact, atol=1e-12)


class TestReadAvailabilityFR:
    def test_matches_exact_enumeration(self):
        for w in (1, 3, 5):
            q = quorum15(w)
            closed = read_availability_fr(q, P)
            exact = exact_availability(TrapezoidSystem(q), P, kind="read")
            np.testing.assert_allclose(closed, exact, atol=1e-10)

    def test_boundaries(self):
        q = quorum15(3)
        assert read_availability_fr(q, 0.0) == pytest.approx(0.0)
        assert read_availability_fr(q, 1.0) == pytest.approx(1.0)

    def test_monotone_in_p(self):
        vals = read_availability_fr(quorum15(3), np.linspace(0, 1, 50))
        assert np.all(np.diff(vals) >= -1e-12)

    def test_increasing_in_w(self):
        # Larger w means smaller read thresholds r_l, so reads get easier.
        p = 0.5
        vals = [float(read_availability_fr(quorum15(w), p)) for w in range(1, 6)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))


class TestBetasLambdas:
    def test_paper_eq11_eq12(self):
        q = quorum15(3)  # s = (3,5,7), w = (2,3,3), r = (2,3,5)
        betas, lambdas = erc_betas_lambdas(q)
        assert betas == [0, 2, 4]
        assert lambdas == [2, 5, 7]

    def test_beta0_clamped_at_zero(self):
        # b = 1: w_0 = 1, r_0 = 1 -> beta_0 = max(0, -1) = 0.
        q = TrapezoidQuorum.uniform(TrapezoidShape(1, 1, 1), 1)
        betas, _ = erc_betas_lambdas(q)
        assert betas[0] == 0


class TestReadAvailabilityERC:
    def test_terms_sum(self):
        q = quorum15(3)
        p1, p2 = read_availability_erc_terms(q, 22, 8, P)
        np.testing.assert_allclose(p1 + p2, read_availability_erc(q, 22, 8, P))

    def test_boundaries(self):
        q = quorum15(3)
        assert read_availability_erc(q, 22, 8, 0.0) == pytest.approx(0.0)
        assert read_availability_erc(q, 22, 8, 1.0) == pytest.approx(1.0)

    def test_within_unit_interval(self):
        q = quorum15(3)
        vals = read_availability_erc(q, 22, 8, np.linspace(0, 1, 101))
        assert np.all(vals >= -1e-12) and np.all(vals <= 1 + 1e-9)

    def test_monotone_in_p(self):
        vals = read_availability_erc(quorum15(3), 22, 8, np.linspace(0, 1, 60))
        assert np.all(np.diff(vals) >= -1e-9)

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            read_availability_erc(quorum15(3), 15, 8, 0.5)

    def test_fig3_anchor_values(self):
        # Calibrated Fig. 3 configuration: n=15, k=8 => Nbnode = 8 with
        # shape (a=2, b=3, h=1) and w=3. The paper quotes FR ~ 75% and
        # ERC ~ 63% at p = 0.5; the formulas give exactly 0.7500 / 0.6351.
        q = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)
        assert read_availability_fr(q, 0.5) == pytest.approx(0.75, abs=1e-9)
        assert read_availability_erc(q, 15, 8, 0.5) == pytest.approx(0.635, abs=1e-3)

    def test_erc_below_fr_at_low_p(self):
        # Fig. 3: ERC read availability is below FR at small p...
        q = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)
        p_low = np.linspace(0.2, 0.6, 9)
        erc = read_availability_erc(q, 15, 8, p_low)
        fr = read_availability_fr(q, p_low)
        assert np.all(erc <= fr + 1e-9)

    def test_erc_matches_fr_at_high_p(self):
        # ... and indistinguishable for p >= 0.8 (paper's observation).
        q = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)
        p_high = np.linspace(0.8, 1.0, 9)
        erc = read_availability_erc(q, 15, 8, p_high)
        fr = read_availability_fr(q, p_high)
        np.testing.assert_allclose(erc, fr, atol=0.005)

    def test_exact_erc_never_exceeds_fr(self):
        # The true Algorithm-2 predicate is the FR predicate AND a decode
        # condition, so exact ERC read availability can never exceed FR —
        # unlike the paper's approximation (see EXPERIMENTS.md).
        for w in (1, 3, 5):
            q = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), w)
            exact = exact_read_erc(q, 15, 8, P)
            fr = read_availability_fr(q, P)
            assert np.all(exact <= fr + 1e-9)

    def test_fig4_more_redundancy_helps(self):
        # Fig. 4: larger n - k (bigger trapezoid) => better read availability.
        p = np.linspace(0.3, 0.9, 7)
        k = 8
        prev = None
        for nbnode in (5, 10, 15):
            from repro.quorum import default_shape_for_nbnode

            shape = default_shape_for_nbnode(nbnode)
            q = TrapezoidQuorum.uniform(shape)
            n = nbnode + k - 1
            vals = read_availability_erc(q, n, k, p)
            if prev is not None:
                assert np.all(vals >= prev - 0.02)
            prev = vals


class TestPaperFormulaVsExact:
    """Quantify eq. 13 against the exact Algorithm-2 predicate."""

    def test_paper_upper_bounds_exact_for_standard_shapes(self):
        # With r_0 >= 2 the P1 term is exact and P2 only over-counts
        # (it ignores the version-check requirement), so eq. 13 must be an
        # upper bound on the true availability.
        q = quorum15(3)
        paper = read_availability_erc(q, 22, 8, P)
        exact = exact_read_erc(q, 22, 8, P)
        assert np.all(paper >= exact - 1e-9)

    def test_gap_small_at_high_p(self):
        q = quorum15(3)
        p_high = np.linspace(0.8, 1.0, 11)
        gap = read_availability_erc(q, 22, 8, p_high) - exact_read_erc(q, 22, 8, p_high)
        assert np.all(np.abs(gap) < 0.02)

    def test_exact_boundaries(self):
        q = quorum15(3)
        assert exact_read_erc(q, 22, 8, 0.0) == pytest.approx(0.0)
        assert exact_read_erc(q, 22, 8, 1.0) == pytest.approx(1.0)

    def test_exact_monotone(self):
        vals = exact_read_erc(quorum15(3), 22, 8, np.linspace(0, 1, 40))
        assert np.all(np.diff(vals) >= -1e-9)

    def test_small_config_brute_force(self):
        """Cross-check exact_read_erc against a literal whole-universe
        enumeration for a small (n, k)."""
        from itertools import product

        shape = TrapezoidShape(1, 2, 1)  # levels (2, 3): Nbnode = 5
        q = TrapezoidQuorum.uniform(shape, 2)
        n, k = 8, 4  # n - k + 1 = 5
        # positions: trapezoid = [N_i, P1..P4]; others = 3 data nodes
        r = [q.r(l) for l in shape.levels]
        p_val = 0.55
        total = 0.0
        for bits in product([0, 1], repeat=n):
            # bits: 0 = N_i, 1..4 = parity, 5..7 = other data nodes
            trap = bits[:5]
            level_counts = [trap[0] + trap[1], trap[2] + trap[3] + trap[4]]
            ok = any(c >= r[l] for l, c in enumerate(level_counts))
            if ok:
                if trap[0]:
                    success = True
                else:
                    success = (sum(bits) - trap[0]) >= k
            else:
                success = False
            if success:
                na = sum(bits)
                total += p_val**na * (1 - p_val) ** (n - na)
        assert exact_read_erc(q, n, k, p_val) == pytest.approx(total, abs=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        w=st.integers(1, 5),
        p=st.floats(0.05, 0.95),
    )
    def test_paper_bound_property(self, w, p):
        q = quorum15(w)
        paper = float(read_availability_erc(q, 22, 8, p))
        exact = float(exact_read_erc(q, 22, 8, p))
        assert paper >= exact - 1e-9
        assert 0.0 <= exact <= 1.0
