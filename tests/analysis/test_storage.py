"""Tests for the storage model (eqs. 14-15, Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    storage_erc,
    storage_fr,
    storage_saving,
    storage_series,
    stripe_storage_erc,
    stripe_storage_fr,
)
from repro.errors import ConfigurationError


class TestPerBlockStorage:
    def test_eq14_fr(self):
        assert storage_fr(15, 8) == 8.0  # n - k + 1, the paper's k=8 example

    def test_eq15_erc(self):
        assert storage_erc(15, 8) == pytest.approx(15 / 8)

    def test_blocksize_scaling(self):
        assert storage_fr(9, 6, blocksize=4096) == 4 * 4096
        assert storage_erc(9, 6, blocksize=4096) == pytest.approx(1.5 * 4096)

    def test_replication_limit(self):
        # k = 1: the code degenerates to n-way replication; both match n.
        assert storage_fr(5, 1) == 5
        assert storage_erc(5, 1) == 5

    def test_no_redundancy_limit(self):
        # k = n: single copy in both schemes.
        assert storage_fr(6, 6) == 1
        assert storage_erc(6, 6) == 1

    def test_erc_never_exceeds_fr(self):
        for n in range(1, 20):
            for k in range(1, n + 1):
                assert storage_erc(n, k) <= storage_fr(n, k) + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            storage_fr(3, 4)
        with pytest.raises(ConfigurationError):
            storage_erc(3, 0)


class TestSaving:
    def test_saving_k8_n15(self):
        # 1 - (15/8)/8 ~ 0.766: ERC saves ~77% (the text's "50%" example is
        # inconsistent with eq. 15; see EXPERIMENTS.md).
        assert storage_saving(15, 8) == pytest.approx(1 - (15 / 8) / 8)

    def test_saving_zero_when_no_redundancy(self):
        assert storage_saving(6, 6) == pytest.approx(0.0)

    def test_saving_nonnegative(self):
        for n in range(1, 16):
            for k in range(1, n + 1):
                assert storage_saving(n, k) >= -1e-12


class TestStripeStorage:
    def test_fr_total(self):
        assert stripe_storage_fr(15, 8) == 8 * 8

    def test_erc_total_is_n(self):
        assert stripe_storage_erc(15, 8) == 15

    def test_consistency_with_per_block(self):
        for n, k in [(9, 6), (15, 8), (12, 4)]:
            assert stripe_storage_fr(n, k) == pytest.approx(k * storage_fr(n, k))
            assert stripe_storage_erc(n, k) == pytest.approx(k * storage_erc(n, k))


class TestSeries:
    def test_fig5_series(self):
        ks, erc, fr = storage_series(15, range(1, 15))
        assert ks.shape == erc.shape == fr.shape == (14,)
        # FR decreases linearly in k; ERC decreases hyperbolically.
        assert np.all(np.diff(fr) == -1)
        assert np.all(np.diff(erc) < 0)
        assert np.all(erc <= fr + 1e-12)

    def test_fig5_anchor_values(self):
        ks, erc, fr = storage_series(15, [8])
        assert fr[0] == 8.0
        assert erc[0] == pytest.approx(1.875)
