"""Property tests pinning the occupancy engine to the enumeration reference.

The level-occupancy engine (:mod:`repro.analysis.occupancy`) must produce
*integer-identical* subset counts to the 2^m enumeration across random
shapes, w vectors and predicates — including the TRAP-ERC split on N_i
aliveness — and the rewired ``exact_read_erc`` / ``optimize_config`` must
therefore be bit-identical to the seed paths wherever both can run.
"""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    erc_level_counts,
    erc_level_counts_family,
    erc_subset_counts,
    exact_availability,
    exact_read_erc,
    occupancy_cache_clear,
    occupancy_cache_info,
    optimize_config,
    optimize_config_sweep,
    predicate_counts,
    predicate_counts_family,
    subset_counts,
    write_availability,
)
from repro.analysis.optimizer import ConfigPoint, _collect_result, _w_vectors
from repro.errors import ConfigurationError
from repro.quorum import (
    GridSystem,
    MajoritySystem,
    RowaSystem,
    TrapezoidQuorum,
    TrapezoidShape,
    TrapezoidSystem,
    TreeSystem,
    WeightedVotingSystem,
    shapes_for_nbnode,
)
from repro.quorum.base import CountPredicate

P = np.linspace(0.0, 1.0, 21)


# --------------------------------------------------------------------- #
# strategies: small random trapezoid geometries with valid w vectors
# --------------------------------------------------------------------- #

shapes = st.tuples(
    st.integers(0, 2), st.integers(1, 3), st.integers(0, 2)
).map(lambda abh: TrapezoidShape(*abh))


@st.composite
def quorums(draw) -> TrapezoidQuorum:
    shape = draw(shapes)
    w0 = shape.b // 2 + 1
    upper = tuple(
        draw(st.integers(1, shape.level_size(l))) for l in range(1, shape.h + 1)
    )
    return TrapezoidQuorum(shape, (w0,) + upper)


# --------------------------------------------------------------------- #
# CountPredicate
# --------------------------------------------------------------------- #


class TestCountPredicate:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CountPredicate((), (), "all")
        with pytest.raises(ConfigurationError):
            CountPredicate((3, 0), (1, 1), "all")
        with pytest.raises(ConfigurationError):
            CountPredicate((3,), (1, 2), "all")
        with pytest.raises(ConfigurationError):
            CountPredicate((3,), (1,), "some")

    def test_evaluate_matches_modes(self):
        pred_all = CountPredicate((2, 3), (1, 2), "all")
        pred_any = CountPredicate((2, 3), (1, 2), "any")
        assert pred_all.evaluate((1, 2))
        assert not pred_all.evaluate((0, 3))
        assert pred_any.evaluate((0, 3))
        assert not pred_any.evaluate((0, 1))
        assert pred_all.total == 5

    def test_as_level_thresholds_validates_kind(self):
        with pytest.raises(ConfigurationError):
            MajoritySystem(3).as_level_thresholds("both")

    def test_membership_structured_systems_opt_out(self):
        assert GridSystem(2, 2).as_level_thresholds("read") is None
        assert TreeSystem(2).as_level_thresholds("write") is None
        heterogeneous = WeightedVotingSystem([3, 1, 1], 3, 3)
        assert heterogeneous.as_level_thresholds("write") is None


# --------------------------------------------------------------------- #
# engine vs enumeration: integer-identical subset counts
# --------------------------------------------------------------------- #


class TestPredicateCounts:
    @settings(max_examples=60, deadline=None)
    @given(quorum=quorums())
    def test_trapezoid_counts_match_enumeration(self, quorum):
        system = TrapezoidSystem(quorum)
        for kind, predicate in (
            ("write", system.is_write_quorum),
            ("read", system.is_read_quorum),
        ):
            engine = predicate_counts(system.as_level_thresholds(kind))
            reference = subset_counts(system.size, predicate)
            assert np.array_equal(engine, reference)

    @pytest.mark.parametrize(
        "system",
        [
            MajoritySystem(5),
            RowaSystem(4),
            WeightedVotingSystem([2, 2, 2], 3, 4),
            WeightedVotingSystem.majority(5),
            WeightedVotingSystem.rowa(3),
        ],
        ids=lambda s: repr(s),
    )
    def test_flat_systems_match_enumeration(self, system):
        for kind, predicate in (
            ("write", system.is_write_quorum),
            ("read", system.is_read_quorum),
        ):
            engine = predicate_counts(system.as_level_thresholds(kind))
            assert np.array_equal(engine, subset_counts(system.size, predicate))

    def test_exact_availability_identical_on_both_paths(self):
        # Count-structured systems ride the engine; the values must equal
        # what the enumeration fallback produced for the same predicates.
        for system in (MajoritySystem(5), RowaSystem(4), TrapezoidSystem(
            TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)
        )):
            for kind in ("read", "write"):
                engine = exact_availability(system, P, kind=kind)
                predicate = (
                    system.is_write_quorum
                    if kind == "write"
                    else system.is_read_quorum
                )
                counts = subset_counts(system.size, predicate)
                from repro.analysis import counts_to_probability

                reference = counts_to_probability(counts, system.size, P)
                assert np.array_equal(engine, reference)

    def test_exact_availability_enumeration_fallback_still_works(self):
        grid = GridSystem(2, 2)
        vals = exact_availability(grid, P, kind="write")
        assert vals[0] == pytest.approx(0.0)
        assert vals[-1] == pytest.approx(1.0)

    def test_lifts_enumeration_limit_for_count_structured_systems(self):
        # 101 nodes: 2^101 subsets is unreachable, one 102-cell grid is not.
        big = MajoritySystem(101)
        val = float(exact_availability(big, 0.9, kind="write"))
        assert 0.999 < val <= 1.0
        with pytest.raises(ConfigurationError):
            subset_counts(101, lambda s: True)

    def test_float64_path_beyond_int64_exactness(self):
        # 70 nodes: multiplicities exceed int64, float64 path still sane.
        val = float(exact_availability(MajoritySystem(70), 0.6, kind="write"))
        assert 0.94 < val < 0.96  # P(Bin(70, .6) >= 36) ~ 0.9446

    def test_overflow_beyond_float64_is_a_clear_error(self):
        # C(1100, 550) leaves float64 range: ConfigurationError, not a
        # raw OverflowError from numpy.
        with pytest.raises(ConfigurationError, match="float64"):
            exact_availability(MajoritySystem(1100), 0.9, kind="write")

    def test_write_family_validates_vector_bounds(self):
        from repro.analysis import write_availability_family

        shape = TrapezoidShape(1, 3, 1)
        with pytest.raises(ConfigurationError):
            write_availability_family(shape, [(-1, 2)], 0.9)
        with pytest.raises(ConfigurationError):
            write_availability_family(shape, [(2, 5)], 0.9)
        with pytest.raises(ConfigurationError):
            write_availability_family(shape, [(2,)], 0.9)

    def test_large_trapezoid_exact_read(self):
        # Nbnode = 40 >> the old 24-node enumeration ceiling.
        shape = TrapezoidShape(2, 10, 2)  # levels (10, 12, 14, ...) -> 36+
        quorum = TrapezoidQuorum.uniform(shape)
        nb = shape.total_nodes
        assert nb > 24
        vals = exact_read_erc(quorum, nb + 7, 8, P)
        assert np.all(vals >= -1e-12) and np.all(vals <= 1 + 1e-9)
        assert np.all(np.diff(vals) >= -1e-9)

    @settings(max_examples=40, deadline=None)
    @given(quorum=quorums())
    def test_family_rows_match_single_calls(self, quorum):
        shape = quorum.shape
        vectors = _w_vectors(shape, 64)
        fam = predicate_counts_family(shape.level_sizes, vectors, "all")
        for i, w in enumerate(vectors):
            single = predicate_counts(
                CountPredicate(shape.level_sizes, w, "all")
            )
            assert np.array_equal(fam[i], single)


class TestErcSplitCounts:
    @settings(max_examples=60, deadline=None)
    @given(quorum=quorums())
    def test_split_counts_match_enumeration(self, quorum):
        shape = quorum.shape
        direct, decode = erc_level_counts(
            shape.level_sizes, quorum.read_thresholds
        )
        ref_direct, ref_decode = erc_subset_counts(quorum)
        assert np.array_equal(direct, ref_direct)
        assert np.array_equal(decode, ref_decode)

    @settings(max_examples=40, deadline=None)
    @given(quorum=quorums(), p=st.floats(0.0, 1.0))
    def test_exact_read_erc_bit_identical(self, quorum, p):
        n = quorum.shape.total_nodes + 7
        occupancy = exact_read_erc(quorum, n, 8, p)
        enumeration = exact_read_erc(quorum, n, 8, p, method="enumeration")
        assert np.array_equal(occupancy, enumeration)

    def test_family_rows_match_single_calls(self):
        shape = TrapezoidShape(2, 3, 2)
        thresholds = [
            TrapezoidQuorum.uniform(shape, w).read_thresholds
            for w in range(1, shape.level_size(1) + 1)
        ]
        direct, decode = erc_level_counts_family(shape.level_sizes, thresholds)
        for i, t in enumerate(thresholds):
            d, e = erc_level_counts(shape.level_sizes, tuple(t))
            assert np.array_equal(direct[i], d)
            assert np.array_equal(decode[i], e)

    def test_method_validated(self):
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)
        with pytest.raises(ConfigurationError):
            exact_read_erc(quorum, 15, 8, 0.5, method="magic")

    @settings(max_examples=10, deadline=None)
    @given(p=st.floats(0.05, 0.95))
    def test_outside_data_node_binomial_fold(self, p):
        """Whole-universe brute force over all n nodes (trapezoid AND the
        k-1 outside data nodes) for a small (n, k): validates the analytic
        binomial top-up of the decode branch, not just the trapezoid part."""
        shape = TrapezoidShape(1, 2, 1)  # levels (2, 3): Nbnode = 5
        quorum = TrapezoidQuorum.uniform(shape, 2)
        n, k = 8, 4
        r = [quorum.r(l) for l in shape.levels]
        total = 0.0
        for bits in product([0, 1], repeat=n):
            trap = bits[:5]  # 0 = N_i, 1..4 = parity nodes
            level_counts = [trap[0] + trap[1], trap[2] + trap[3] + trap[4]]
            if not any(c >= r[l] for l, c in enumerate(level_counts)):
                continue
            if trap[0] or sum(bits) - trap[0] >= k:
                alive = sum(bits)
                total += p**alive * (1 - p) ** (n - alive)
        assert float(exact_read_erc(quorum, n, k, p)) == pytest.approx(
            total, abs=1e-12
        )

    def test_tables_cached_across_p(self):
        occupancy_cache_clear()
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 2), 3)
        for p in (0.3, 0.5, 0.7, 0.9):
            exact_read_erc(quorum, 22, 8, p)
        info = occupancy_cache_info()
        assert info["erc_level_counts"]["misses"] == 1
        assert info["erc_level_counts"]["hits"] == 3


# --------------------------------------------------------------------- #
# optimizer equivalence: identical winners and Pareto fronts
# --------------------------------------------------------------------- #


def _reference_optimize(n, k, p, max_h=3, max_vectors=512):
    """The seed optimizer loop: one subset enumeration per (shape, w)."""
    points = []
    for shape in shapes_for_nbnode(n - k + 1, max_h=max_h):
        for w in _w_vectors(shape, max_vectors):
            quorum = TrapezoidQuorum(shape, w)
            points.append(
                ConfigPoint(
                    shape=shape,
                    w=w,
                    write=float(write_availability(quorum, p)),
                    read=float(
                        exact_read_erc(quorum, n, k, p, method="enumeration")
                    ),
                )
            )
    return _collect_result(points)


class TestOptimizerEquivalence:
    @pytest.mark.parametrize(
        "n, k, p",
        [(9, 6, 0.7), (9, 6, 0.35), (15, 8, 0.5), (12, 8, 0.9)],
    )
    def test_identical_winners_and_pareto(self, n, k, p):
        fast = optimize_config(n, k, p)
        reference = _reference_optimize(n, k, p)
        assert fast.best_for_writes == reference.best_for_writes
        assert fast.best_for_reads == reference.best_for_reads
        assert fast.best_balanced == reference.best_balanced
        assert fast.pareto == reference.pareto
        assert fast.evaluated == reference.evaluated

    def test_sweep_matches_single_p_calls(self):
        ps = (0.4, 0.6, 0.8)
        swept = optimize_config_sweep(9, 6, ps)
        assert swept == tuple(optimize_config(9, 6, p) for p in ps)

    def test_sweep_jobs2_identical_to_serial(self):
        # The shape-family fan-out is pure enumeration: any worker count
        # must reassemble the exact serial result tuple.
        ps = (0.5, 0.9)
        assert optimize_config_sweep(9, 6, ps, jobs=2) == optimize_config_sweep(
            9, 6, ps
        )

    def test_sweep_validates_each_p(self):
        with pytest.raises(ConfigurationError):
            optimize_config_sweep(9, 6, (0.5, 1.0))
