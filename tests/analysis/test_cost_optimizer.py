"""Tests for the message-cost models and the configuration optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    expected_read_check_polls,
    optimize_config,
    quorum_size_summary,
    read_messages_erc_decode,
    read_messages_erc_direct,
    write_messages_erc,
)
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape


QUORUM96 = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)  # (9, 6)


class TestCostModels:
    def test_direct_read_budget(self):
        # r_0 = 1: 2 polls... r_0 = s_0 - w_0 + 1 = 1 -> 2 msg polls + 2 + 2.
        cost = read_messages_erc_direct(QUORUM96)
        assert cost["total"] == 2 * 1 + 4

    def test_decode_read_budget(self):
        cost = read_messages_erc_decode(QUORUM96, 9, 6)
        # gather = (n-k) + (k-1) = 3 + 5 = 8 fragment RPCs; polls bounded
        # by the whole 4-node trapezoid.
        assert cost["fragment_reads"] == 16
        assert cost["total"] == 2 * 4 + 2 + 16

    def test_write_budget(self):
        cost = write_messages_erc(QUORUM96, 9, 6)
        assert cost["write_rpcs"] == 2 * 4  # one RPC per group node
        assert cost["total"] == cost["read_before_write"] + 8

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            write_messages_erc(QUORUM96, 9, 5)
        with pytest.raises(ConfigurationError):
            read_messages_erc_decode(QUORUM96, 8, 6)

    def test_quorum_size_summary(self):
        s = quorum_size_summary(QUORUM96)
        assert s == {
            "write_quorum_size": 3,  # w = (1, 2)
            "min_read_quorum_size": 1,
            "group_size": 4,
        }

    def test_expected_polls_bounds(self):
        p = np.linspace(0.1, 0.99, 20)
        polls = expected_read_check_polls(QUORUM96, p)
        total_nodes = QUORUM96.shape.total_nodes
        assert np.all(polls >= QUORUM96.shape.level_size(0) - 1e-12)
        assert np.all(polls <= total_nodes + 1e-12)
        # More availability => fewer fall-throughs => fewer polls.
        assert polls[0] >= polls[-1]

    def test_measured_messages_within_model(self):
        """The executable engine must respect the analytic budgets."""
        from repro.cluster import Cluster
        from repro.core import TrapErcProtocol
        from repro.erasure import MDSCode

        cluster = Cluster(9)
        proto = TrapErcProtocol(cluster, MDSCode(9, 6), QUORUM96)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=(6, 8), dtype=np.int64).astype(np.uint8)
        proto.initialize(data)

        read = proto.read_block(0)
        assert read.messages <= read_messages_erc_direct(QUORUM96)["total"]

        write = proto.write_block(0, rng.integers(0, 256, 8, dtype=np.int64).astype(np.uint8))
        assert write.messages <= write_messages_erc(QUORUM96, 9, 6)["total"]

        cluster.fail(0)
        decode = proto.read_block(0)
        assert decode.success
        assert decode.messages <= read_messages_erc_decode(QUORUM96, 9, 6)["total"]


class TestOptimizer:
    def test_result_structure(self):
        result = optimize_config(9, 6, 0.7)
        assert result.evaluated > 0
        assert result.pareto
        for point in result.pareto:
            assert 0.0 <= point.write <= 1.0
            assert 0.0 <= point.read <= 1.0

    def test_winners_are_consistent(self):
        result = optimize_config(9, 6, 0.7)
        assert result.best_for_writes.write >= result.best_balanced.write - 1e-12
        assert result.best_for_reads.read >= result.best_balanced.read - 1e-12
        assert result.best_balanced.balanced >= min(
            result.best_for_writes.balanced, result.best_for_reads.balanced
        ) - 1e-12

    def test_pareto_points_not_dominated(self):
        result = optimize_config(9, 6, 0.6)
        for a in result.pareto:
            for b in result.pareto:
                if a is b:
                    continue
                dominates = (
                    b.write >= a.write and b.read >= a.read
                ) and (b.write > a.write or b.read > a.read)
                assert not dominates

    def test_minimal_thresholds_win_writes(self):
        # The write-optimal configuration minimizes thresholds: a b = 1
        # base (w_0 = 1) with w_l = 1 upper levels beats the flat
        # majority, whose w_0 = floor(Nbnode/2) + 1 is much stricter.
        result = optimize_config(9, 6, 0.7)
        best = result.best_for_writes
        assert best.shape.b == 1
        assert all(w == 1 for w in best.w)
        flat = TrapezoidQuorum.uniform(TrapezoidShape(0, 4, 0))
        from repro.analysis import write_availability

        assert best.write >= float(write_availability(flat, 0.7)) + 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimize_config(9, 6, 0.0)
        with pytest.raises(ConfigurationError):
            optimize_config(5, 6, 0.5)

    def test_paper_config_is_dominated(self):
        # Reproduction finding: the paper's calibrated Figure-3
        # configuration ((2,3,1), w=(2,3)) is NOT Pareto-optimal under
        # the exact Algorithm-2 read availability — e.g. shape (6,1,1)
        # with w=(1,4) achieves the same write availability (0.25 at
        # p=0.5) with strictly better reads. Recorded in EXPERIMENTS.md.
        from repro.analysis import exact_read_erc, write_availability

        paper = TrapezoidQuorum(TrapezoidShape(2, 3, 1), (2, 3))
        paper_write = float(write_availability(paper, 0.5))
        paper_read = float(exact_read_erc(paper, 15, 8, 0.5))
        result = optimize_config(15, 8, 0.5, max_h=2)
        dominators = [
            pt
            for pt in result.pareto
            if pt.write >= paper_write - 1e-12 and pt.read > paper_read + 1e-6
        ]
        assert dominators, "expected a configuration dominating the paper's"
