"""Tests for the Φ combinator (paper eq. 7)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import at_least, exactly, phi
from repro.errors import ConfigurationError


def phi_reference(z: int, i: int, j: int, p: float) -> float:
    """Literal transcription of eq. (7) for cross-checking."""
    return sum(
        math.comb(z, m) * p**m * (1 - p) ** (z - m)
        for m in range(max(i, 0), min(j, z) + 1)
    )


class TestPhi:
    def test_full_range_is_one(self):
        p = np.linspace(0, 1, 11)
        np.testing.assert_allclose(phi(7, 0, 7, p), np.ones_like(p), atol=1e-12)

    def test_empty_range_is_zero(self):
        p = np.linspace(0, 1, 11)
        np.testing.assert_allclose(phi(7, 5, 4, p), np.zeros_like(p))
        np.testing.assert_allclose(phi(7, 0, -1, p), np.zeros_like(p))

    def test_clamps_to_support(self):
        p = 0.3
        assert phi(5, -3, 99, p) == pytest.approx(1.0)
        assert phi(5, 3, 99, p) == pytest.approx(phi_reference(5, 3, 5, p))

    def test_matches_reference(self):
        for z in (1, 4, 9):
            for i in range(z + 1):
                for j in range(i, z + 1):
                    for p in (0.0, 0.2, 0.5, 0.9, 1.0):
                        assert phi(z, i, j, p) == pytest.approx(
                            phi_reference(z, i, j, p), abs=1e-12
                        ), (z, i, j, p)

    def test_z_zero(self):
        # Zero nodes: exactly zero are available with probability 1.
        assert phi(0, 0, 0, 0.3) == pytest.approx(1.0)
        assert phi(0, 1, 1, 0.3) == pytest.approx(0.0)

    def test_negative_z_raises(self):
        with pytest.raises(ConfigurationError):
            phi(-1, 0, 0, 0.5)

    def test_p_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            phi(3, 0, 1, 1.5)
        with pytest.raises(ConfigurationError):
            phi(3, 0, 1, -0.1)

    def test_vectorized_over_p(self):
        p = np.linspace(0, 1, 23)
        out = phi(6, 2, 4, p)
        assert out.shape == p.shape
        for idx in (0, 7, 22):
            assert out[idx] == pytest.approx(phi_reference(6, 2, 4, p[idx]))

    def test_at_least(self):
        p = 0.7
        assert at_least(6, 4, p) == pytest.approx(phi_reference(6, 4, 6, p))

    def test_at_least_zero_threshold(self):
        assert at_least(6, 0, 0.01) == pytest.approx(1.0)

    def test_exactly(self):
        p = 0.4
        assert exactly(5, 2, p) == pytest.approx(math.comb(5, 2) * 0.4**2 * 0.6**3)

    def test_exactly_out_of_support(self):
        assert exactly(5, 6, 0.4) == pytest.approx(0.0)
        assert exactly(5, -1, 0.4) == pytest.approx(0.0)

    @settings(max_examples=60)
    @given(
        z=st.integers(0, 12),
        i=st.integers(-2, 13),
        j=st.integers(-2, 13),
        p=st.floats(0, 1),
    )
    def test_property_matches_reference(self, z, i, j, p):
        assert phi(z, i, j, p) == pytest.approx(phi_reference(z, i, j, p), abs=1e-9)

    @settings(max_examples=40)
    @given(z=st.integers(1, 10), i=st.integers(1, 10))
    def test_at_least_monotone_decreasing_in_threshold(self, z, i):
        p = 0.6
        if i <= z:
            assert at_least(z, i, p) <= at_least(z, i - 1, p) + 1e-12
