"""Cross-layer property tests: randomized invariants spanning modules.

Hypothesis-driven checks that tie independent implementations together:
geometry vs predicates, closed forms vs enumeration, matrix vs polynomial
decoding, protocol engines vs abstract quorum systems.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    exact_availability,
    exact_read_erc,
    read_availability_fr,
    write_availability,
)
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape, TrapezoidSystem

shapes = st.builds(
    TrapezoidShape,
    a=st.integers(0, 3),
    b=st.integers(1, 5),
    h=st.integers(0, 2),
)


def quorum_for(shape: TrapezoidShape, data) -> TrapezoidQuorum:
    w = [shape.b // 2 + 1]
    for l in range(1, shape.h + 1):
        w.append(data.draw(st.integers(1, shape.level_size(l)), label=f"w{l}"))
    return TrapezoidQuorum(shape, tuple(w))


class TestFormulaVsEnumeration:
    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, data=st.data(), p=st.floats(0.05, 0.95))
    def test_write_closed_form_is_exact(self, shape, data, p):
        quorum = quorum_for(shape, data)
        if shape.total_nodes > 14:
            return  # keep enumeration fast
        closed = float(write_availability(quorum, p))
        exact = float(
            exact_availability(TrapezoidSystem(quorum), np.asarray(p), kind="write")
        )
        assert closed == pytest.approx(exact, abs=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, data=st.data(), p=st.floats(0.05, 0.95))
    def test_read_fr_closed_form_is_exact(self, shape, data, p):
        quorum = quorum_for(shape, data)
        if shape.total_nodes > 14:
            return
        closed = float(read_availability_fr(quorum, p))
        exact = float(
            exact_availability(TrapezoidSystem(quorum), np.asarray(p), kind="read")
        )
        assert closed == pytest.approx(exact, abs=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, data=st.data(), p=st.floats(0.05, 0.95), extra_k=st.integers(1, 6))
    def test_exact_erc_read_sandwiched(self, shape, data, p, extra_k):
        """0 <= exact ERC read <= FR read <= 1 for arbitrary geometry."""
        quorum = quorum_for(shape, data)
        if shape.total_nodes > 12:
            return
        k = extra_k
        n = shape.total_nodes + k - 1
        erc = float(exact_read_erc(quorum, n, k, p))
        fr = float(read_availability_fr(quorum, p))
        assert -1e-12 <= erc <= fr + 1e-9
        assert fr <= 1 + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(shape=shapes, data=st.data())
    def test_availability_monotone_in_p_property(self, shape, data):
        quorum = quorum_for(shape, data)
        p = np.linspace(0.05, 0.95, 10)
        w = write_availability(quorum, p)
        assert np.all(np.diff(w) >= -1e-12)
        r = read_availability_fr(quorum, p)
        assert np.all(np.diff(r) >= -1e-12)


class TestCodecProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nk=st.tuples(st.integers(2, 9), st.integers(1, 9)).filter(lambda t: t[0] >= t[1]),
        construction=st.sampled_from(["vandermonde", "cauchy"]),
    )
    def test_double_update_roundtrips(self, seed, nk, construction):
        """Applying an update then its inverse restores the exact stripe."""
        n, k = nk
        code = MDSCode(n, k, construction=construction)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(k, 8), dtype=np.int64).astype(np.uint8)
        stripe = code.encode(data)
        original = stripe.copy()
        i = int(rng.integers(0, k))
        new_block = rng.integers(0, 256, 8, dtype=np.int64).astype(np.uint8)
        delta = code.delta(stripe[i], new_block)
        for j in range(k, n):
            code.apply_parity_delta(stripe[j], j, i, delta)
        stripe[i] = new_block
        # invert
        back = code.delta(stripe[i], original[i])
        for j in range(k, n):
            code.apply_parity_delta(stripe[j], j, i, back)
        stripe[i] = original[i]
        assert np.array_equal(stripe, original)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_stripe_always_in_code_space(self, seed):
        """Random update sequences keep the stripe a valid codeword."""
        code = MDSCode(8, 5)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(5, 8), dtype=np.int64).astype(np.uint8)
        stripe = code.encode(data)
        for _ in range(6):
            i = int(rng.integers(0, 5))
            new_block = rng.integers(0, 256, 8, dtype=np.int64).astype(np.uint8)
            delta = code.delta(stripe[i], new_block)
            for j in range(5, 8):
                code.apply_parity_delta(stripe[j], j, i, delta)
            stripe[i] = new_block
        assert np.array_equal(stripe, code.encode(stripe[:5]))


class TestProtocolSnapshotEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_read_outcome_equals_predicate_on_synced_stripe(self, data):
        """For every alive-pattern, the executable ERC read succeeds iff
        the analytic snapshot predicate holds (fully synced state)."""
        from repro.cluster import Cluster
        from repro.core import TrapErcProtocol

        n, k = 7, 4
        shape = TrapezoidShape(2, 1, 1)
        quorum = TrapezoidQuorum.uniform(shape, data.draw(st.integers(1, 3), label="w"))
        cluster = Cluster(n)
        proto = TrapErcProtocol(cluster, MDSCode(n, k), quorum)
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000), label="seed"))
        proto.initialize(
            rng.integers(0, 256, size=(k, 8), dtype=np.int64).astype(np.uint8)
        )
        alive = np.array([data.draw(st.booleans(), label=f"n{i}") for i in range(n)])
        cluster.apply_alive_vector(alive)

        # analytic predicate for block 0
        group = proto.placement.group_nodes(0)
        counts = [
            sum(alive[group[pos]] for pos in shape.positions(l))
            for l in shape.levels
        ]
        check = quorum.read_check_predicate(counts)
        decode_pool = int(alive[1:].sum())  # nodes other than N_0
        predicate = check and (alive[0] or decode_pool >= k)

        result = proto.read_block(0)
        assert result.success == predicate
