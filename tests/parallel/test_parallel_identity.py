"""The determinism contract, pinned: parallel output == serial output.

Every unit kind the runner fans out — saturation client-count points,
(p, metric) MC columns, protocol-MC trial chunks, optimizer shape
families, comparison sub-runs — must produce the byte-identical result
document (``ScenarioResult.to_json()``, ``trace_hash`` included) at any
worker count, because child RNG streams are assigned by task index,
never by worker. ``jobs=0`` is the baseline; ``jobs=2`` (and ``jobs=4``
for one cheap kind) must match it exactly.
"""

from __future__ import annotations

import pytest

from repro.api import SystemSpec, run_spec

_BASE = {
    "protocol": "trap-erc",
    "code": {"n": 9, "k": 6},
    "quorum": {"a": 2, "b": 1, "h": 1, "w": 2},
    "seed": 23,
}

#: One spec per parallelized unit kind, sized for test-suite budgets.
SPECS = {
    "availability": {
        **_BASE,
        "scenario": {"kind": "availability", "ps": [0.8, 0.9], "trials": 50},
    },
    "sweep": {
        **_BASE,
        "scenario": {"kind": "sweep", "ps": [0.85, 0.95], "trials": 40},
    },
    "protocol_mc": {
        **_BASE,
        "cluster": {"num_nodes": 9, "p": 0.85},
        "scenario": {"kind": "protocol_mc", "trials": 37},
    },
    "protocol_mc_generic": {
        **_BASE,
        "protocol": "majority",
        "cluster": {"num_nodes": 9, "p": 0.85},
        "scenario": {"kind": "protocol_mc", "trials": 13},
    },
    "optimize": {
        **_BASE,
        "scenario": {"kind": "optimize", "ps": [0.9], "max_h": 2},
    },
    "comparison": {**_BASE, "scenario": {"kind": "comparison", "steps": 30}},
    "saturation": {
        **_BASE,
        "latency": {"kind": "lognormal"},
        "service": {"kind": "fixed", "time": 0.002},
        "sharding": {"shards": 2},
        "workload": {"num_ops": 80, "block_length": 16},
        "scenario": {
            "kind": "saturation",
            "client_counts": [1, 4],
            "horizon": 400,
        },
    },
}


@pytest.fixture(scope="module")
def serial_json() -> dict:
    """The jobs=0 baseline document per kind, computed once."""
    return {
        kind: run_spec(SystemSpec.from_dict(spec)).to_json()
        for kind, spec in SPECS.items()
    }


class TestParallelIdentity:
    @pytest.mark.parametrize("kind", sorted(SPECS))
    def test_jobs2_byte_identical(self, serial_json, kind):
        spec = SystemSpec.from_dict(SPECS[kind])
        assert run_spec(spec, jobs=2).to_json() == serial_json[kind]

    def test_jobs4_byte_identical(self, serial_json):
        # One cheap kind at a worker count above the unit count, so the
        # idle-worker and uneven-chunk paths are exercised too.
        spec = SystemSpec.from_dict(SPECS["protocol_mc_generic"])
        assert (
            run_spec(spec, jobs=4).to_json()
            == serial_json["protocol_mc_generic"]
        )

    def test_serial_jobs1_identical(self, serial_json):
        # jobs=1 is the inline path by contract, not a one-worker pool.
        spec = SystemSpec.from_dict(SPECS["protocol_mc"])
        assert run_spec(spec, jobs=1).to_json() == serial_json["protocol_mc"]

    def test_shared_executor_byte_identical_and_left_open(self, serial_json):
        # A caller-owned pool (ScenarioRunner(executor=...)) gives the
        # same bytes as jobs=0, survives run() (the runner must not
        # close what it doesn't own), and stays warm across runs.
        from repro.api import ScenarioRunner
        from repro.parallel import ParallelExecutor

        spec = SystemSpec.from_dict(SPECS["protocol_mc"])
        with ParallelExecutor(2) as pool:
            first = ScenarioRunner(spec, executor=pool).run().to_json()
            second = ScenarioRunner(spec, executor=pool).run().to_json()
            assert first == serial_json["protocol_mc"]
            assert second == serial_json["protocol_mc"]
            # the lent pool is still usable after both runs
            assert pool.map(len, [[1, 2], [3]]) == [2, 1]

    def test_trace_hash_pinned_across_jobs(self, serial_json):
        # The saturation digest is the strongest witness: it hashes every
        # per-point event trace, so any scheduling leak flips it.
        import json

        doc = json.loads(serial_json["saturation"])
        par = json.loads(
            run_spec(
                SystemSpec.from_dict(SPECS["saturation"]), jobs=2
            ).to_json()
        )
        assert doc["data"]["trace_hash"] == par["data"]["trace_hash"]
