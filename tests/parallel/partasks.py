"""Importable task functions for the process-pool executor tests.

Spawn-context workers resolve task functions by import, so these must
live in a real module — the test module itself is fine for the parent,
but the child needs this directory on ``sys.path`` (the tests pass it
via ``ParallelExecutor(sys_paths=...)``).
"""

from __future__ import annotations

import os


def square(x: int) -> int:
    return x * x


def pid_and_square(x: int) -> tuple:
    return (os.getpid(), x * x)


def fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"boom at {x}")
    return x


def crash_on_three(x: int) -> int:
    if x == 3:
        os._exit(17)  # die without answering: the worker-crash path
    return x


def interrupt_on_three(x: int) -> int:
    if x == 3:
        raise KeyboardInterrupt
    return x
