"""ParallelExecutor contract tests: ordering, failure surfacing, cleanup.

The executor is the one fan-out primitive every study layer shares, so
its contract is pinned directly: results in task order at any worker
count, ``jobs<=1`` means inline execution, task exceptions come back as
:class:`ParallelExecutionError` with the worker traceback, a worker
dying without answering raises :class:`WorkerCrashError`, and every
failure path tears the pool down — no orphaned workers, no partial
results.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import partasks
from repro.errors import (
    ConfigurationError,
    ParallelExecutionError,
    WorkerCrashError,
)
from repro.parallel import ParallelExecutor, resolve_jobs

HERE = str(Path(__file__).resolve().parent)


def make_executor(jobs, **kwargs) -> ParallelExecutor:
    return ParallelExecutor(jobs, sys_paths=(HERE,), **kwargs)


@contextlib.contextmanager
def no_orphan_workers():
    """Every worker spawned inside the block must be gone when it ends.

    Snapshot-relative, so pools owned by other fixtures (e.g. the
    module-scoped warm pool) don't trip the check.
    """
    before = {proc.pid for proc in multiprocessing.active_children()}
    yield
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leftover = [
            proc
            for proc in multiprocessing.active_children()
            if proc.pid not in before
        ]
        if not leftover:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned worker processes: {leftover}")


class TestResolveJobs:
    def test_values(self):
        assert resolve_jobs(None) == 0
        assert resolve_jobs(0) == 0
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        cpus = resolve_jobs("auto")
        assert cpus >= 1
        assert resolve_jobs(-1) == cpus

    @pytest.mark.parametrize("bad", [-2, "three", 1.5, object()])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_jobs(bad)

    def test_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(2, chunk_size=0)


class TestInlinePath:
    @pytest.mark.parametrize("jobs", [0, 1, None])
    def test_not_parallel(self, jobs):
        ex = ParallelExecutor(jobs)
        assert ex.parallel is False

    @pytest.mark.parametrize("jobs", [0, 1])
    def test_runs_inline_without_pickling(self, jobs):
        # A lambda is unpicklable — succeeding proves no pool is involved.
        ex = ParallelExecutor(jobs)
        assert ex.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert ex._pool is None

    def test_single_payload_stays_inline_even_with_workers(self):
        ex = ParallelExecutor(4)
        assert ex.map(lambda x: x * 10, [7]) == [70]
        assert ex._pool is None

    def test_inline_exceptions_propagate_raw(self):
        ex = ParallelExecutor(0)
        with pytest.raises(ValueError, match="boom at 3"):
            ex.map(partasks.fail_on_three, range(6))


class TestParallelPath:
    def test_results_in_task_order(self):
        with make_executor(2) as ex:
            assert ex.map(partasks.square, range(20)) == [
                x * x for x in range(20)
            ]
            assert ex._pool is not None

    @pytest.mark.parametrize("chunk_size", [1, 3, 100])
    def test_chunking_never_reorders(self, chunk_size):
        with make_executor(2, chunk_size=chunk_size) as ex:
            assert ex.map(partasks.square, range(11)) == [
                x * x for x in range(11)
            ]

    def test_pool_reused_across_maps(self):
        with make_executor(2) as ex:
            ex.map(partasks.square, range(4))
            pool = ex._pool
            ex.map(partasks.square, range(4))
            assert ex._pool is pool

    def test_runs_in_worker_processes(self):
        import os

        with make_executor(2, chunk_size=1) as ex:
            pids = {pid for pid, _ in ex.map(partasks.pid_and_square, range(6))}
        assert os.getpid() not in pids

    def test_default_chunks_cover_all_payloads(self):
        ex = ParallelExecutor(3)
        chunks = ex._chunks(list(range(25)))
        assert [x for chunk in chunks for x in chunk] == list(range(25))
        assert all(chunks)

    def test_close_idempotent(self):
        with no_orphan_workers():
            ex = make_executor(2)
            ex.map(partasks.square, range(4))
            ex.close()
            ex.close()
            assert ex._pool is None


@pytest.fixture(scope="module")
def warm_pool():
    ex = make_executor(2, chunk_size=3)
    yield ex
    ex.close()


@given(xs=st.lists(st.integers(-(10**6), 10**6), max_size=12))
@settings(max_examples=15, deadline=None)
def test_map_matches_inline_for_any_payloads(warm_pool, xs):
    assert warm_pool.map(partasks.square, xs) == [x * x for x in xs]


class TestFailureSurfacing:
    def test_task_exception_wrapped_with_context(self):
        with no_orphan_workers():
            ex = make_executor(2, chunk_size=1)
            with pytest.raises(ParallelExecutionError) as excinfo:
                ex.map(partasks.fail_on_three, range(6))
            err = excinfo.value
            assert err.exc_type == "ValueError"
            assert "boom at 3" in err.message
            assert "ValueError" in err.worker_traceback
            # no partial results and no pool left behind
            assert ex._pool is None

    def test_worker_crash_raises_crash_error(self):
        with no_orphan_workers():
            ex = make_executor(2, chunk_size=1)
            with pytest.raises(WorkerCrashError) as excinfo:
                ex.map(partasks.crash_on_three, range(6))
            assert isinstance(excinfo.value, ParallelExecutionError)
            assert ex._pool is None

    def test_worker_keyboard_interrupt_is_marshalled(self):
        # Worker-side interrupts come back as marshalled task failures
        # (the chunk loop catches BaseException) — still no partial
        # results, still a torn-down pool.
        with no_orphan_workers():
            ex = make_executor(2, chunk_size=1)
            with pytest.raises(ParallelExecutionError) as excinfo:
                ex.map(partasks.interrupt_on_three, range(6))
            assert excinfo.value.exc_type == "KeyboardInterrupt"
            assert ex._pool is None

    def test_parent_keyboard_interrupt_tears_down_pool(self, monkeypatch):
        # Parent-side ^C while dispatching: the pool is force-closed and
        # the interrupt surfaces untouched.
        with no_orphan_workers():
            ex = make_executor(2)
            ex.map(partasks.square, range(4))  # warm the pool first

            def explode(self, payloads):
                raise KeyboardInterrupt

            monkeypatch.setattr(ParallelExecutor, "_chunks", explode)
            with pytest.raises(KeyboardInterrupt):
                ex.map(partasks.square, range(4))
            assert ex._pool is None
