"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestLayoutCommand:
    def test_renders_paper_shape(self, capsys):
        assert main(["layout", "--a", "2", "--b", "3", "--height", "2"]) == 0
        out = capsys.readouterr().out
        assert "total nodes  : 15" in out
        assert "l=2" in out
        assert "w=(2," in out


class TestCalibrateCommand:
    def test_top_configs_printed(self, capsys):
        assert main(["calibrate", "--n", "15", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "k= 8 shape=(a=2,b=3,h=1) w=3" in out
        assert out.count("score") == 2


class TestAvailabilityCommand:
    def test_csv_output(self, capsys):
        code = main(
            [
                "availability",
                "--n", "15", "--k", "8",
                "--a", "2", "--b", "3", "--height", "1",
                "--w", "3", "--p", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p,metric,method,value" in out
        assert "0.5,read_fr,closed_form,0.750000" in out

    def test_with_mc_column(self, capsys):
        main(
            [
                "availability",
                "--n", "9", "--k", "6",
                "--a", "2", "--b", "1", "--height", "1",
                "--p", "0.7", "--mc-trials", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert "monte_carlo" in out


class TestOptimizeCommand:
    def test_optimize_output(self, capsys):
        assert main(["optimize", "--n", "9", "--k", "6", "--p", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "best for writes" in out
        assert "Pareto front" in out


class TestFiguresCommand:
    def test_writes_csvs(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fig3.csv" in out
        assert (tmp_path / "fig2.csv").exists()
        assert (tmp_path / "fig5.csv").exists()
        header = (tmp_path / "fig3.csv").read_text().splitlines()[0]
        assert header.startswith("p,")
