"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestLayoutCommand:
    def test_renders_paper_shape(self, capsys):
        assert main(["layout", "--a", "2", "--b", "3", "--height", "2"]) == 0
        out = capsys.readouterr().out
        assert "total nodes  : 15" in out
        assert "l=2" in out
        assert "w=(2," in out


class TestCalibrateCommand:
    def test_top_configs_printed(self, capsys):
        assert main(["calibrate", "--n", "15", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "k= 8 shape=(a=2,b=3,h=1) w=3" in out
        assert out.count("score") == 2


class TestAvailabilityCommand:
    def test_csv_output(self, capsys):
        code = main(
            [
                "availability",
                "--n", "15", "--k", "8",
                "--a", "2", "--b", "3", "--height", "1",
                "--w", "3", "--p", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p,metric,method,value" in out
        assert "0.5,read_fr,closed_form,0.750000" in out

    def test_with_mc_column(self, capsys):
        main(
            [
                "availability",
                "--n", "9", "--k", "6",
                "--a", "2", "--b", "1", "--height", "1",
                "--p", "0.7", "--mc-trials", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert "monte_carlo" in out


class TestOptimizeCommand:
    def test_optimize_output(self, capsys):
        assert main(["optimize", "--n", "9", "--k", "6", "--p", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "best for writes" in out
        assert "Pareto front" in out


class TestRunCommand:
    def _spec_file(self, tmp_path, protocol: str, **scenario):
        from repro.api import ScenarioSpec, SystemSpec, WorkloadSpec

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            protocol=protocol,
            workload=WorkloadSpec(num_ops=20, block_length=8),
            scenario=ScenarioSpec(**scenario) if scenario else ScenarioSpec(),
            seed=5,
        )
        path = tmp_path / f"{protocol}.json"
        path.write_text(spec.to_json())
        return path

    def test_run_every_registry_protocol(self, tmp_path, capsys):
        from repro.api import protocol_names

        for protocol in protocol_names():
            config = self._spec_file(tmp_path, protocol)
            assert main(["run", "--config", str(config), "--quiet"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["protocol"] == protocol
            assert payload["data"]["reads_ok"] == payload["data"]["reads"]

    def test_run_writes_results_file(self, tmp_path, capsys):
        config = self._spec_file(
            tmp_path, "trap-erc", kind="comparison", steps=15
        )
        out = tmp_path / "results.json"
        assert main(["run", "--config", str(config), "--out", str(out), "--quiet"]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "comparison"
        assert set(payload["data"]) == {"majority", "rowa", "trap-erc", "trap-fr"}

    def test_run_results_replay_identically(self, tmp_path, capsys):
        config = self._spec_file(tmp_path, "trap-fr")
        main(["run", "--config", str(config), "--quiet"])
        first = capsys.readouterr().out
        main(["run", "--config", str(config), "--quiet"])
        assert capsys.readouterr().out == first


class TestDumpConfig:
    def test_availability_dump_config_round_trips(self, tmp_path, capsys):
        dump = tmp_path / "spec.json"
        assert main(
            [
                "availability",
                "--n", "9", "--k", "6",
                "--a", "2", "--b", "1", "--height", "1",
                "--w", "2", "--p", "0.5", "--mc-trials", "100",
                "--dump-config", str(dump),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["run", "--config", str(dump), "--quiet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "availability"
        assert payload["spec"]["scenario"]["trials"] == 100
        methods = {r["method"] for r in payload["data"]["records"]}
        assert "monte_carlo" in methods

    def test_optimize_dump_config_is_runnable(self, tmp_path, capsys):
        dump = tmp_path / "best.json"
        assert main(
            [
                "optimize",
                "--n", "9", "--k", "6", "--p", "0.7",
                "--dump-config", str(dump),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["run", "--config", str(dump), "--quiet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "optimize"
        assert payload["spec"]["code"] == {
            "n": 9, "k": 6, "construction": "vandermonde",
        }
        # The replayed search reproduces the CLI's winners exactly.
        from repro.analysis import optimize_config

        best = optimize_config(9, 6, 0.7).best_balanced
        replayed = payload["data"]["results"][0]["best_balanced"]
        assert replayed["w"] == list(best.w)
        assert replayed["write"] == best.write
        assert replayed["read"] == best.read

    def test_optimize_multiple_p_values(self, capsys):
        assert main(
            ["optimize", "--n", "9", "--k", "6", "--p", "0.5", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "p=0.5:" in out
        assert "p=0.9:" in out


class TestFiguresCommand:
    def test_writes_csvs(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fig3.csv" in out
        assert (tmp_path / "fig2.csv").exists()
        assert (tmp_path / "fig5.csv").exists()
        header = (tmp_path / "fig3.csv").read_text().splitlines()[0]
        assert header.startswith("p,")


class TestServeCommand:
    def test_bounded_lifetime_announces_and_stops(self, capsys):
        code = main(
            [
                "serve", "--nodes", "2", "--port-base", "0",
                "--max-seconds", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 node services" in out
        assert "stopped" in out


class TestWallclockCommand:
    def _spec_file(self, tmp_path, **transport):
        from repro.api import (
            ScenarioSpec,
            SystemSpec,
            TransportSpec,
            WorkloadSpec,
        )

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            workload=WorkloadSpec(num_ops=16, block_length=16),
            transport=TransportSpec(**transport),
            scenario=ScenarioSpec(kind="wallclock", clients=2, horizon=60.0),
            seed=4,
        )
        path = tmp_path / "wallclock.json"
        path.write_text(spec.to_json() + "\n")
        return path

    def test_prints_predicted_vs_measured_table(self, tmp_path, capsys):
        path = self._spec_file(tmp_path)
        out_path = tmp_path / "results.json"
        code = main(["wallclock", "--config", str(path), "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "wallclock"
        measured = payload["data"]["comparison"]["measured"]
        assert measured["read"]["count"] > 0 and measured["read"]["p95"] > 0

    def test_coerces_non_wallclock_scenarios(self, tmp_path, capsys):
        # a plain latency spec gains the wallclock kind instead of erroring
        from repro.api import SystemSpec, WorkloadSpec

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            workload=WorkloadSpec(num_ops=8, block_length=16),
            seed=4,
        )
        path = tmp_path / "latency.json"
        path.write_text(spec.to_json() + "\n")
        assert main(["wallclock", "--config", str(path)]) == 0
        assert "measured" in capsys.readouterr().out


class TestJobsFlag:
    """--jobs wiring: parallel runs byte-identical, execution block advisory."""

    def _config(self, tmp_path, execution=None):
        from repro.api import ScenarioSpec, SystemSpec, WorkloadSpec

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            workload=WorkloadSpec(num_ops=20, block_length=8),
            scenario=ScenarioSpec(kind="protocol_mc", trials=9),
            seed=5,
        )
        payload = json.loads(spec.to_json())
        if execution is not None:
            payload["execution"] = execution
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(payload))
        return path

    def test_run_jobs_output_byte_identical(self, tmp_path, capsys):
        config = self._config(tmp_path)
        assert main(["run", "--config", str(config), "--quiet"]) == 0
        serial = capsys.readouterr().out
        assert main(
            ["run", "--config", str(config), "--quiet", "--jobs", "2"]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_execution_block_is_advisory_only(self, tmp_path, capsys):
        # The block selects workers but never enters spec identity: the
        # output (result "spec" section included) is byte-identical to a
        # config without it.
        plain = self._config(tmp_path)
        assert main(["run", "--config", str(plain), "--quiet"]) == 0
        serial = capsys.readouterr().out
        with_block = self._config(tmp_path, execution={"jobs": 2})
        assert main(["run", "--config", str(with_block), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert out == serial
        assert "execution" not in json.loads(out)["spec"]

    def test_jobs_flag_overrides_execution_block(self, tmp_path, capsys):
        config = self._config(tmp_path, execution={"jobs": 2})
        assert main(
            ["run", "--config", str(config), "--quiet", "--jobs", "0"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["kind"] == "protocol_mc"

    def test_invalid_execution_block_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        config = self._config(tmp_path, execution={"jobs": -2})
        with pytest.raises(ConfigurationError, match="jobs"):
            main(["run", "--config", str(config), "--quiet"])

    def test_availability_jobs_csv_identical(self, capsys):
        argv = [
            "availability", "--n", "9", "--k", "6",
            "--a", "2", "--b", "1", "--height", "1",
            "--p", "0.7", "0.9", "--mc-trials", "500", "--seed", "3",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial
