"""Tests for the virtual-disk middleware."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.storage import DiskClient, VirtualDisk


def make_disk(num_blocks: int = 12, block_size: int = 32):
    cluster = Cluster(9)
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    disk = VirtualDisk(cluster, num_blocks, block_size, 9, 6, quorum)
    disk.format()
    return cluster, disk


class TestFormatAndGeometry:
    def test_stripes_cover_capacity(self):
        _, disk = make_disk(num_blocks=13)
        assert disk.num_stripes == 3  # ceil(13 / 6)
        assert disk.capacity_bytes() == 13 * 32

    def test_default_quorum_shape(self):
        cluster = Cluster(9)
        disk = VirtualDisk(cluster, 6, 16, 9, 6)
        assert disk.quorum.shape.total_nodes == 4

    def test_unformatted_access_rejected(self):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(cluster, 6, 16, 9, 6, quorum)
        with pytest.raises(ConfigurationError):
            disk.read(0)
        with pytest.raises(ConfigurationError):
            disk.write(0, b"x")

    def test_validation(self):
        cluster = Cluster(9)
        with pytest.raises(ConfigurationError):
            VirtualDisk(cluster, 0, 16, 9, 6)
        with pytest.raises(ConfigurationError):
            VirtualDisk(cluster, 4, 0, 9, 6)

    def test_fresh_disk_reads_zeros(self):
        _, disk = make_disk()
        assert disk.read(0) == bytes(32)
        assert disk.read(11) == bytes(32)


class TestReadWrite:
    def test_roundtrip(self):
        _, disk = make_disk()
        assert disk.write(3, b"hello")
        data = disk.read(3)
        assert data[:5] == b"hello"
        assert data[5:] == bytes(27)  # zero padding

    def test_blocks_are_independent(self):
        _, disk = make_disk()
        disk.write(0, b"a" * 32)
        disk.write(6, b"b" * 32)  # different stripe
        disk.write(1, b"c" * 32)  # same stripe as 0
        assert disk.read(0) == b"a" * 32
        assert disk.read(6) == b"b" * 32
        assert disk.read(1) == b"c" * 32

    def test_oversized_payload_rejected(self):
        _, disk = make_disk()
        with pytest.raises(ConfigurationError):
            disk.write(0, b"x" * 33)

    def test_block_bounds(self):
        _, disk = make_disk()
        with pytest.raises(ConfigurationError):
            disk.read(12)
        with pytest.raises(ConfigurationError):
            disk.write(-1, b"")

    def test_span_roundtrip(self):
        _, disk = make_disk()
        payload = bytes(range(96))  # 3 blocks
        assert disk.write_span(4, payload)
        assert disk.read_span(4, 3) == payload

    def test_overwrites_bump_versions(self):
        _, disk = make_disk()
        for round_no in range(3):
            assert disk.write(2, bytes([round_no]) * 32)
        assert disk.read(2) == bytes([2]) * 32


class TestFailures:
    def test_reads_survive_data_node_loss(self):
        cluster, disk = make_disk()
        disk.write(0, b"payload!" * 4)
        cluster.fail(0)  # node holding logical block 0's data
        assert disk.read(0) == b"payload!" * 4  # decode path

    def test_read_returns_none_without_quorum(self):
        cluster, disk = make_disk()
        cluster.fail_many([0, 6, 7, 8])
        assert disk.read(0) is None

    def test_write_returns_false_without_quorum(self):
        cluster, disk = make_disk()
        cluster.fail_many([6, 7, 8])
        assert disk.write(0, b"data") is False

    def test_repair_all_recovers_stale_nodes(self):
        cluster, disk = make_disk()
        cluster.fail(6)
        assert disk.write(0, b"fresh data")
        cluster.recover(6)
        repaired = disk.repair_all()
        assert repaired >= 1
        vv = cluster.node(6).parity_versions(disk.stripes[0].parity_key())
        assert vv[0] == 1

    def test_storage_accounting(self):
        _, disk = make_disk(num_blocks=12)
        # 2 stripes x 9 blocks x 32 bytes physical; 12 x 32 logical.
        assert disk.raw_storage_bytes() == 2 * 9 * 32
        assert disk.storage_efficiency() == pytest.approx(12 * 32 / (2 * 9 * 32))


class TestDiskClient:
    def test_passthrough_success(self):
        _, disk = make_disk()
        client = DiskClient(disk)
        assert client.write(0, b"abc")
        assert client.read(0)[:3] == b"abc"
        assert client.stats.read_failures == 0
        assert client.stats.write_failures == 0

    def test_retry_after_transient_repairable_failure(self):
        cluster, disk = make_disk()
        client = DiskClient(disk, max_retries=1, repair_on_failure=True)
        # Make parity 6 stale, then bring it back; a write quorum of
        # w=(1,2) still needs 2 fresh parities of {6,7,8}.
        cluster.fail(6)
        assert client.write(0, b"v1")
        cluster.recover(6)
        # Now fail node 7: without repair, parities {6 (stale), 8} cannot
        # reach w_1 = 2 fresh acks; the repair pass revives node 6.
        cluster.fail(7)
        assert client.write(0, b"v2")
        assert client.stats.write_retries >= 1
        assert client.stats.repair_passes >= 1
        assert client.read(0)[:2] == b"v2"

    def test_failure_counted_when_retries_exhausted(self):
        cluster, disk = make_disk()
        client = DiskClient(disk, max_retries=1, repair_on_failure=False)
        cluster.fail_many([6, 7, 8])
        assert not client.write(0, b"nope")
        assert client.stats.write_failures == 1
        assert client.read(1) == bytes(32)  # level-0 read still fine... (N_1 alive)

    def test_validation(self):
        _, disk = make_disk()
        with pytest.raises(ConfigurationError):
            DiskClient(disk, max_retries=-1)
