"""Tests for placement policies and recovery-traffic accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    node_repair_bill,
    repair_amplification,
    repair_traffic_erc,
    repair_traffic_fr,
)
from repro.cluster import Cluster
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.storage import IdentityPlacement, RotatingPlacement, VirtualDisk


class TestIdentityPlacement:
    def test_same_layout_every_stripe(self):
        pol = IdentityPlacement(9, 6, 9)
        assert pol.layout_for(0).node_ids == pol.layout_for(5).node_ids

    def test_parity_concentrates(self):
        pol = IdentityPlacement(9, 6, 9)
        load = pol.parity_load(12)
        assert load[6] == load[7] == load[8] == 12
        assert load[0] == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdentityPlacement(9, 6, 8)  # cluster too small
        with pytest.raises(ConfigurationError):
            IdentityPlacement(5, 6, 9)
        with pytest.raises(ConfigurationError):
            IdentityPlacement(9, 6, 9).layout_for(-1)


class TestRotatingPlacement:
    def test_layouts_rotate(self):
        pol = RotatingPlacement(9, 6, 9)
        assert pol.layout_for(0).node_ids == tuple(range(9))
        assert pol.layout_for(1).node_ids == tuple((b + 1) % 9 for b in range(9))

    def test_no_collisions_with_spare_nodes(self):
        pol = RotatingPlacement(6, 4, 10)
        for s in range(20):
            layout = pol.layout_for(s)
            assert len(set(layout.node_ids)) == 6

    def test_parity_load_balances(self):
        pol = RotatingPlacement(9, 6, 9)
        load = pol.parity_load(9)  # one full rotation
        assert all(v == 3 for v in load.values())  # 3 parity roles each

    def test_rotation_beats_identity_on_max_load(self):
        stripes = 18
        ident = IdentityPlacement(9, 6, 9).parity_load(stripes)
        rot = RotatingPlacement(9, 6, 9).parity_load(stripes)
        assert max(rot.values()) < max(ident.values())


class TestVirtualDiskWithPlacement:
    def test_rotating_disk_roundtrip(self):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(
            cluster, 18, 32, 9, 6, quorum, placement=RotatingPlacement(9, 6, 9)
        )
        disk.format()
        for block in (0, 7, 17):
            assert disk.write(block, bytes([block]) * 16)
        for block in (0, 7, 17):
            assert disk.read(block)[:16] == bytes([block]) * 16

    def test_stripes_use_rotated_layouts(self):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(
            cluster, 18, 32, 9, 6, quorum, placement=RotatingPlacement(9, 6, 9)
        )
        assert disk.stripes[0].layout.node_ids != disk.stripes[1].layout.node_ids

    def test_degraded_reads_still_work_with_rotation(self):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        disk = VirtualDisk(
            cluster, 12, 32, 9, 6, quorum, placement=RotatingPlacement(9, 6, 9)
        )
        disk.format()
        assert disk.write(0, b"payload")
        data_node = disk.stripes[0].layout.node_of_block(0)
        cluster.fail(data_node)
        assert disk.read(0)[:7] == b"payload"


class TestRecoveryTraffic:
    def test_erc_repair_reads_k(self):
        t = repair_traffic_erc(9, 6, blocksize=100)
        assert t["blocks_read"] == 6
        assert t["blocks_written"] == 1
        assert t["bytes_moved"] == 700

    def test_fr_repair_copies_one(self):
        t = repair_traffic_fr(blocksize=100)
        assert t["bytes_moved"] == 200

    def test_amplification(self):
        assert repair_amplification(9, 6) == 6
        assert repair_amplification(15, 8) == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            repair_traffic_erc(5, 6)
        with pytest.raises(ConfigurationError):
            repair_amplification(5, 6)

    def test_node_repair_bill_identity(self):
        pol = IdentityPlacement(9, 6, 9)
        bill = node_repair_bill(pol, 10, failed_node=0)
        assert bill["blocks_held"] == 10
        assert bill["blocks_read"] == 60

    def test_node_repair_bill_untouched_node(self):
        pol = IdentityPlacement(6, 4, 10)  # nodes 6..9 hold nothing
        bill = node_repair_bill(pol, 5, failed_node=9)
        assert bill["blocks_held"] == 0
        assert bill["bytes_moved"] == 0

    def test_rotation_spreads_repair_bills(self):
        stripes = 18
        ident = IdentityPlacement(9, 6, 9)
        rot = RotatingPlacement(9, 6, 9)
        ident_bills = [
            node_repair_bill(ident, stripes, node)["blocks_held"] for node in range(9)
        ]
        rot_bills = [
            node_repair_bill(rot, stripes, node)["blocks_held"] for node in range(9)
        ]
        # identity: every node is in every stripe's layout (n == num_nodes),
        # so bills tie; with spare nodes rotation spreads them evenly.
        pol = RotatingPlacement(6, 4, 12)
        bills = [node_repair_bill(pol, 24, node)["blocks_held"] for node in range(12)]
        assert max(bills) - min(bills) <= 2
        assert sum(rot_bills) == sum(ident_bills)
