"""Negative tests: the verifier must catch broken quorum systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.quorum import QuorumSystem, verify_intersection


class BrokenDisjointWrites(QuorumSystem):
    """Write quorums {0} and {1} never intersect: violates eq. (3)."""

    def __init__(self) -> None:
        self.size = 2

    def is_write_quorum(self, subset):
        return len(self._check_positions(subset)) >= 1

    def is_read_quorum(self, subset):
        return len(self._check_positions(subset)) >= 1

    def find_write_quorum(self, alive):
        alive = self._check_positions(alive)
        return frozenset([min(alive)]) if alive else None

    def find_read_quorum(self, alive):
        return self.find_write_quorum(alive)


class BrokenReadWrite(QuorumSystem):
    """Reads use node 0, writes use node 1: violates eq. (2)."""

    def __init__(self) -> None:
        self.size = 2

    def is_write_quorum(self, subset):
        return 1 in self._check_positions(subset)

    def is_read_quorum(self, subset):
        return 0 in self._check_positions(subset)

    def find_write_quorum(self, alive):
        return frozenset([1]) if 1 in self._check_positions(alive) else None

    def find_read_quorum(self, alive):
        return frozenset([0]) if 0 in self._check_positions(alive) else None


class LyingFinder(QuorumSystem):
    """find_write_quorum returns sets that are not write quorums."""

    def __init__(self) -> None:
        self.size = 3

    def is_write_quorum(self, subset):
        return len(self._check_positions(subset)) == 3

    def is_read_quorum(self, subset):
        return len(self._check_positions(subset)) >= 1

    def find_write_quorum(self, alive):
        alive = self._check_positions(alive)
        return frozenset(list(alive)[:1]) if alive else None

    def find_read_quorum(self, alive):
        alive = self._check_positions(alive)
        return frozenset(list(alive)[:1]) if alive else None


class OutOfAliveFinder(QuorumSystem):
    """Returns quorums containing failed nodes."""

    def __init__(self) -> None:
        self.size = 2

    def is_write_quorum(self, subset):
        return len(self._check_positions(subset)) >= 1

    def is_read_quorum(self, subset):
        return len(self._check_positions(subset)) >= 1

    def find_write_quorum(self, alive):
        return frozenset([0, 1])  # ignores aliveness

    def find_read_quorum(self, alive):
        return frozenset([0, 1])


class TestVerifierCatchesViolations:
    def test_disjoint_writes_rejected(self):
        assert not verify_intersection(BrokenDisjointWrites())

    def test_disjoint_read_write_rejected(self):
        assert not verify_intersection(BrokenReadWrite())

    def test_lying_finder_rejected(self):
        assert not verify_intersection(LyingFinder())

    def test_out_of_alive_finder_rejected(self):
        assert not verify_intersection(OutOfAliveFinder())


class TestEnumerationGuard:
    def test_default_enumeration_caps_size(self):
        class Big(QuorumSystem):
            def __init__(self):
                self.size = 30

            def is_write_quorum(self, subset):
                return True

            def is_read_quorum(self, subset):
                return True

            def find_write_quorum(self, alive):
                return frozenset()

            def find_read_quorum(self, alive):
                return frozenset()

        with pytest.raises(ConfigurationError):
            Big().write_availability(0.5)

    def test_enumeration_values_sane(self):
        class One(QuorumSystem):
            def __init__(self):
                self.size = 1

            def is_write_quorum(self, subset):
                return len(subset) == 1

            def is_read_quorum(self, subset):
                return len(subset) == 1

            def find_write_quorum(self, alive):
                return frozenset(alive) if alive else None

            def find_read_quorum(self, alive):
                return frozenset(alive) if alive else None

        sys_one = One()
        np.testing.assert_allclose(sys_one.write_availability(0.3), 0.3)
        np.testing.assert_allclose(sys_one.read_availability(np.array([0.2, 0.9])), [0.2, 0.9])
