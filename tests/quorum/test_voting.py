"""Tests for the weighted-voting quorum system."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quorum import MajoritySystem, RowaSystem, WeightedVotingSystem, verify_intersection

P = np.linspace(0.05, 0.95, 10)


class TestConstruction:
    def test_safety_conditions_enforced(self):
        # r + w must exceed total.
        with pytest.raises(ConfigurationError):
            WeightedVotingSystem([1, 1, 1], r=1, w=2)
        # 2w must exceed total.
        with pytest.raises(ConfigurationError):
            WeightedVotingSystem([1, 1, 1, 1], r=3, w=2)

    def test_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            WeightedVotingSystem([1, 1, 1], r=0, w=3)
        with pytest.raises(ConfigurationError):
            WeightedVotingSystem([1, 1, 1], r=4, w=3)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedVotingSystem([1, -1, 1], r=1, w=1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedVotingSystem([], r=1, w=1)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedVotingSystem([0, 0], r=1, w=1)


class TestSpecialCases:
    def test_majority_factory_matches_majority_system(self):
        voting = WeightedVotingSystem.majority(5)
        majority = MajoritySystem(5)
        np.testing.assert_allclose(
            voting.write_availability(P), majority.write_availability(P), atol=1e-12
        )
        np.testing.assert_allclose(
            voting.read_availability(P), majority.read_availability(P), atol=1e-12
        )

    def test_rowa_factory_matches_rowa_system(self):
        voting = WeightedVotingSystem.rowa(4)
        rowa = RowaSystem(4)
        np.testing.assert_allclose(
            voting.write_availability(P), rowa.write_availability(P), atol=1e-12
        )
        np.testing.assert_allclose(
            voting.read_availability(P), rowa.read_availability(P), atol=1e-12
        )


class TestPredicatesAndQuorums:
    def test_weighted_quorum_membership(self):
        # Node 0 carries 3 votes of 7 total; w = 4.
        sys = WeightedVotingSystem([3, 1, 1, 1, 1], r=4, w=4)
        assert sys.is_write_quorum({0, 1})  # 4 votes
        assert not sys.is_write_quorum({1, 2, 3})  # 3 votes
        assert sys.is_read_quorum({0, 4})

    def test_zero_weight_node_is_useless(self):
        sys = WeightedVotingSystem([2, 0, 1], r=2, w=2)
        assert not sys.is_write_quorum({1})
        wq = sys.find_write_quorum({0, 1, 2})
        assert 1 not in wq

    def test_find_prefers_heavy_nodes(self):
        sys = WeightedVotingSystem([3, 1, 1, 1, 1], r=4, w=4)
        wq = sys.find_write_quorum(set(range(5)))
        assert 0 in wq
        assert len(wq) == 2

    def test_find_returns_none_when_short(self):
        sys = WeightedVotingSystem([1, 1, 1], r=2, w=2)
        assert sys.find_write_quorum({2}) is None

    def test_intersection_properties(self):
        assert verify_intersection(WeightedVotingSystem([3, 1, 1, 1, 1], r=4, w=4))
        assert verify_intersection(WeightedVotingSystem.majority(6))


class TestAvailabilityDP:
    def test_matches_enumeration_weighted(self):
        sys = WeightedVotingSystem([3, 1, 2, 1], r=4, w=4)
        np.testing.assert_allclose(
            sys.write_availability(P),
            sys._enumerate_availability(P, sys.is_write_quorum),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            sys.read_availability(P),
            sys._enumerate_availability(P, sys.is_read_quorum),
            atol=1e-12,
        )

    def test_scalar_p(self):
        sys = WeightedVotingSystem.majority(5)
        out = sys.write_availability(0.5)
        assert np.ndim(out) == 0
        assert out == pytest.approx(0.5)

    @settings(max_examples=25, deadline=None)
    @given(
        weights=st.lists(st.integers(0, 3), min_size=2, max_size=6).filter(
            lambda ws: sum(ws) >= 2
        ),
        p=st.floats(0.05, 0.95),
    )
    def test_dp_matches_enumeration_property(self, weights, p):
        total = sum(weights)
        w = total // 2 + 1
        r = total - w + 1
        sys = WeightedVotingSystem(weights, r=r, w=w)
        direct = float(sys.write_availability(p))
        enum = float(sys._enumerate_availability(np.asarray(p), sys.is_write_quorum))
        assert direct == pytest.approx(enum, abs=1e-10)
