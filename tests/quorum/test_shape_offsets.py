"""The precomputed level offsets must match the naive per-call re-sums."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quorum import TrapezoidShape


def naive_level_of(shape: TrapezoidShape, position: int) -> int:
    offset = 0
    for l in shape.levels:
        offset += shape.level_size(l)
        if position < offset:
            return l
    raise AssertionError


class TestOffsets:
    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(0, 5), b=st.integers(1, 7), h=st.integers(0, 6))
    def test_level_of_matches_naive(self, a, b, h):
        shape = TrapezoidShape(a, b, h)
        for pos in range(shape.total_nodes):
            assert shape.level_of(pos) == naive_level_of(shape, pos)

    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 5), b=st.integers(1, 7), h=st.integers(0, 6))
    def test_positions_contiguous_partition(self, a, b, h):
        shape = TrapezoidShape(a, b, h)
        seen = []
        for l in shape.levels:
            pos = shape.positions(l)
            assert len(pos) == shape.level_size(l)
            seen.extend(pos)
        assert seen == list(range(shape.total_nodes))

    def test_total_nodes_figure1(self):
        # The paper's running example: (a=2, b=3, h=2) -> 3 + 5 + 7 = 15.
        shape = TrapezoidShape(2, 3, 2)
        assert shape.total_nodes == 15
        assert shape.level_sizes == (3, 5, 7)
        assert shape.level_of(0) == 0
        assert shape.level_of(3) == 1
        assert shape.level_of(14) == 2

    def test_bounds_still_enforced(self):
        shape = TrapezoidShape(1, 2, 2)
        with pytest.raises(ConfigurationError):
            shape.level_of(-1)
        with pytest.raises(ConfigurationError):
            shape.level_of(shape.total_nodes)
        with pytest.raises(ConfigurationError):
            shape.positions(shape.h + 1)

    def test_position_levels_read_only(self):
        shape = TrapezoidShape(1, 3, 2)
        with pytest.raises(ValueError):
            shape._position_levels[0] = 5
