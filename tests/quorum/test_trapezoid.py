"""Tests for the trapezoid quorum geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quorum import (
    TrapezoidQuorum,
    TrapezoidShape,
    TrapezoidSystem,
    default_shape_for_nbnode,
    shapes_for_nbnode,
    verify_intersection,
)


class TestTrapezoidShape:
    def test_paper_fig1(self):
        # Figure 1: Nbnode = 15, s_l = 2l + 3 (a=2, b=3, h=2).
        shape = TrapezoidShape(2, 3, 2)
        assert shape.level_sizes == (3, 5, 7)
        assert shape.total_nodes == 15

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrapezoidShape(-1, 3, 2)
        with pytest.raises(ConfigurationError):
            TrapezoidShape(1, 0, 2)
        with pytest.raises(ConfigurationError):
            TrapezoidShape(1, 1, -1)

    def test_flat_shape(self):
        shape = TrapezoidShape(0, 5, 0)
        assert shape.level_sizes == (5,)
        assert shape.total_nodes == 5

    def test_rectangle_shape(self):
        # a = 0 with h > 0 gives equal-size levels (a "rectangle").
        shape = TrapezoidShape(0, 4, 2)
        assert shape.level_sizes == (4, 4, 4)

    def test_positions_partition_universe(self):
        shape = TrapezoidShape(2, 3, 2)
        seen = []
        for l in shape.levels:
            seen.extend(shape.positions(l))
        assert seen == list(range(15))

    def test_level_of_matches_positions(self):
        shape = TrapezoidShape(1, 2, 3)
        for l in shape.levels:
            for pos in shape.positions(l):
                assert shape.level_of(pos) == l

    def test_level_of_bounds(self):
        shape = TrapezoidShape(1, 2, 1)
        with pytest.raises(ConfigurationError):
            shape.level_of(shape.total_nodes)

    def test_level_size_bounds(self):
        shape = TrapezoidShape(1, 2, 1)
        with pytest.raises(ConfigurationError):
            shape.level_size(2)

    def test_ascii_art_mentions_all_levels(self):
        art = TrapezoidShape(2, 3, 2).ascii_art()
        assert "l=0" in art and "l=2" in art


class TestShapesForNbnode:
    def test_contains_paper_shape(self):
        shapes = shapes_for_nbnode(15)
        assert TrapezoidShape(2, 3, 2) in shapes

    def test_all_shapes_sum_correctly(self):
        for nb in [1, 4, 8, 15, 21]:
            for shape in shapes_for_nbnode(nb):
                assert shape.total_nodes == nb

    def test_flat_always_present(self):
        for nb in [1, 7, 15]:
            assert TrapezoidShape(0, nb, 0) in shapes_for_nbnode(nb)

    def test_invalid_nbnode(self):
        with pytest.raises(ConfigurationError):
            shapes_for_nbnode(0)

    def test_default_shape_is_paper_shape_for_15(self):
        assert default_shape_for_nbnode(15) == TrapezoidShape(2, 3, 2)

    def test_default_shape_small_budget(self):
        shape = default_shape_for_nbnode(3)
        assert shape.total_nodes == 3

    @settings(max_examples=40)
    @given(st.integers(1, 40))
    def test_default_shape_total_matches(self, nb):
        assert default_shape_for_nbnode(nb).total_nodes == nb


class TestTrapezoidQuorum:
    def test_w0_enforced(self):
        shape = TrapezoidShape(2, 3, 2)
        with pytest.raises(ConfigurationError):
            TrapezoidQuorum(shape, (1, 2, 2))  # w_0 must be 2
        q = TrapezoidQuorum(shape, (2, 2, 2))
        assert q.w == (2, 2, 2)

    def test_w_length_checked(self):
        shape = TrapezoidShape(2, 3, 2)
        with pytest.raises(ConfigurationError):
            TrapezoidQuorum(shape, (2, 2))

    def test_w_range_checked(self):
        shape = TrapezoidShape(2, 3, 2)
        with pytest.raises(ConfigurationError):
            TrapezoidQuorum(shape, (2, 0, 2))
        with pytest.raises(ConfigurationError):
            TrapezoidQuorum(shape, (2, 6, 2))  # s_1 = 5

    def test_uniform_matches_eq16(self):
        shape = TrapezoidShape(2, 3, 2)
        q = TrapezoidQuorum.uniform(shape, 4)
        assert q.w == (2, 4, 4)

    def test_uniform_default_w(self):
        shape = TrapezoidShape(2, 3, 2)
        q = TrapezoidQuorum.uniform(shape)
        assert q.w[0] == 2
        assert all(1 <= q.w[l] <= shape.level_size(l) for l in shape.levels)

    def test_uniform_flat_shape(self):
        q = TrapezoidQuorum.uniform(TrapezoidShape(0, 5, 0))
        assert q.w == (3,)

    def test_read_thresholds(self):
        q = TrapezoidQuorum(TrapezoidShape(2, 3, 2), (2, 3, 5))
        # r_l = s_l - w_l + 1 with s = (3, 5, 7)
        assert q.read_thresholds == (2, 3, 3)

    def test_quorum_sizes(self):
        q = TrapezoidQuorum(TrapezoidShape(2, 3, 2), (2, 3, 5))
        assert q.min_write_size == 10  # eq. 6
        assert q.min_read_size == 2

    def test_write_predicate(self):
        q = TrapezoidQuorum(TrapezoidShape(2, 3, 2), (2, 2, 2))
        assert q.write_predicate([2, 2, 2])
        assert q.write_predicate([3, 5, 7])
        assert not q.write_predicate([1, 5, 7])
        assert not q.write_predicate([2, 2, 1])

    def test_read_check_predicate(self):
        q = TrapezoidQuorum(TrapezoidShape(2, 3, 2), (2, 2, 2))
        # r = (2, 4, 6)
        assert q.read_check_predicate([2, 0, 0])
        assert q.read_check_predicate([0, 4, 0])
        assert not q.read_check_predicate([1, 3, 5])

    def test_predicate_length_validation(self):
        q = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 2))
        with pytest.raises(ConfigurationError):
            q.write_predicate([1, 2])
        with pytest.raises(ConfigurationError):
            q.read_check_predicate([1, 2, 3, 4])


class TestTrapezoidSystem:
    @pytest.fixture
    def system(self) -> TrapezoidSystem:
        return TrapezoidSystem(TrapezoidQuorum(TrapezoidShape(2, 3, 2), (2, 2, 2)))

    def test_size(self, system):
        assert system.size == 15

    def test_write_quorum_predicate(self, system):
        # 2 from level 0 (positions 0-2), 2 from level 1 (3-7), 2 from level 2 (8-14)
        assert system.is_write_quorum({0, 1, 3, 4, 8, 9})
        assert not system.is_write_quorum({0, 3, 4, 8, 9})  # level 0 short

    def test_read_quorum_predicate(self, system):
        # r = (2, 4, 6): level 0 with 2 responsive is enough
        assert system.is_read_quorum({0, 2})
        assert system.is_read_quorum({3, 4, 5, 6})
        assert not system.is_read_quorum({0, 3, 4, 8})

    def test_find_write_quorum(self, system):
        alive = set(range(15))
        wq = system.find_write_quorum(alive)
        assert wq is not None and system.is_write_quorum(wq)
        assert len(wq) == system.quorum.min_write_size

    def test_find_write_quorum_failure(self, system):
        # Kill level 0 entirely: no write quorum can exist.
        alive = set(range(3, 15))
        assert system.find_write_quorum(alive) is None

    def test_find_read_quorum_prefers_low_levels(self, system):
        rq = system.find_read_quorum(set(range(15)))
        assert rq is not None
        assert rq <= set(system.shape.positions(0))

    def test_find_read_quorum_higher_level(self, system):
        # Only level 2 has enough alive nodes for its threshold r_2 = 6.
        alive = set(range(8, 14))
        rq = system.find_read_quorum(alive)
        assert rq == frozenset(range(8, 14))

    def test_find_read_quorum_failure(self, system):
        assert system.find_read_quorum({0, 3, 8}) is None

    def test_intersection_properties(self, system):
        assert verify_intersection(system, max_enumeration=2**15 + 1)

    def test_intersection_many_configs(self):
        for shape, w in [
            (TrapezoidShape(2, 3, 2), 1),
            (TrapezoidShape(2, 3, 2), 5),
            (TrapezoidShape(1, 1, 3), 1),
            (TrapezoidShape(0, 7, 0), None),
            (TrapezoidShape(3, 1, 2), 2),
        ]:
            quorum = TrapezoidQuorum.uniform(shape, w)
            system = TrapezoidSystem(quorum)
            assert verify_intersection(system), (shape, w)

    def test_out_of_range_positions_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.is_write_quorum({0, 99})

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        params=st.tuples(st.integers(0, 3), st.integers(1, 5), st.integers(0, 3)),
    )
    def test_two_write_quorums_always_intersect(self, data, params):
        a, b, h = params
        shape = TrapezoidShape(a, b, h)
        quorum = TrapezoidQuorum.uniform(
            shape, data.draw(st.integers(1, shape.level_size(min(1, shape.h)))) if shape.h else None
        )
        system = TrapezoidSystem(quorum)
        n = system.size
        alive1 = {i for i in range(n) if data.draw(st.booleans())}
        alive2 = {i for i in range(n) if data.draw(st.booleans())}
        w1 = system.find_write_quorum(alive1)
        w2 = system.find_write_quorum(alive2)
        if w1 is not None and w2 is not None:
            assert w1 & w2, "two write quorums must share a node (eq. 3)"

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        params=st.tuples(st.integers(0, 3), st.integers(1, 5), st.integers(0, 3)),
    )
    def test_read_write_quorums_always_intersect(self, data, params):
        a, b, h = params
        shape = TrapezoidShape(a, b, h)
        quorum = TrapezoidQuorum.uniform(
            shape, data.draw(st.integers(1, shape.level_size(min(1, shape.h)))) if shape.h else None
        )
        system = TrapezoidSystem(quorum)
        n = system.size
        alive1 = {i for i in range(n) if data.draw(st.booleans())}
        alive2 = {i for i in range(n) if data.draw(st.booleans())}
        wq = system.find_write_quorum(alive1)
        rq = system.find_read_quorum(alive2)
        if wq is not None and rq is not None:
            assert rq & wq, "read and write quorums must share a node (eq. 2)"
