"""Tests for the baseline quorum systems: ROWA, Majority, Grid, Tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quorum import (
    GridSystem,
    MajoritySystem,
    RowaSystem,
    TreeSystem,
    verify_intersection,
)

P_GRID = np.linspace(0.05, 0.95, 10)


class TestMajority:
    def test_threshold(self):
        assert MajoritySystem(5).threshold == 3
        assert MajoritySystem(6).threshold == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MajoritySystem(0)

    def test_predicates(self):
        m = MajoritySystem(5)
        assert m.is_write_quorum({0, 1, 2})
        assert not m.is_write_quorum({0, 1})
        assert m.is_read_quorum({2, 3, 4})

    def test_find_quorum(self):
        m = MajoritySystem(5)
        assert m.find_write_quorum({0, 1, 2, 3}) is not None
        assert m.find_write_quorum({0, 1}) is None

    def test_availability_closed_form_matches_enumeration(self):
        m = MajoritySystem(5)
        closed = m.write_availability(P_GRID)
        exact = m._enumerate_availability(P_GRID, m.is_write_quorum)
        np.testing.assert_allclose(closed, exact, atol=1e-12)

    def test_intersections(self):
        assert verify_intersection(MajoritySystem(5))
        assert verify_intersection(MajoritySystem(6))

    def test_availability_at_half(self):
        # With odd n and p=0.5, majority availability is exactly 0.5.
        m = MajoritySystem(7)
        assert m.write_availability(0.5) == pytest.approx(0.5)


class TestRowa:
    def test_predicates(self):
        r = RowaSystem(4)
        assert r.is_write_quorum({0, 1, 2, 3})
        assert not r.is_write_quorum({0, 1, 2})
        assert r.is_read_quorum({2})
        assert not r.is_read_quorum(set())

    def test_find_quorum(self):
        r = RowaSystem(3)
        assert r.find_write_quorum({0, 1, 2}) == frozenset({0, 1, 2})
        assert r.find_write_quorum({0, 1}) is None
        assert r.find_read_quorum({2, 1}) == frozenset({1})
        assert r.find_read_quorum(set()) is None

    def test_availability_closed_forms(self):
        r = RowaSystem(4)
        np.testing.assert_allclose(r.write_availability(P_GRID), P_GRID**4)
        np.testing.assert_allclose(
            r.read_availability(P_GRID), 1 - (1 - P_GRID) ** 4
        )

    def test_closed_form_matches_enumeration(self):
        r = RowaSystem(4)
        np.testing.assert_allclose(
            r.write_availability(P_GRID),
            r._enumerate_availability(P_GRID, r.is_write_quorum),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            r.read_availability(P_GRID),
            r._enumerate_availability(P_GRID, r.is_read_quorum),
            atol=1e-12,
        )

    def test_intersections(self):
        assert verify_intersection(RowaSystem(4))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RowaSystem(0)


class TestGrid:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GridSystem(0, 3)

    def test_read_quorum_column_cover(self):
        g = GridSystem(3, 3)
        assert g.is_read_quorum({0, 1, 2})  # row 0 covers all columns
        assert not g.is_read_quorum({0, 3, 6})  # one column only

    def test_write_quorum_needs_full_column(self):
        g = GridSystem(3, 3)
        # column 0 = {0, 3, 6}; plus one node in columns 1 and 2
        assert g.is_write_quorum({0, 3, 6, 1, 2})
        assert not g.is_write_quorum({0, 3, 1, 2})  # column 0 incomplete

    def test_find_read_quorum(self):
        g = GridSystem(2, 3)
        rq = g.find_read_quorum(set(range(6)))
        assert rq is not None and g.is_read_quorum(rq)
        assert len(rq) == 3

    def test_find_write_quorum(self):
        g = GridSystem(2, 3)
        wq = g.find_write_quorum(set(range(6)))
        assert wq is not None and g.is_write_quorum(wq)
        assert len(wq) == 2 + 2  # full column + one per other column

    def test_find_write_quorum_no_full_column(self):
        g = GridSystem(2, 2)
        # kill one node per column
        assert g.find_write_quorum({0, 3}) is None

    def test_availability_closed_form_matches_enumeration(self):
        g = GridSystem(2, 3)
        np.testing.assert_allclose(
            g.write_availability(P_GRID),
            g._enumerate_availability(P_GRID, g.is_write_quorum),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            g.read_availability(P_GRID),
            g._enumerate_availability(P_GRID, g.is_read_quorum),
            atol=1e-12,
        )

    def test_intersections(self):
        assert verify_intersection(GridSystem(2, 2))
        assert verify_intersection(GridSystem(3, 2))
        assert verify_intersection(GridSystem(2, 3))


class TestTree:
    def test_size(self):
        assert TreeSystem(0).size == 1
        assert TreeSystem(2).size == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TreeSystem(-1)

    def test_root_path_quorum(self):
        t = TreeSystem(2)
        # root + left child + left-left leaf
        assert t.is_write_quorum({0, 1, 3})

    def test_bypass_failed_root(self):
        t = TreeSystem(2)
        # both children's quorums: {1,3} and {2,5}
        assert t.is_write_quorum({1, 3, 2, 5})
        assert not t.is_write_quorum({1, 3})

    def test_leaves_only_quorum(self):
        t = TreeSystem(2)
        # All leaves form a quorum (bypass everything).
        assert t.is_write_quorum({3, 4, 5, 6})

    def test_find_quorum_prefers_paths(self):
        t = TreeSystem(2)
        q = t.find_write_quorum(set(range(7)))
        assert q == frozenset({0, 1, 3})

    def test_no_quorum_when_leaves_dead(self):
        t = TreeSystem(1)
        # single node alive at root: root needs a child quorum
        assert t.find_write_quorum({0}) is None

    def test_availability_matches_enumeration(self):
        for height in (1, 2):
            t = TreeSystem(height)
            np.testing.assert_allclose(
                t.write_availability(P_GRID),
                t._enumerate_availability(P_GRID, t.is_write_quorum),
                atol=1e-12,
            )

    def test_intersections(self):
        assert verify_intersection(TreeSystem(1))
        assert verify_intersection(TreeSystem(2))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), height=st.integers(1, 3))
    def test_any_two_quorums_intersect(self, data, height):
        t = TreeSystem(height)
        alive1 = {i for i in range(t.size) if data.draw(st.booleans())}
        alive2 = {i for i in range(t.size) if data.draw(st.booleans())}
        q1 = t.find_write_quorum(alive1)
        q2 = t.find_write_quorum(alive2)
        if q1 is not None and q2 is not None:
            assert q1 & q2


class TestCrossSystemMonotonicity:
    @pytest.mark.parametrize(
        "system",
        [MajoritySystem(5), RowaSystem(4), GridSystem(2, 3), TreeSystem(2)],
        ids=["majority", "rowa", "grid", "tree"],
    )
    def test_availability_monotone_in_p(self, system):
        p = np.linspace(0.01, 0.99, 50)
        for fn in (system.write_availability, system.read_availability):
            vals = fn(p)
            assert np.all(np.diff(vals) >= -1e-12)
            assert np.all((vals >= -1e-12) & (vals <= 1 + 1e-12))
