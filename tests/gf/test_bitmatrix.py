"""Tests for the bit-matrix (XOR-schedule) representation of GF(2^w)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf import (
    GF256,
    GF2m,
    bitmatrix_matvec,
    bitmatrix_to_element,
    element_to_bitmatrix,
    expand_matrix,
    xor_count,
)

elem8 = st.integers(0, 255)


class TestElementMatrices:
    def test_zero_is_zero_matrix(self):
        assert not element_to_bitmatrix(GF256, 0).any()

    def test_one_is_identity(self):
        assert np.array_equal(element_to_bitmatrix(GF256, 1), np.eye(8, dtype=np.uint8))

    def test_matrix_action_matches_field(self):
        for a in (2, 3, 0x1D, 0x80, 255):
            m = element_to_bitmatrix(GF256, a)
            for x in (1, 2, 7, 0x53, 0xFF):
                bits_x = np.array([(x >> i) & 1 for i in range(8)], dtype=np.uint8)
                bits_out = (m @ bits_x) % 2
                out = sum(int(b) << i for i, b in enumerate(bits_out))
                assert out == int(GF256.mul(a, x)), (a, x)

    @given(elem8, elem8)
    def test_additive_homomorphism(self, a, b):
        ma = element_to_bitmatrix(GF256, a)
        mb = element_to_bitmatrix(GF256, b)
        assert np.array_equal(element_to_bitmatrix(GF256, a ^ b), ma ^ mb)

    @settings(max_examples=40)
    @given(elem8, elem8)
    def test_multiplicative_homomorphism(self, a, b):
        ma = element_to_bitmatrix(GF256, a)
        mb = element_to_bitmatrix(GF256, b)
        prod = (ma.astype(np.int64) @ mb.astype(np.int64)) % 2
        assert np.array_equal(
            element_to_bitmatrix(GF256, int(GF256.mul(a, b))), prod.astype(np.uint8)
        )

    @given(elem8)
    def test_roundtrip(self, a):
        assert bitmatrix_to_element(GF256, element_to_bitmatrix(GF256, a)) == a

    def test_invalid_matrix_rejected(self):
        bad = np.zeros((8, 8), dtype=np.uint8)
        bad[0, 1] = 1  # column 1 says a*x = 1, column 0 says a = 0
        with pytest.raises(FieldError):
            bitmatrix_to_element(GF256, bad)

    def test_shape_validated(self):
        with pytest.raises(FieldError):
            bitmatrix_to_element(GF256, np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(FieldError):
            element_to_bitmatrix(GF256, 256)

    def test_small_field(self):
        gf = GF2m(4)
        for a in range(16):
            m = element_to_bitmatrix(gf, a)
            assert m.shape == (4, 4)
            assert bitmatrix_to_element(gf, m) == a


class TestExpandedCodec:
    def test_expand_shape(self):
        from repro.erasure import MDSCode

        code = MDSCode(6, 4)
        expanded = expand_matrix(GF256, code.parity_matrix)
        assert expanded.shape == (2 * 8, 4 * 8)

    def test_bitmatrix_encode_matches_table_encode(self):
        from repro.erasure import MDSCode

        for construction in ("vandermonde", "cauchy"):
            code = MDSCode(7, 4, construction=construction)
            rng = np.random.default_rng(0)
            data = rng.integers(0, 256, size=(4, 32), dtype=np.int64).astype(np.uint8)
            via_tables = code.encode_parity(data)
            via_xor = bitmatrix_matvec(GF256, code.parity_matrix, data)
            assert np.array_equal(via_tables, via_xor), construction

    def test_bitmatrix_matvec_identity(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=(3, 16), dtype=np.int64).astype(np.uint8)
        eye = np.eye(3, dtype=np.uint8)
        assert np.array_equal(bitmatrix_matvec(GF256, eye, data), data)

    def test_shape_mismatch(self):
        with pytest.raises(FieldError):
            bitmatrix_matvec(GF256, np.eye(3, dtype=np.uint8), np.zeros((4, 8), dtype=np.uint8))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), width=st.sampled_from([4, 8]))
    def test_encode_agreement_property(self, seed, width):
        from repro.erasure import MDSCode

        gf = GF2m(width)
        code = MDSCode(6, 3, field=gf)
        rng = np.random.default_rng(seed)
        data = gf.random_elements(rng, (3, 8))
        assert np.array_equal(
            code.encode_parity(data), bitmatrix_matvec(gf, code.parity_matrix, data)
        )


class TestXorCount:
    def test_identity_costs_nothing(self):
        assert xor_count(GF256, np.eye(4, dtype=np.uint8)) == 0

    def test_zero_costs_nothing(self):
        assert xor_count(GF256, np.zeros((2, 3), dtype=np.uint8)) == 0

    def test_positive_for_real_parity(self):
        from repro.erasure import MDSCode

        code = MDSCode(6, 4)
        assert xor_count(GF256, code.parity_matrix) > 0

    def test_cauchy_vs_vandermonde_cost_comparison(self):
        """The XOR-cost metric actually differentiates constructions."""
        from repro.erasure import MDSCode

        cv = xor_count(GF256, MDSCode(9, 6, construction="vandermonde").parity_matrix)
        cc = xor_count(GF256, MDSCode(9, 6, construction="cauchy").parity_matrix)
        assert cv > 0 and cc > 0
        assert cv != cc  # distinct schedules (which is cheaper is config-specific)
