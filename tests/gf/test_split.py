"""Tests for split-table (nibble) multiplication in GF(2^8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf import GF256, GF2m, SplitTableMultiplier, split_tables


class TestSplitTables:
    def test_lo_table_is_products(self):
        lo, _ = split_tables(GF256, 7)
        for x in range(16):
            assert int(lo[x]) == int(GF256.mul(7, x))

    def test_hi_table_is_shifted_products(self):
        _, hi = split_tables(GF256, 7)
        for x in range(16):
            assert int(hi[x]) == int(GF256.mul(7, x << 4))

    def test_requires_width_8(self):
        with pytest.raises(FieldError):
            split_tables(GF2m(4), 3)
        with pytest.raises(FieldError):
            SplitTableMultiplier(GF2m(16))

    def test_scalar_range_checked(self):
        with pytest.raises(FieldError):
            split_tables(GF256, 256)


class TestMultiplier:
    @pytest.fixture
    def mult(self) -> SplitTableMultiplier:
        return SplitTableMultiplier(GF256)

    def test_matches_full_table_path(self, mult):
        rng = np.random.default_rng(0)
        vec = GF256.random_elements(rng, 512)
        for c in (0, 1, 2, 0x1D, 0x8E, 255):
            assert np.array_equal(mult.scalar_mul(c, vec), GF256.scalar_mul(c, vec))

    def test_zero_scalar(self, mult):
        vec = np.arange(16, dtype=np.uint8)
        assert not mult.scalar_mul(0, vec).any()

    def test_one_copies(self, mult):
        vec = np.arange(16, dtype=np.uint8)
        out = mult.scalar_mul(1, vec)
        assert np.array_equal(out, vec)
        out[0] = 99
        assert vec[0] == 0

    def test_addmul_into(self, mult):
        rng = np.random.default_rng(1)
        dst = GF256.random_elements(rng, 64)
        src = GF256.random_elements(rng, 64)
        expected = dst ^ GF256.scalar_mul(9, src)
        mult.addmul_into(dst, 9, src)
        assert np.array_equal(dst, expected)

    def test_addmul_zero_noop(self, mult):
        dst = np.arange(8, dtype=np.uint8)
        before = dst.copy()
        mult.addmul_into(dst, 0, np.ones(8, dtype=np.uint8))
        assert np.array_equal(dst, before)

    def test_table_cache_grows_and_reports_bytes(self, mult):
        vec = np.arange(32, dtype=np.uint8)
        assert mult.table_bytes() == 0
        mult.scalar_mul(5, vec)
        mult.scalar_mul(5, vec)  # cached
        mult.scalar_mul(9, vec)
        assert mult.table_bytes() == 64  # two scalars x 32 bytes

    @settings(max_examples=50)
    @given(c=st.integers(0, 255), seed=st.integers(0, 2**31 - 1))
    def test_agreement_property(self, c, seed):
        mult = SplitTableMultiplier(GF256)
        rng = np.random.default_rng(seed)
        vec = GF256.random_elements(rng, 33)
        assert np.array_equal(mult.scalar_mul(c, vec), GF256.scalar_mul(c, vec))

    def test_encode_parity_via_split_tables(self):
        """Third full-encode implementation agreeing with the other two."""
        from repro.erasure import MDSCode

        code = MDSCode(9, 6)
        mult = SplitTableMultiplier(GF256)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, size=(6, 64), dtype=np.int64).astype(np.uint8)
        parity = np.zeros((3, 64), dtype=np.uint8)
        for jj in range(3):
            for i in range(6):
                mult.addmul_into(parity[jj], code.coefficient(6 + jj, i), data[i])
        assert np.array_equal(parity, code.encode_parity(data))
