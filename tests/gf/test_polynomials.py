"""Unit tests for binary-polynomial arithmetic and primitivity testing."""

from __future__ import annotations

import pytest

from repro.errors import FieldError
from repro.gf.polynomials import (
    SEED_PRIMITIVE_POLYS,
    default_primitive_poly,
    find_primitive_poly,
    is_irreducible,
    is_primitive,
    poly_degree,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_mulmod,
    poly_powmod,
)


class TestPolyArithmetic:
    def test_degree_zero_poly(self):
        assert poly_degree(0) == -1

    def test_degree_constant(self):
        assert poly_degree(1) == 0

    def test_degree_x4(self):
        assert poly_degree(0x13) == 4

    def test_mul_by_zero(self):
        assert poly_mul(0x13, 0) == 0

    def test_mul_by_one(self):
        assert poly_mul(0x13, 1) == 0x13

    def test_mul_x_times_x(self):
        # x * x = x^2
        assert poly_mul(0b10, 0b10) == 0b100

    def test_mul_is_carryless(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2) (cross terms cancel)
        assert poly_mul(0b11, 0b11) == 0b101

    def test_mul_commutative(self):
        assert poly_mul(0b1011, 0b110) == poly_mul(0b110, 0b1011)

    def test_mod_smaller_is_identity(self):
        assert poly_mod(0b101, 0b10011) == 0b101

    def test_mod_self_is_zero(self):
        assert poly_mod(0x13, 0x13) == 0

    def test_mod_zero_modulus_raises(self):
        with pytest.raises(FieldError):
            poly_mod(0b101, 0)

    def test_mulmod_reduces(self):
        m = 0x13  # x^4 + x + 1
        # x^3 * x = x^4 = x + 1 (mod m)
        assert poly_mulmod(0b1000, 0b10, m) == 0b11

    def test_powmod_identity(self):
        assert poly_powmod(0b10, 0, 0x13) == 1

    def test_powmod_order_of_generator(self):
        # In GF(2^4) built on a primitive polynomial, x has order 15.
        assert poly_powmod(0b10, 15, 0x13) == 1
        assert poly_powmod(0b10, 5, 0x13) != 1
        assert poly_powmod(0b10, 3, 0x13) != 1

    def test_gcd_with_zero(self):
        assert poly_gcd(0x13, 0) == 0x13

    def test_gcd_coprime(self):
        # x and x + 1 are coprime.
        assert poly_gcd(0b10, 0b11) == 1

    def test_gcd_common_factor(self):
        # x^2 + x = x(x+1); gcd with x is x.
        assert poly_gcd(0b110, 0b10) == 0b10


class TestIrreducibility:
    def test_x2_x_1_is_irreducible(self):
        assert is_irreducible(0b111)

    def test_x2_1_is_reducible(self):
        # x^2 + 1 = (x + 1)^2 over GF(2).
        assert not is_irreducible(0b101)

    def test_degree_one_is_irreducible(self):
        assert is_irreducible(0b10)  # x
        assert is_irreducible(0b11)  # x + 1

    def test_constant_not_irreducible(self):
        assert not is_irreducible(1)
        assert not is_irreducible(0)

    def test_x4_x_1_is_irreducible(self):
        assert is_irreducible(0x13)

    def test_x4_x2_1_is_reducible(self):
        # x^4 + x^2 + 1 = (x^2 + x + 1)^2.
        assert not is_irreducible(0b10101)

    def test_count_of_irreducible_quartics(self):
        # Number of monic irreducible polynomials of degree 4 over GF(2) is 3.
        count = sum(
            1 for c in range(16) if is_irreducible((1 << 4) | c)
        )
        assert count == 3


class TestPrimitivity:
    def test_all_seed_polys_are_primitive(self):
        for width, poly in SEED_PRIMITIVE_POLYS.items():
            assert poly_degree(poly) == width
            assert is_primitive(poly), f"seed poly for width {width}"

    def test_irreducible_but_not_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible; x has order 5, not 15.
        f = 0b11111
        assert is_irreducible(f)
        assert not is_primitive(f)

    def test_reducible_not_primitive(self):
        assert not is_primitive(0b101)

    @pytest.mark.parametrize("width", range(2, 17))
    def test_find_primitive_poly_all_widths(self, width):
        poly = find_primitive_poly(width)
        assert poly_degree(poly) == width
        assert is_primitive(poly)

    def test_find_primitive_poly_bad_width(self):
        with pytest.raises(FieldError):
            find_primitive_poly(1)
        with pytest.raises(FieldError):
            find_primitive_poly(17)

    @pytest.mark.parametrize("width", range(2, 17))
    def test_default_primitive_poly(self, width):
        poly = default_primitive_poly(width)
        assert poly_degree(poly) == width
        assert is_primitive(poly)

    def test_default_uses_seed_values(self):
        assert default_primitive_poly(8) == 0x11D
        assert default_primitive_poly(16) == 0x1100B
