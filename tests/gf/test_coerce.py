"""Regression tests for GF2m._coerce (single-pass validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FieldError
from repro.gf import GF256, GF2m


class TestCoerce:
    def test_out_of_range_rejected(self):
        gf = GF2m(4)
        with pytest.raises(FieldError):
            gf.add([0, 16], [1, 2])  # 16 >= 2^4
        with pytest.raises(FieldError):
            gf.mul(np.array([300], dtype=np.int64), np.array([1], dtype=np.int64))
        with pytest.raises(FieldError):
            gf.add(np.array([-1]), np.array([0]))

    def test_in_dtype_array_passes_through_without_copy(self):
        arr = np.arange(8, dtype=np.uint8)
        out = GF256._coerce(arr)
        assert out is arr  # no copy, no validation pass for field-dtype input

    def test_python_ints_and_lists_coerced(self):
        assert int(GF256.add(250, 5)) == 250 ^ 5
        out = GF256.add([1, 2], [3, 4])
        assert out.dtype == np.uint8
        assert out.tolist() == [1 ^ 3, 2 ^ 4]

    def test_boundary_values(self):
        gf = GF2m(4)
        assert int(gf.add(15, 15)) == 0  # top element of the field is fine
        with pytest.raises(FieldError):
            gf.add(16, 0)

    def test_wide_field_range(self):
        gf = GF2m(12)
        assert int(gf.add(4095, 0)) == 4095
        with pytest.raises(FieldError):
            gf.add(4096, 0)
