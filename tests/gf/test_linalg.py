"""Tests for dense linear algebra over GF(2^w)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, SingularMatrixError
from repro.gf import (
    GF256,
    GF2m,
    cauchy,
    identity,
    inverse,
    is_invertible,
    matmul,
    matvec,
    rank,
    solve,
    vandermonde,
)


@pytest.fixture
def gf() -> GF2m:
    return GF256


def random_invertible(gf: GF2m, n: int, rng: np.random.Generator) -> np.ndarray:
    while True:
        a = gf.random_elements(rng, (n, n))
        if is_invertible(gf, a):
            return a


class TestMatmul:
    def test_identity_neutral(self, gf):
        rng = np.random.default_rng(0)
        a = gf.random_elements(rng, (4, 4))
        eye = identity(gf, 4)
        assert np.array_equal(matmul(gf, a, eye), a)
        assert np.array_equal(matmul(gf, eye, a), a)

    def test_shapes(self, gf):
        rng = np.random.default_rng(1)
        a = gf.random_elements(rng, (2, 5))
        b = gf.random_elements(rng, (5, 3))
        assert matmul(gf, a, b).shape == (2, 3)

    def test_shape_mismatch(self, gf):
        with pytest.raises(FieldError):
            matmul(gf, np.zeros((2, 3), dtype=gf.dtype), np.zeros((2, 3), dtype=gf.dtype))

    def test_non_2d_rejected(self, gf):
        with pytest.raises(FieldError):
            matmul(gf, np.zeros(3, dtype=gf.dtype), np.zeros((3, 3), dtype=gf.dtype))

    def test_matches_scalar_definition(self, gf):
        rng = np.random.default_rng(2)
        a = gf.random_elements(rng, (3, 4))
        b = gf.random_elements(rng, (4, 2))
        c = matmul(gf, a, b)
        for i in range(3):
            for j in range(2):
                acc = 0
                for t in range(4):
                    acc ^= int(gf.mul(a[i, t], b[t, j]))
                assert int(c[i, j]) == acc

    def test_associative(self, gf):
        rng = np.random.default_rng(3)
        a = gf.random_elements(rng, (3, 3))
        b = gf.random_elements(rng, (3, 3))
        c = gf.random_elements(rng, (3, 3))
        assert np.array_equal(
            matmul(gf, matmul(gf, a, b), c), matmul(gf, a, matmul(gf, b, c))
        )

    def test_matvec_matches_matmul(self, gf):
        rng = np.random.default_rng(4)
        a = gf.random_elements(rng, (5, 3))
        x = gf.random_elements(rng, 3)
        assert np.array_equal(matvec(gf, a, x), matmul(gf, a, x[:, None])[:, 0])

    def test_matvec_shape_mismatch(self, gf):
        with pytest.raises(FieldError):
            matvec(gf, np.zeros((2, 3), dtype=gf.dtype), np.zeros(2, dtype=gf.dtype))


class TestInverse:
    def test_identity_inverse(self, gf):
        eye = identity(gf, 5)
        assert np.array_equal(inverse(gf, eye), eye)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_inverse_roundtrip(self, gf, n):
        rng = np.random.default_rng(n)
        a = random_invertible(gf, n, rng)
        a_inv = inverse(gf, a)
        assert np.array_equal(matmul(gf, a, a_inv), identity(gf, n))
        assert np.array_equal(matmul(gf, a_inv, a), identity(gf, n))

    def test_singular_raises(self, gf):
        a = np.zeros((3, 3), dtype=gf.dtype)
        a[0, 0] = 1
        with pytest.raises(SingularMatrixError):
            inverse(gf, a)

    def test_duplicate_rows_singular(self, gf):
        rng = np.random.default_rng(5)
        a = gf.random_elements(rng, (3, 3))
        a[2] = a[0]
        with pytest.raises(SingularMatrixError):
            inverse(gf, a)

    def test_non_square_raises(self, gf):
        with pytest.raises(FieldError):
            inverse(gf, np.zeros((2, 3), dtype=gf.dtype))

    def test_input_not_mutated(self, gf):
        rng = np.random.default_rng(6)
        a = random_invertible(gf, 4, rng)
        before = a.copy()
        inverse(gf, a)
        assert np.array_equal(a, before)


class TestRankSolve:
    def test_rank_identity(self, gf):
        assert rank(gf, identity(gf, 6)) == 6

    def test_rank_zero_matrix(self, gf):
        assert rank(gf, np.zeros((3, 4), dtype=gf.dtype)) == 0

    def test_rank_deficient(self, gf):
        rng = np.random.default_rng(7)
        a = gf.random_elements(rng, (4, 4))
        a[3] = np.bitwise_xor(a[0], a[1])  # dependent row
        assert rank(gf, a) < 4

    def test_rank_rectangular(self, gf):
        v = vandermonde(gf, 6, 3)
        assert rank(gf, v) == 3

    def test_is_invertible_true(self, gf):
        rng = np.random.default_rng(8)
        assert is_invertible(gf, random_invertible(gf, 4, rng))

    def test_is_invertible_non_square(self, gf):
        assert not is_invertible(gf, np.zeros((2, 3), dtype=gf.dtype))

    def test_solve_vector(self, gf):
        rng = np.random.default_rng(9)
        a = random_invertible(gf, 5, rng)
        x = gf.random_elements(rng, 5)
        b = matvec(gf, a, x)
        assert np.array_equal(solve(gf, a, b), x)

    def test_solve_multi_rhs(self, gf):
        rng = np.random.default_rng(10)
        a = random_invertible(gf, 4, rng)
        x = gf.random_elements(rng, (4, 7))
        b = matmul(gf, a, x)
        assert np.array_equal(solve(gf, a, b), x)


class TestStructuredMatrices:
    def test_vandermonde_shape_and_first_column(self, gf):
        v = vandermonde(gf, 5, 3)
        assert v.shape == (5, 3)
        assert np.all(v[:, 0] == 1)

    def test_vandermonde_powers(self, gf):
        pts = np.array([2, 3, 5], dtype=gf.dtype)
        v = vandermonde(gf, 3, 4, points=pts)
        for i, p in enumerate(pts):
            for j in range(4):
                assert int(v[i, j]) == int(gf.pow(int(p), j))

    def test_vandermonde_any_k_rows_invertible(self, gf):
        from itertools import combinations

        v = vandermonde(gf, 7, 3)
        for rows in combinations(range(7), 3):
            assert is_invertible(gf, v[list(rows)])

    def test_vandermonde_distinct_points_required(self, gf):
        with pytest.raises(FieldError):
            vandermonde(gf, 3, 2, points=np.array([1, 1, 2], dtype=gf.dtype))

    def test_vandermonde_too_many_rows(self):
        gf4 = GF2m(4)
        with pytest.raises(FieldError):
            vandermonde(gf4, 17, 3)

    def test_cauchy_every_submatrix_invertible(self, gf):
        from itertools import combinations

        xs = np.arange(4, 8, dtype=gf.dtype)
        ys = np.arange(0, 4, dtype=gf.dtype)
        c = cauchy(gf, xs, ys)
        assert c.shape == (4, 4)
        for size in (1, 2, 3, 4):
            for rows in combinations(range(4), size):
                for cols in combinations(range(4), size):
                    sub = c[np.ix_(rows, cols)]
                    assert is_invertible(gf, sub)

    def test_cauchy_disjointness_required(self, gf):
        with pytest.raises(FieldError):
            cauchy(gf, [1, 2], [2, 3])

    def test_cauchy_distinct_required(self, gf):
        with pytest.raises(FieldError):
            cauchy(gf, [1, 1], [2, 3])


class TestLinalgProperties:
    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
    def test_inverse_roundtrip_property(self, n, seed):
        gf = GF256
        rng = np.random.default_rng(seed)
        a = random_invertible(gf, n, rng)
        assert np.array_equal(matmul(gf, a, inverse(gf, a)), identity(gf, n))

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_rank_bounded(self, m, n, seed):
        gf = GF256
        rng = np.random.default_rng(seed)
        a = gf.random_elements(rng, (m, n))
        r = rank(gf, a)
        assert 0 <= r <= min(m, n)

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
    def test_product_rank_bound(self, n, seed):
        gf = GF256
        rng = np.random.default_rng(seed)
        a = gf.random_elements(rng, (n, n))
        b = gf.random_elements(rng, (n, n))
        assert rank(gf, matmul(gf, a, b)) <= min(rank(gf, a), rank(gf, b))
