"""Unit and property tests for GF(2^w) elementwise arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf import GF256, GF2m

WIDTHS = [2, 3, 4, 8, 16]


@pytest.fixture(params=WIDTHS, ids=[f"w{w}" for w in WIDTHS])
def field(request) -> GF2m:
    return GF2m(request.param)


class TestConstruction:
    def test_default_is_gf256(self):
        gf = GF2m()
        assert gf.width == 8
        assert gf.order == 256
        assert gf.poly == 0x11D

    def test_shared_instance(self):
        assert GF256 == GF2m(8)

    def test_eq_and_hash(self):
        assert GF2m(4) == GF2m(4)
        assert GF2m(4) != GF2m(8)
        assert hash(GF2m(4)) == hash(GF2m(4))

    def test_bad_width(self):
        with pytest.raises(FieldError):
            GF2m(1)
        with pytest.raises(FieldError):
            GF2m(17)

    def test_non_primitive_poly_rejected(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive.
        with pytest.raises(FieldError):
            GF2m(4, poly=0b11111)

    def test_reducible_poly_rejected(self):
        with pytest.raises(FieldError):
            GF2m(4, poly=0b10101)

    def test_wrong_degree_poly_rejected(self):
        with pytest.raises(FieldError):
            GF2m(8, poly=0x13)

    def test_dtype_choice(self):
        assert GF2m(8).dtype == np.uint8
        assert GF2m(16).dtype == np.uint16
        assert GF2m(4).dtype == np.uint8

    def test_elements(self, field):
        e = field.elements()
        assert e.shape == (field.order,)
        assert e[0] == 0 and e[-1] == field.order - 1


class TestScalarOps:
    def test_add_is_xor(self, field):
        assert int(field.add(3, 1)) == 2

    def test_sub_equals_add(self, field):
        assert int(field.sub(3, 1)) == int(field.add(3, 1))

    def test_mul_zero(self, field):
        assert int(field.mul(0, 5 % field.order)) == 0
        assert int(field.mul(5 % field.order, 0)) == 0

    def test_mul_one(self, field):
        for a in [1, 2, field.order - 1]:
            assert int(field.mul(1, a)) == a

    def test_gf256_known_products(self):
        # Classic AES-adjacent sanity values for poly 0x11D.
        gf = GF256
        assert int(gf.mul(2, 2)) == 4
        assert int(gf.mul(0x80, 2)) == 0x1D  # wraps through the polynomial
        assert int(gf.mul(3, 7)) == 9  # (x+1)(x^2+x+1) = x^3+1

    def test_inv_of_one(self, field):
        assert int(field.inv(1)) == 1

    def test_inv_zero_raises(self, field):
        with pytest.raises(FieldError):
            field.inv(0)

    def test_div_by_zero_raises(self, field):
        with pytest.raises(FieldError):
            field.div(1, 0)

    def test_div_zero_numerator(self, field):
        assert int(field.div(0, 3)) == 0

    def test_pow_zero_exponent(self, field):
        assert int(field.pow(3, 0)) == 1
        assert int(field.pow(0, 0)) == 1  # convention

    def test_pow_matches_repeated_mul(self, field):
        a = 3
        acc = 1
        for e in range(1, 8):
            acc = int(field.mul(acc, a))
            assert int(field.pow(a, e)) == acc

    def test_pow_negative_raises(self, field):
        with pytest.raises(FieldError):
            field.pow(2, -1)

    def test_out_of_range_rejected(self, field):
        with pytest.raises(FieldError):
            field.mul(field.order, 1)
        with pytest.raises(FieldError):
            field.mul(-1, 1)


class TestFieldAxiomsExhaustive:
    """Exhaustive verification on small fields: GF(2^2)..GF(2^4)."""

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplication_group(self, width):
        gf = GF2m(width)
        elems = list(range(1, gf.order))
        # Closure + inverse + associativity on the full multiplication table.
        for a in elems:
            inv_a = int(gf.inv(a))
            assert int(gf.mul(a, inv_a)) == 1
            for b in elems:
                ab = int(gf.mul(a, b))
                assert 1 <= ab < gf.order
                for c in elems[:5]:
                    assert int(gf.mul(ab, c)) == int(gf.mul(a, gf.mul(b, c)))

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_distributivity_exhaustive(self, width):
        gf = GF2m(width)
        e = gf.elements()
        a = e[:, None, None]
        b = e[None, :, None]
        c = e[None, None, :]
        lhs = gf.mul(a, np.bitwise_xor(b, c))
        rhs = np.bitwise_xor(gf.mul(a, b), gf.mul(a, c))
        assert np.array_equal(lhs, rhs)

    @pytest.mark.parametrize("width", [2, 3, 4, 8])
    def test_every_nonzero_element_is_generator_power(self, width):
        gf = GF2m(width)
        powers = {1}
        x = 1
        for _ in range(gf.q1 - 1):
            x = int(gf.mul(x, gf.generator))
            powers.add(x)
        assert powers == set(range(1, gf.order))


class TestVectorizedOps:
    def test_mul_broadcasts(self, field):
        a = field.elements()[: min(field.order, 64)]
        out = field.mul(a[:, None], a[None, :])
        assert out.shape == (a.size, a.size)
        # spot-check against scalar path
        assert int(out[1, 2]) == int(field.mul(a[1], a[2]))

    def test_mul_matches_scalar_loop(self, field):
        rng = np.random.default_rng(7)
        a = field.random_elements(rng, 100)
        b = field.random_elements(rng, 100)
        vec = field.mul(a, b)
        for i in range(100):
            assert int(vec[i]) == int(field.mul(int(a[i]), int(b[i])))

    def test_inv_vectorized(self, field):
        a = np.arange(1, field.order, dtype=field.dtype)
        inv = field.inv(a)
        assert np.all(field.mul(a, inv) == 1)

    def test_div_vectorized_matches_mul_inv(self, field):
        rng = np.random.default_rng(8)
        a = field.random_elements(rng, 50)
        b = field.random_elements(rng, 50, nonzero=True)
        assert np.array_equal(field.div(a, b), field.mul(a, field.inv(b)))

    def test_scalar_mul_zero_scalar(self, field):
        vec = field.elements()[:8]
        assert np.all(field.scalar_mul(0, vec) == 0)

    def test_scalar_mul_one_copies(self, field):
        vec = field.elements()[:8]
        out = field.scalar_mul(1, vec)
        assert np.array_equal(out, vec)
        out[0] = 1  # must not alias the input
        assert vec[0] == 0

    def test_scalar_mul_matches_mul(self, field):
        rng = np.random.default_rng(9)
        vec = field.random_elements(rng, 257 % field.order + 32)
        for c in [2, 3, field.order - 1]:
            assert np.array_equal(
                field.scalar_mul(c, vec), field.mul(np.full_like(vec, c), vec)
            )

    def test_scalar_mul_out_of_range(self, field):
        with pytest.raises(FieldError):
            field.scalar_mul(field.order, field.elements()[:4])

    def test_addmul_into(self, field):
        rng = np.random.default_rng(10)
        dst = field.random_elements(rng, 64)
        src = field.random_elements(rng, 64)
        expect = np.bitwise_xor(dst, field.scalar_mul(3, src))
        field.addmul_into(dst, 3, src)
        assert np.array_equal(dst, expect)

    def test_addmul_into_zero_scalar_is_noop(self, field):
        rng = np.random.default_rng(11)
        dst = field.random_elements(rng, 16)
        before = dst.copy()
        field.addmul_into(dst, 0, field.random_elements(rng, 16))
        assert np.array_equal(dst, before)

    def test_addmul_requires_field_dtype(self, field):
        dst = np.zeros(4, dtype=np.int64)
        with pytest.raises(FieldError):
            field.addmul_into(dst, 1, np.zeros(4, dtype=field.dtype))

    def test_dot_matches_manual(self, field):
        rng = np.random.default_rng(12)
        coeffs = field.random_elements(rng, 4)
        vectors = field.random_elements(rng, (4, 32))
        out = field.dot(coeffs, vectors)
        manual = np.zeros(32, dtype=field.dtype)
        for i in range(4):
            manual ^= field.scalar_mul(int(coeffs[i]), vectors[i])
        assert np.array_equal(out, manual)

    def test_dot_shape_validation(self, field):
        with pytest.raises(FieldError):
            field.dot(field.elements()[:3], field.random_elements(
                np.random.default_rng(0), (4, 8)))

    def test_outer(self, field):
        a = field.elements()[1:3]
        b = field.elements()[1:4]
        out = field.outer(a, b)
        assert out.shape == (a.size, b.size)
        assert int(out[0, 0]) == int(field.mul(a[0], b[0]))


# --------------------------------------------------------------------- #
# hypothesis property tests
# --------------------------------------------------------------------- #

elem8 = st.integers(min_value=0, max_value=255)
nz8 = st.integers(min_value=1, max_value=255)


class TestGF256Properties:
    @given(elem8, elem8, elem8)
    def test_mul_associative(self, a, b, c):
        gf = GF256
        assert int(gf.mul(gf.mul(a, b), c)) == int(gf.mul(a, gf.mul(b, c)))

    @given(elem8, elem8)
    def test_mul_commutative(self, a, b):
        assert int(GF256.mul(a, b)) == int(GF256.mul(b, a))

    @given(elem8, elem8, elem8)
    def test_distributive(self, a, b, c):
        gf = GF256
        assert int(gf.mul(a, b ^ c)) == int(gf.mul(a, b)) ^ int(gf.mul(a, c))

    @given(nz8)
    def test_inverse_roundtrip(self, a):
        assert int(GF256.mul(a, GF256.inv(a))) == 1

    @given(nz8, elem8)
    def test_div_mul_roundtrip(self, b, a):
        assert int(GF256.mul(GF256.div(a, b), b)) == a

    @given(elem8, st.integers(min_value=0, max_value=600))
    def test_pow_additive_in_exponent(self, a, e):
        gf = GF256
        assert int(gf.mul(gf.pow(a, e), gf.pow(a, 3))) == int(gf.pow(a, e + 3))

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=16), elem8, elem8)
    def test_axioms_hold_across_widths(self, width, a, b):
        gf = GF2m(width)
        a %= gf.order
        b %= gf.order
        assert int(gf.mul(a, b)) == int(gf.mul(b, a))
        if a:
            assert int(gf.mul(a, gf.inv(a))) == 1
