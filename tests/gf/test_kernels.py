"""Property tests: batched kernels are bit-identical to the references."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf import (
    GF256,
    GF2m,
    gf_matmul,
    gf_matvec,
    gf_scaled_rows,
    matmul,
    matmul_reference,
    matvec,
    matvec_reference,
    xor_blocks,
    xor_into,
)


class TestGfMatmulIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.sampled_from([2, 3, 4, 8, 9, 12, 16]),
        m=st.integers(1, 6),
        t=st.integers(1, 6),
        cols=st.integers(1, 80),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_matches_reference_all_widths(self, width, m, t, cols, seed):
        gf = GF2m(width)
        rng = np.random.default_rng(seed)
        a = gf.random_elements(rng, (m, t))
        b = gf.random_elements(rng, (t, cols))
        assert np.array_equal(gf_matmul(gf, a, b), matmul_reference(gf, a, b))

    @settings(max_examples=30, deadline=None)
    @given(
        width=st.sampled_from([4, 8, 12, 16]),
        m=st.integers(1, 5),
        t=st.integers(1, 5),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_matvec_matches_reference(self, width, m, t, seed):
        gf = GF2m(width)
        rng = np.random.default_rng(seed)
        a = gf.random_elements(rng, (m, t))
        x = gf.random_elements(rng, t)
        assert np.array_equal(gf_matvec(gf, a, x), matvec_reference(gf, a, x))

    def test_zero_operands(self):
        gf = GF256
        a = np.zeros((3, 4), dtype=np.uint8)
        b = np.zeros((4, 7), dtype=np.uint8)
        assert not gf_matmul(gf, a, b).any()

    def test_sparse_rows_wide_field(self):
        # w > 8 fallback: zero rows/columns exercise the masking logic.
        gf = GF2m(12)
        rng = np.random.default_rng(0)
        a = gf.random_elements(rng, (4, 5))
        a[1] = 0
        a[:, 2] = 0
        b = gf.random_elements(rng, (5, 9))
        b[3] = 0
        assert np.array_equal(gf_matmul(gf, a, b), matmul_reference(gf, a, b))

    def test_linalg_matmul_dispatches_to_kernel(self):
        gf = GF256
        rng = np.random.default_rng(1)
        a = gf.random_elements(rng, (3, 3))
        b = gf.random_elements(rng, (3, 10))
        assert np.array_equal(matmul(gf, a, b), gf_matmul(gf, a, b))
        x = gf.random_elements(rng, 3)
        assert np.array_equal(matvec(gf, a, x), gf_matvec(gf, a, x))

    def test_shape_mismatch(self):
        with pytest.raises(FieldError):
            gf_matmul(GF256, np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(FieldError):
            gf_matvec(GF256, np.zeros((2, 3), dtype=np.uint8), np.zeros(2, dtype=np.uint8))
        with pytest.raises(FieldError):
            gf_matmul(GF256, np.zeros(3, dtype=np.uint8), np.zeros((3, 3), dtype=np.uint8))


class TestScaledRows:
    @settings(max_examples=30, deadline=None)
    @given(
        width=st.sampled_from([4, 8, 16]),
        m=st.integers(1, 6),
        length=st.integers(1, 50),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_matches_elementwise_mul(self, width, m, length, seed):
        gf = GF2m(width)
        rng = np.random.default_rng(seed)
        coeffs = gf.random_elements(rng, m)
        vec = gf.random_elements(rng, length)
        expect = gf.mul(coeffs[:, None], vec[None, :])
        assert np.array_equal(gf_scaled_rows(gf, coeffs, vec), expect)

    def test_rejects_matrices(self):
        with pytest.raises(FieldError):
            gf_scaled_rows(GF256, np.zeros((2, 2), dtype=np.uint8), np.zeros(4, dtype=np.uint8))


class TestXorFolds:
    @pytest.mark.parametrize("length", [1, 7, 8, 9, 16, 63, 64, 65, 1024])
    def test_xor_into_matches_plain_xor(self, length):
        rng = np.random.default_rng(length)
        dst = rng.integers(0, 256, length, dtype=np.int64).astype(np.uint8)
        src = rng.integers(0, 256, length, dtype=np.int64).astype(np.uint8)
        expect = dst ^ src
        xor_into(dst, src)
        assert np.array_equal(dst, expect)

    def test_xor_into_unaligned_view(self):
        rng = np.random.default_rng(0)
        buf = rng.integers(0, 256, 33, dtype=np.int64).astype(np.uint8)
        dst = buf[1:33]  # 32 bytes, but offset 1 from the allocation
        src = rng.integers(0, 256, 32, dtype=np.int64).astype(np.uint8)
        expect = dst ^ src
        xor_into(dst, src)
        assert np.array_equal(dst, expect)

    def test_xor_into_non_contiguous(self):
        rng = np.random.default_rng(1)
        mat = rng.integers(0, 256, (4, 16), dtype=np.int64).astype(np.uint8)
        dst = mat[:, 3]  # strided view
        src = rng.integers(0, 256, 4, dtype=np.int64).astype(np.uint8)
        expect = dst ^ src
        xor_into(dst, src)
        assert np.array_equal(mat[:, 3], expect)

    def test_xor_into_shape_mismatch(self):
        with pytest.raises(FieldError):
            xor_into(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8))

    @pytest.mark.parametrize("shape", [(4, 10), (5, 8), (3, 3), (2, 2, 6)])
    def test_xor_into_multidimensional(self, shape):
        # Regression: 2-D operands whose last axis is not word-divisible
        # must still fold (flat word view or plain-XOR fallback).
        rng = np.random.default_rng(17)
        dst = rng.integers(0, 256, shape, dtype=np.int64).astype(np.uint8)
        src = rng.integers(0, 256, shape, dtype=np.int64).astype(np.uint8)
        expect = dst ^ src
        xor_into(dst, src)
        assert np.array_equal(dst, expect)

    @pytest.mark.parametrize("shape", [(1, 8), (3, 16), (5, 7), (2, 1), (4, 64)])
    def test_xor_blocks_matches_reduce(self, shape):
        rng = np.random.default_rng(shape[0] * 100 + shape[1])
        blocks = rng.integers(0, 256, shape, dtype=np.int64).astype(np.uint8)
        assert np.array_equal(
            xor_blocks(blocks), np.bitwise_xor.reduce(blocks, axis=0)
        )

    def test_xor_blocks_rejects_non_2d(self):
        with pytest.raises(FieldError):
            xor_blocks(np.zeros(8, dtype=np.uint8))


class TestFieldKernelSupport:
    def test_mul_table_rejected_for_wide_fields(self):
        with pytest.raises(FieldError):
            GF2m(12).mul_table()

    def test_mul_table_read_only_and_correct(self):
        table = GF256.mul_table()
        with pytest.raises(ValueError):
            table[0, 0] = 1
        assert int(table[2, 3]) == int(GF256.mul(2, 3))
        assert not table[0].any() and not table[:, 0].any()
