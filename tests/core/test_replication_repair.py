"""Tests for ROWA/Majority engines and the repair service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import (
    MajorityProtocol,
    RepairService,
    RowaProtocol,
    TrapErcProtocol,
)
from repro.erasure import MDSCode
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape

L = 16


def rand_blocks(num: int = 2, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(num, L), dtype=np.int64).astype(np.uint8)


def rand_block(seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=L, dtype=np.int64).astype(np.uint8)


class TestRowa:
    def test_write_read_roundtrip(self):
        cluster = Cluster(4)
        proto = RowaProtocol(cluster, range(4), "r0")
        proto.initialize(rand_blocks(seed=2))
        new = rand_block(3)
        assert proto.write_block(0, new).success
        r = proto.read_block(0)
        assert r.success and np.array_equal(r.value, new)

    def test_single_failure_blocks_writes(self):
        cluster = Cluster(4)
        proto = RowaProtocol(cluster, range(4), "r0")
        proto.initialize(rand_blocks(seed=4))
        cluster.fail(2)
        assert not proto.write_block(0, rand_block(5)).success

    def test_reads_survive_n_minus_1_failures(self):
        cluster = Cluster(4)
        proto = RowaProtocol(cluster, range(4), "r0")
        proto.initialize(rand_blocks(seed=6))
        cluster.fail_many([0, 1, 2])
        assert proto.read_block(0).success

    def test_all_down_read_fails(self):
        cluster = Cluster(3)
        proto = RowaProtocol(cluster, range(3), "r0")
        proto.initialize(rand_blocks(seed=7))
        cluster.fail_many([0, 1, 2])
        assert not proto.read_block(0).success
        assert not proto.write_block(0, rand_block(8)).success

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            RowaProtocol(Cluster(3), [0, 0, 1], "r0")


class TestMajority:
    def test_write_read_roundtrip(self):
        cluster = Cluster(5)
        proto = MajorityProtocol(cluster, range(5), "m0")
        proto.initialize(rand_blocks(seed=9))
        new = rand_block(10)
        assert proto.write_block(0, new).success
        r = proto.read_block(0)
        assert r.success and np.array_equal(r.value, new)

    def test_tolerates_minority_failures(self):
        cluster = Cluster(5)
        proto = MajorityProtocol(cluster, range(5), "m0")
        proto.initialize(rand_blocks(seed=11))
        cluster.fail_many([3, 4])
        new = rand_block(12)
        assert proto.write_block(0, new).success
        r = proto.read_block(0)
        assert r.success and np.array_equal(r.value, new)

    def test_majority_loss_blocks_all(self):
        cluster = Cluster(5)
        proto = MajorityProtocol(cluster, range(5), "m0")
        proto.initialize(rand_blocks(seed=13))
        cluster.fail_many([0, 1, 2])
        assert not proto.write_block(0, rand_block(14)).success
        assert not proto.read_block(0).success

    def test_stale_minority_never_wins(self):
        cluster = Cluster(5)
        proto = MajorityProtocol(cluster, range(5), "m0")
        proto.initialize(rand_blocks(seed=15))
        cluster.fail_many([3, 4])  # miss the update
        new = rand_block(16)
        assert proto.write_block(0, new).success
        cluster.recover_all()
        r = proto.read_block(0)
        assert r.version == 1
        assert np.array_equal(r.value, new)


def make_erc():
    cluster = Cluster(9)
    code = MDSCode(9, 6)
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    proto = TrapErcProtocol(cluster, code, quorum)
    rng = np.random.default_rng(20)
    data = rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)
    proto.initialize(data)
    return cluster, proto, data


class TestRepairService:
    def test_parity_staleness_detection(self):
        cluster, proto, _ = make_erc()
        svc = RepairService(proto)
        assert svc.is_parity_stale(6) is False
        cluster.fail(6)
        assert proto.write_block(0, rand_block(21)).success
        cluster.recover(6)
        assert svc.is_parity_stale(6) is True

    def test_repair_parity_node(self):
        cluster, proto, _ = make_erc()
        svc = RepairService(proto)
        cluster.fail(6)
        new = rand_block(22)
        assert proto.write_block(0, new).success
        cluster.recover(6)
        assert svc.repair_parity_node(6)
        assert svc.is_parity_stale(6) is False
        vv = cluster.node(6).parity_versions(proto.parity_key())
        assert vv.tolist() == [1, 0, 0, 0, 0, 0]

    def test_repaired_parity_accepts_deltas_again(self):
        cluster, proto, _ = make_erc()
        svc = RepairService(proto)
        cluster.fail(6)
        assert proto.write_block(0, rand_block(23)).success
        cluster.recover(6)
        # Stale: a further write to block 0 is rejected by node 6...
        assert proto.write_block(0, rand_block(24)).success
        assert cluster.node(6).stats.stale_rejections >= 1
        svc.repair_parity_node(6)
        before = cluster.node(6).stats.stale_rejections
        assert proto.write_block(0, rand_block(25)).success
        assert cluster.node(6).stats.stale_rejections == before

    def test_repair_wiped_data_node(self):
        cluster, proto, data = make_erc()
        svc = RepairService(proto)
        new = rand_block(26)
        assert proto.write_block(2, new).success
        cluster.fail(2)
        cluster.recover(2, wipe=True)
        assert cluster.node(2).data_version(proto.data_key(2)) == -1
        assert svc.repair_data_node(2)
        payload, v = cluster.node(2).read_data(proto.data_key(2))
        assert v == 1 and np.array_equal(payload, new)

    def test_sync_all_full_recovery(self):
        cluster, proto, _ = make_erc()
        svc = RepairService(proto)
        cluster.fail(6)
        cluster.fail(1)
        new = rand_block(27)
        assert proto.write_block(0, new).success
        cluster.recover(6)
        cluster.recover(1, wipe=True)
        repaired = svc.sync_all()
        assert repaired >= 2  # data node 1 and parity 6
        assert svc.is_parity_stale(6) is False
        payload, v = cluster.node(1).read_data(proto.data_key(1))
        assert v == 0

    def test_repair_fails_without_quorum(self):
        cluster, proto, _ = make_erc()
        svc = RepairService(proto)
        cluster.fail_many([0, 6, 7, 8])
        assert not svc.repair_data_node(0)

    def test_repair_parity_rejects_data_node(self):
        _, proto, _ = make_erc()
        svc = RepairService(proto)
        with pytest.raises(ValueError):
            svc.repair_parity_node(0)
