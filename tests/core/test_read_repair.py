"""Tests for the read-repair (write-back) extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import ReadCase, TrapErcProtocol
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape

L = 16


def make(read_repair: bool):
    cluster = Cluster(9)
    code = MDSCode(9, 6)
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 1)  # w=(1,1)
    proto = TrapErcProtocol(cluster, code, quorum, read_repair=read_repair)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)
    proto.initialize(data)
    return cluster, proto, rng


def make_stale_ni(cluster, proto, rng):
    """Write block 2 while N_2 is down (w=(1,1) tolerates it), recover."""
    cluster.fail(2)
    new = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
    # level 0 of block 2's trapezoid is node 2 itself; w_0 = 1 means the
    # write *requires* N_2... so instead make parity-staleness moot and
    # use a wiped N_2 with put-version semantics:
    cluster.recover(2)
    assert proto.write_block(2, new).success
    # Now roll N_2 back by wiping and re-inserting the OLD record shape:
    cluster.fail(2)
    cluster.recover(2, wipe=True)
    return new


class TestReadRepair:
    def test_decode_read_freshens_wiped_ni(self):
        cluster, proto, rng = make(read_repair=True)
        new = make_stale_ni(cluster, proto, rng)
        # N_2 is wiped: first read decodes...
        r1 = proto.read_block(2)
        assert r1.case == ReadCase.DECODE
        assert np.array_equal(r1.value, new)
        assert proto.read_repairs_performed == 1
        # ...and repairs N_2, so the second read is direct.
        r2 = proto.read_block(2)
        assert r2.case == ReadCase.DIRECT
        assert np.array_equal(r2.value, new)

    def test_without_read_repair_stays_decode(self):
        cluster, proto, rng = make(read_repair=False)
        make_stale_ni(cluster, proto, rng)
        r1 = proto.read_block(2)
        r2 = proto.read_block(2)
        assert r1.case == r2.case == ReadCase.DECODE
        assert proto.read_repairs_performed == 0

    def test_no_write_back_when_ni_down(self):
        cluster, proto, rng = make(read_repair=True)
        new = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
        assert proto.write_block(2, new).success
        cluster.fail(2)
        r = proto.read_block(2)
        assert r.case == ReadCase.DECODE
        assert proto.read_repairs_performed == 0

    def test_write_back_is_version_exact(self):
        """The repaired record carries the decoded version, not a bump, so
        subsequent writes continue the version chain seamlessly."""
        cluster, proto, rng = make(read_repair=True)
        new = make_stale_ni(cluster, proto, rng)
        proto.read_block(2)  # triggers write-back at version 1
        assert cluster.node(2).data_version(proto.data_key(2)) == 1
        newer = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
        result = proto.write_block(2, newer)
        assert result.success and result.version == 2

    def test_consistency_preserved_under_churn_with_read_repair(self):
        cluster, proto, rng = make(read_repair=True)
        committed = {}
        data0 = [proto.read_block(i) for i in range(6)]
        for i, r in enumerate(data0):
            committed[i] = (r.version, r.value.copy())
        for step in range(80):
            cluster.recover_all()
            down = rng.choice(9, size=rng.integers(0, 3), replace=False)
            cluster.fail_many(down.tolist())
            i = int(rng.integers(0, 6))
            if rng.random() < 0.5:
                value = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
                res = proto.write_block(i, value)
                if res.success:
                    committed[i] = (res.version, value.copy())
            else:
                res = proto.read_block(i)
                if res.success:
                    version, value = committed[i]
                    assert res.version >= version, f"step {step}"
                    if res.version == version:
                        assert np.array_equal(res.value, value), f"step {step}"
