"""Edge-path tests: wiped disks, INVALID answers, mid-read failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import ReadCase, RepairService, TrapErcProtocol, TrapFrProtocol
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape

L = 16


def make_erc(w: int = 2):
    cluster = Cluster(9)
    code = MDSCode(9, 6)
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), w)
    proto = TrapErcProtocol(cluster, code, quorum)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)
    proto.initialize(data)
    return cluster, proto, data


class TestWipedNodes:
    def test_wiped_parity_not_counted_in_check(self):
        """A wiped node answers but is INVALID; the version check must not
        count it (counting it would break the intersection argument)."""
        cluster, proto, _ = make_erc()
        # Block 0's trapezoid: level 0 = {0}, level 1 = {6, 7, 8}, r=(1,2).
        cluster.fail(0)
        cluster.fail(6)
        cluster.recover(6, wipe=True)  # alive but record-less
        cluster.fail(7)  # only node 8 has a valid record at level 1
        result = proto.read_block(0)
        assert not result.success  # 1 valid answer < r_1 = 2

    def test_wiped_parity_counted_after_repair(self):
        cluster, proto, _ = make_erc()
        cluster.fail(6)
        cluster.recover(6, wipe=True)
        RepairService(proto).repair_parity_node(6)
        cluster.fail(0)
        cluster.fail(7)
        result = proto.read_block(0)
        assert result.success
        assert result.case == ReadCase.DECODE

    def test_wiped_data_node_forces_decode(self):
        cluster, proto, data = make_erc()
        cluster.fail(2)
        cluster.recover(2, wipe=True)
        result = proto.read_block(2)
        assert result.success
        assert result.case == ReadCase.DECODE
        assert np.array_equal(result.value, data[2])

    def test_wiped_data_node_repairable(self):
        cluster, proto, data = make_erc()
        cluster.fail(2)
        cluster.recover(2, wipe=True)
        assert RepairService(proto).repair_data_node(2)
        result = proto.read_block(2)
        assert result.case == ReadCase.DIRECT
        assert np.array_equal(result.value, data[2])


class TestMidOperationFailures:
    def test_node_dying_between_check_and_decode(self):
        """Fail the only fresh data sources right after the check: the
        read must fail cleanly with a decode reason, never crash."""
        cluster, proto, _ = make_erc()
        cluster.fail(0)
        # Keep the check quorum alive (parities) but starve the decode
        # pool: kill data nodes until < k rows remain.
        cluster.fail_many([1, 2])
        result = proto.read_block(0)
        # pool: parities 6,7,8 + data 3,4,5 = 6 = k -> succeeds; kill one more
        assert result.success
        cluster.fail(3)
        result = proto.read_block(0)
        assert not result.success
        assert "decode failed" in result.reason

    def test_partitioned_is_indistinguishable_from_dead(self):
        cluster, proto, _ = make_erc()
        cluster.network.partition([0])
        r_part = proto.read_block(0)
        cluster.network.heal()
        cluster.fail(0)
        r_dead = proto.read_block(0)
        assert r_part.success == r_dead.success
        assert r_part.case == r_dead.case == ReadCase.DECODE


class TestFrEdgePaths:
    def test_fr_wiped_replica_not_counted(self):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        proto = TrapFrProtocol(cluster, 9, 6, quorum)
        rng = np.random.default_rng(1)
        proto.initialize(rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8))
        cluster.fail(0)
        cluster.fail(6)
        cluster.recover(6, wipe=True)
        cluster.fail(7)
        assert not proto.read_block(0).success

    def test_fr_version_check_skips_wiped(self):
        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
        proto = TrapFrProtocol(cluster, 9, 6, quorum)
        rng = np.random.default_rng(2)
        proto.initialize(rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8))
        cluster.fail(6)
        cluster.recover(6, wipe=True)
        # Remaining valid replicas: 0 (level 0), 7, 8 (level 1) — fine.
        result = proto.read_block(0)
        assert result.success and result.version == 0


class TestMessageCountsOnFailurePaths:
    def test_failed_read_still_reports_messages(self):
        cluster, proto, _ = make_erc()
        cluster.fail_many([0, 6, 7, 8])
        result = proto.read_block(0)
        assert not result.success
        assert result.messages > 0

    def test_failed_write_reports_partial_acks(self):
        cluster, proto, _ = make_erc()
        cluster.fail_many([7, 8])  # level 1 has only node 6 left, w_1 = 2
        rng = np.random.default_rng(3)
        result = proto.write_block(0, rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8))
        assert not result.success
        assert result.acks_per_level == [1, 1]
        assert result.failed_level == 1
