"""Tests for the TRAP-FR full-replication protocol engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import ReadCase, TrapFrProtocol
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape

L = 16


def make_protocol(w: int | None = None):
    """(9, 6): each block replicated on its 4-node group, levels (1, 3)."""
    shape = TrapezoidShape(2, 1, 1)
    quorum = TrapezoidQuorum.uniform(shape, w)
    cluster = Cluster(9)
    proto = TrapFrProtocol(cluster, 9, 6, quorum)
    return cluster, proto


def rand_data(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)


def rand_block(seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=L, dtype=np.int64).astype(np.uint8)


class TestBasics:
    def test_initialize_and_read(self):
        _, proto = make_protocol()
        data = rand_data(0)
        proto.initialize(data)
        for i in range(6):
            r = proto.read_block(i)
            assert r.success and r.version == 0
            assert np.array_equal(r.value, data[i])

    def test_initialize_shape_check(self):
        _, proto = make_protocol()
        with pytest.raises(ConfigurationError):
            proto.initialize(np.zeros((5, L), dtype=np.uint8))

    def test_replicas_on_whole_group(self):
        cluster, proto = make_protocol()
        data = rand_data(1)
        proto.initialize(data)
        for node_id in (2, 6, 7, 8):  # block 2's group
            payload, v = cluster.node(node_id).read_data(proto.replica_key(2))
            assert v == 0 and np.array_equal(payload, data[2])

    def test_write_then_read(self):
        _, proto = make_protocol()
        proto.initialize(rand_data(2))
        new = rand_block(3)
        res = proto.write_block(1, new)
        assert res.success and res.version == 1
        r = proto.read_block(1)
        assert r.version == 1 and np.array_equal(r.value, new)

    def test_index_validation(self):
        _, proto = make_protocol()
        with pytest.raises(ConfigurationError):
            proto.write_block(6, rand_block())
        with pytest.raises(ConfigurationError):
            proto.read_block(6)

    def test_layout_mismatch(self):
        from repro.erasure import StripeLayout

        cluster = Cluster(9)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1))
        with pytest.raises(ConfigurationError):
            TrapFrProtocol(cluster, 9, 6, quorum, layout=StripeLayout(8, 5))


class TestFailureBehaviour:
    def test_any_fresh_replica_serves_read(self):
        cluster, proto = make_protocol()
        data = rand_data(4)
        proto.initialize(data)
        new = rand_block(5)
        assert proto.write_block(0, new).success
        cluster.fail(0)  # N_0 down: replicas on 6,7,8 still serve
        r = proto.read_block(0)
        assert r.success
        assert np.array_equal(r.value, new)
        assert r.case == ReadCase.DIRECT

    def test_write_fails_on_level0_loss(self):
        cluster, proto = make_protocol()
        proto.initialize(rand_data(6))
        cluster.fail(0)
        res = proto.write_block(0, rand_block(7))
        assert not res.success
        assert res.failed_level == 0

    def test_read_fails_without_quorum(self):
        cluster, proto = make_protocol()
        proto.initialize(rand_data(8))
        cluster.fail_many([0, 6, 7, 8])
        r = proto.read_block(0)
        assert not r.success

    def test_stale_replica_not_served(self):
        cluster, proto = make_protocol(w=1)
        data = rand_data(9)
        proto.initialize(data)
        cluster.fail(8)  # replica on 8 misses the write
        new = rand_block(10)
        assert proto.write_block(0, new).success
        cluster.recover(8)
        # Even if the check counts node 8, the payload must be version 1.
        for _ in range(5):
            r = proto.read_block(0)
            assert r.success
            assert r.version == 1
            assert np.array_equal(r.value, new)

    def test_latest_version(self):
        cluster, proto = make_protocol()
        proto.initialize(rand_data(11))
        assert proto.latest_version(0) == 0
        proto.write_block(0, rand_block(12))
        assert proto.latest_version(0) == 1
        cluster.fail_many([0, 6, 7, 8])
        assert proto.latest_version(0) is None


class TestConsistencyChurn:
    def test_acked_writes_never_lost(self):
        rng = np.random.default_rng(7)
        cluster, proto = make_protocol(w=2)
        data = rand_data(13)
        proto.initialize(data)
        committed = {i: (0, data[i].copy()) for i in range(6)}
        for step in range(120):
            cluster.recover_all()
            down = rng.choice(9, size=rng.integers(0, 3), replace=False)
            cluster.fail_many(down.tolist())
            i = int(rng.integers(0, 6))
            if rng.random() < 0.5:
                value = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
                res = proto.write_block(i, value)
                if res.success:
                    committed[i] = (res.version, value.copy())
            else:
                res = proto.read_block(i)
                if res.success:
                    version, value = committed[i]
                    assert res.version >= version, f"step {step}: stale read"
                    if res.version == version:
                        assert np.array_equal(res.value, value), f"step {step}"
