"""Tests for lease-based serialization and multi-coordinator safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import LeaseManager, TrapErcProtocol
from repro.erasure import MDSCode
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape

L = 16


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestLeaseManager:
    def test_acquire_release(self):
        clock = FakeClock()
        mgr = LeaseManager(clock, duration=10.0)
        lease = mgr.acquire(0, "alice")
        assert lease is not None and lease.owner == "alice"
        assert mgr.holder(0) == "alice"
        assert mgr.release(0, "alice")
        assert mgr.holder(0) is None

    def test_exclusive_while_held(self):
        clock = FakeClock()
        mgr = LeaseManager(clock, duration=10.0)
        assert mgr.acquire(0, "alice") is not None
        assert mgr.acquire(0, "bob") is None
        assert mgr.rejections == 1
        # Different block is fine.
        assert mgr.acquire(1, "bob") is not None

    def test_reacquire_by_owner_extends(self):
        clock = FakeClock()
        mgr = LeaseManager(clock, duration=10.0)
        first = mgr.acquire(0, "alice")
        clock.t = 5.0
        second = mgr.acquire(0, "alice")
        assert second.expires_at > first.expires_at

    def test_expiry_frees_lease(self):
        clock = FakeClock()
        mgr = LeaseManager(clock, duration=10.0)
        mgr.acquire(0, "alice")
        clock.t = 10.0
        assert mgr.acquire(0, "bob") is not None
        assert mgr.expirations == 1

    def test_release_wrong_owner(self):
        clock = FakeClock()
        mgr = LeaseManager(clock, duration=10.0)
        mgr.acquire(0, "alice")
        assert not mgr.release(0, "bob")
        assert mgr.holder(0) == "alice"

    def test_duration_validated(self):
        with pytest.raises(ConfigurationError):
            LeaseManager(FakeClock(), duration=0.0)


def make_shared_stripe():
    """Two coordinators over the same cluster and stripe."""
    cluster = Cluster(9)
    code = MDSCode(9, 6)
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    c1 = TrapErcProtocol(cluster, code, quorum, stripe_id="shared")
    c2 = TrapErcProtocol(cluster, code, quorum, stripe_id="shared")
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)
    c1.initialize(data)
    return cluster, code, c1, c2, rng


class TestConcurrentCoordinators:
    def test_racing_writers_never_corrupt_parity(self):
        """Without leases one racer loses, but the stripe stays a valid
        codeword: the version guards reject the second same-base delta."""
        cluster, code, c1, c2, rng = make_shared_stripe()
        for step in range(10):
            v1 = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
            v2 = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
            r1 = c1.write_block(0, v1)
            r2 = c2.write_block(0, v2)
            assert r1.success  # first racer wins its round
            # Second coordinator may fail (stale base) but must not corrupt.
            del r2
            # Invariant: stored stripe is exactly encode(stored data).
            blocks = []
            for i in range(6):
                payload, _ = cluster.node(i).read_data(c1.data_key(i))
                blocks.append(payload)
            expect = code.encode(np.stack(blocks))
            for j in range(6, 9):
                payload, _ = cluster.node(j).read_parity(c1.parity_key())
                assert np.array_equal(payload, expect[j]), f"step {step} node {j}"

    def test_racing_writers_serialize_versions(self):
        _, _, c1, c2, rng = make_shared_stripe()
        versions = []
        for _ in range(8):
            value = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
            writer = c1 if rng.random() < 0.5 else c2
            result = writer.write_block(2, value)
            if result.success:
                versions.append(result.version)
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_leases_serialize_writers_cleanly(self):
        cluster, _, c1, c2, rng = make_shared_stripe()
        clock = FakeClock()
        leases = LeaseManager(clock, duration=5.0)
        applied = {}
        writers = [("alice", c1), ("bob", c2)]
        for step in range(20):
            clock.t = float(step)
            name, proto = writers[step % 2]
            if leases.acquire(0, name) is None:
                continue
            value = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
            result = proto.write_block(0, value)
            assert result.success  # no interference under the lease
            applied[result.version] = value
            leases.release(0, name)
        read = c1.read_block(0)
        assert read.success
        assert np.array_equal(read.value, applied[read.version])
