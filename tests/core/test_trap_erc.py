"""Tests for the TRAP-ERC protocol engine (Algorithms 1-2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import ReadCase, TrapErcProtocol
from repro.erasure import MDSCode, StripeLayout
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape

L = 16  # block length used throughout


def make_protocol(
    n: int = 9,
    k: int = 6,
    shape: TrapezoidShape | None = None,
    w: int | None = None,
    stripe_id: str = "s0",
):
    """(9, 6) stripe: trapezoid of Nbnode = 4 nodes, levels (1, 3)."""
    if shape is None:
        shape = TrapezoidShape(2, 1, 1)  # levels (1, 3): Nbnode = 4 = n - k + 1
    quorum = TrapezoidQuorum.uniform(shape, w)
    cluster = Cluster(n)
    code = MDSCode(n, k)
    proto = TrapErcProtocol(cluster, code, quorum, stripe_id=stripe_id)
    return cluster, code, proto


def rand_data(k: int = 6, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, L), dtype=np.int64).astype(np.uint8)


def rand_block(seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=L, dtype=np.int64).astype(np.uint8)


class TestConstruction:
    def test_geometry_mismatch_rejected(self):
        cluster = Cluster(9)
        code = MDSCode(9, 6)
        bad = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 2))  # 15 != 4
        with pytest.raises(ConfigurationError):
            TrapErcProtocol(cluster, code, bad)

    def test_layout_mismatch_rejected(self):
        cluster = Cluster(9)
        code = MDSCode(9, 6)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(1, 1, 1))
        with pytest.raises(ConfigurationError):
            TrapErcProtocol(cluster, code, quorum, layout=StripeLayout(8, 5))

    def test_cluster_must_contain_layout_nodes(self):
        cluster = Cluster(5)  # too small for n = 9
        code = MDSCode(9, 6)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(1, 1, 1))
        with pytest.raises(ConfigurationError):
            TrapErcProtocol(cluster, code, quorum)

    def test_trapezoid_nodes_start_with_ni(self):
        _, _, proto = make_protocol()
        for i in range(6):
            group = proto.placement.group_nodes(i)
            assert group[0] == i
            assert group[1:] == [6, 7, 8]


class TestInitialize:
    def test_roundtrip_all_blocks(self):
        _, _, proto = make_protocol()
        data = rand_data()
        proto.initialize(data)
        for i in range(6):
            result = proto.read_block(i)
            assert result.success
            assert result.version == 0
            assert result.case == ReadCase.DIRECT
            assert np.array_equal(result.value, data[i])

    def test_parity_records_match_encode(self):
        cluster, code, proto = make_protocol()
        data = rand_data(seed=2)
        proto.initialize(data)
        stripe = code.encode(data)
        for j in range(6, 9):
            payload, vv = cluster.node(j).read_parity(proto.parity_key())
            assert np.array_equal(payload, stripe[j])
            assert vv.tolist() == [0] * 6


class TestWrite:
    def test_healthy_write_and_read(self):
        _, _, proto = make_protocol()
        data = rand_data(seed=3)
        proto.initialize(data)
        new = rand_block(seed=4)
        result = proto.write_block(2, new)
        assert result.success
        assert result.version == 1
        assert result.acks_per_level == [1, 3]
        r = proto.read_block(2)
        assert r.success and r.version == 1
        assert np.array_equal(r.value, new)

    def test_sequential_versions(self):
        _, _, proto = make_protocol()
        proto.initialize(rand_data(seed=5))
        for expected_version in (1, 2, 3):
            res = proto.write_block(0, rand_block(seed=10 + expected_version))
            assert res.success
            assert res.version == expected_version

    def test_write_updates_parity_consistently(self):
        cluster, code, proto = make_protocol()
        data = rand_data(seed=6)
        proto.initialize(data)
        new = rand_block(seed=7)
        proto.write_block(4, new)
        data[4] = new
        stripe = code.encode(data)
        for j in range(6, 9):
            payload, vv = cluster.node(j).read_parity(proto.parity_key())
            assert np.array_equal(payload, stripe[j])
            assert vv.tolist() == [0, 0, 0, 0, 1, 0]

    def test_write_fails_when_level_quorum_missed(self):
        cluster, _, proto = make_protocol()
        proto.initialize(rand_data(seed=8))
        # Level 0 of block 0's trapezoid is {node 0}; failing it blocks writes.
        cluster.fail(0)
        result = proto.write_block(0, rand_block(seed=9))
        assert not result.success
        assert result.failed_level == 0
        assert "w_l" in result.reason

    def test_write_succeeds_with_tolerable_failures(self):
        cluster, _, proto = make_protocol(w=1)
        proto.initialize(rand_data(seed=10))
        # w = (1, 1): one parity at level 1 suffices; kill two of three.
        cluster.fail(7)
        cluster.fail(8)
        result = proto.write_block(1, rand_block(seed=11))
        assert result.success
        assert result.acks_per_level == [1, 1]

    def test_write_fail_reports_missing_read(self):
        cluster, _, proto = make_protocol()
        proto.initialize(rand_data(seed=12))
        # Kill enough nodes that even the version check fails.
        cluster.fail_many([0, 6, 7, 8])
        result = proto.write_block(0, rand_block(seed=13))
        assert not result.success
        assert "read-before-write" in result.reason

    def test_index_validation(self):
        _, _, proto = make_protocol()
        with pytest.raises(ConfigurationError):
            proto.write_block(6, rand_block())

    def test_shape_validation(self):
        _, _, proto = make_protocol()
        proto.initialize(rand_data(seed=14))
        with pytest.raises(ConfigurationError):
            proto.write_block(0, np.zeros(L + 1, dtype=np.uint8))

    def test_message_accounting(self):
        _, _, proto = make_protocol()
        proto.initialize(rand_data(seed=15))
        result = proto.write_block(0, rand_block(seed=16))
        assert result.messages > 0


class TestReadDirect:
    def test_direct_read_prefers_ni(self):
        _, _, proto = make_protocol()
        data = rand_data(seed=17)
        proto.initialize(data)
        r = proto.read_block(3)
        assert r.case == ReadCase.DIRECT
        assert r.check_level == 0

    def test_read_fails_without_check_quorum(self):
        cluster, _, proto = make_protocol()
        proto.initialize(rand_data(seed=18))
        # Block 0 trapezoid: level 0 = {0}, level 1 = {6, 7, 8}.
        # r = (1, 1) for w=(1,3)... default w: s_1=3 -> w=(1,2), r=(1,2).
        cluster.fail_many([0, 6, 7, 8])
        r = proto.read_block(0)
        assert not r.success
        assert "version-check" in r.reason

    def test_read_index_validation(self):
        _, _, proto = make_protocol()
        with pytest.raises(ConfigurationError):
            proto.read_block(-1)


class TestReadDecode:
    def test_decode_when_ni_down(self):
        cluster, _, proto = make_protocol()
        data = rand_data(seed=19)
        proto.initialize(data)
        new = rand_block(seed=20)
        assert proto.write_block(2, new).success
        cluster.fail(2)
        r = proto.read_block(2)
        assert r.success
        assert r.case == ReadCase.DECODE
        assert r.version == 1
        assert np.array_equal(r.value, new)

    def test_decode_when_ni_stale(self):
        cluster, _, proto = make_protocol()
        data = rand_data(seed=21)
        proto.initialize(data)
        # N_2 misses the write: fail it, write with w=1 quorum on parities.
        _, _, proto_w1 = make_protocol(w=1)
        # Re-do with w=1 protocol for the same cluster? Simpler: new setup.
        cluster2, _, proto2 = make_protocol(w=1)
        proto2.initialize(data)
        cluster2.fail(2)
        new = rand_block(seed=22)
        # level 0 of block 2 = {node 2} -> write must fail at level 0.
        res = proto2.write_block(2, new)
        assert not res.success

    def test_decode_after_missed_update_on_parity(self):
        # One parity misses a write but recovers; decode must still work
        # from the remaining consistent rows.
        cluster, _, proto = make_protocol(w=1)
        data = rand_data(seed=23)
        proto.initialize(data)
        cluster.fail(8)  # parity misses the next write
        new = rand_block(seed=24)
        assert proto.write_block(1, new).success
        cluster.recover(8)  # back, but stale for block 1
        cluster.fail(1)  # now force decode for block 1
        r = proto.read_block(1)
        assert r.success
        assert r.case == ReadCase.DECODE
        assert np.array_equal(r.value, new)

    def test_stale_parity_not_used_in_decode(self):
        cluster, _, proto = make_protocol(w=1)
        data = rand_data(seed=25)
        proto.initialize(data)
        cluster.fail(8)
        new = rand_block(seed=26)
        assert proto.write_block(1, new).success
        cluster.recover(8)
        cluster.fail(1)
        r = proto.read_block(1)
        # node 8's parity must have been excluded: its vv[1] == 0 != 1.
        vv8 = cluster.node(8).parity_versions(proto.parity_key())
        assert vv8[1] == 0
        assert r.success and np.array_equal(r.value, new)

    def test_decode_fails_with_too_few_fresh_fragments(self):
        cluster, _, proto = make_protocol(w=1)
        data = rand_data(seed=27)
        proto.initialize(data)
        new = rand_block(seed=28)
        assert proto.write_block(0, new).success
        # Kill N_0 plus two data nodes: pool = 3 data + 3 parity = 6 rows
        # minus... keep exactly k-1 = 5 usable rows.
        cluster.fail_many([0, 1, 2, 3])  # 2 data nodes + parities remain
        r = proto.read_block(0)
        assert not r.success
        assert "decode" in r.reason or "version-check" in r.reason

    def test_mixed_version_snapshot_grouping(self):
        """Parities with different version vectors must not be mixed."""
        cluster, code, proto = make_protocol(w=1)
        data = rand_data(seed=29)
        proto.initialize(data)
        # Write block 1 while parity 8 is down (vv diverges on column 1).
        cluster.fail(8)
        new1 = rand_block(seed=30)
        assert proto.write_block(1, new1).success
        cluster.recover(8)
        # Write block 2 while parity 6 is down (vv diverges on column 2)...
        cluster.fail(6)
        new2 = rand_block(seed=31)
        assert proto.write_block(2, new2).success
        cluster.recover(6)
        # Now: parity 7 fresh for all; parity 6 stale for 2; parity 8 stale
        # for 1 BUT fresh for 2 (guard allows independent columns).
        cluster.fail(1)
        r = proto.read_block(1)
        assert r.success
        assert np.array_equal(r.value, new1)


class TestLatestVersion:
    def test_reports_committed_version(self):
        _, _, proto = make_protocol()
        proto.initialize(rand_data(seed=32))
        assert proto.latest_version(0) == 0
        proto.write_block(0, rand_block(seed=33))
        assert proto.latest_version(0) == 1

    def test_none_without_quorum(self):
        cluster, _, proto = make_protocol()
        proto.initialize(rand_data(seed=34))
        cluster.fail_many([0, 6, 7, 8])
        assert proto.latest_version(0) is None


class TestStrictConsistency:
    """The invariant the protocol exists for: acked writes are never lost."""

    def test_random_failures_never_lose_acked_writes(self):
        rng = np.random.default_rng(42)
        cluster, _, proto = make_protocol(w=2)
        data = rand_data(seed=35)
        proto.initialize(data)
        committed = {i: (0, data[i].copy()) for i in range(6)}
        for step in range(120):
            # Random failure churn (never more than 2 nodes down).
            cluster.recover_all()
            down = rng.choice(9, size=rng.integers(0, 3), replace=False)
            cluster.fail_many(down.tolist())
            i = int(rng.integers(0, 6))
            if rng.random() < 0.5:
                value = rng.integers(0, 256, L, dtype=np.int64).astype(np.uint8)
                res = proto.write_block(i, value)
                if res.success:
                    committed[i] = (res.version, value.copy())
            else:
                res = proto.read_block(i)
                if res.success:
                    version, value = committed[i]
                    # Strict consistency: never older than the last ack.
                    assert res.version >= version, f"step {step}: stale read"
                    if res.version == version:
                        assert np.array_equal(res.value, value), f"step {step}"

    def test_read_your_write_under_partition(self):
        cluster, _, proto = make_protocol(w=2)
        data = rand_data(seed=36)
        proto.initialize(data)
        new = rand_block(seed=37)
        assert proto.write_block(3, new).success
        # Partition N_3 away; the value must still be readable via decode.
        cluster.network.partition([3])
        r = proto.read_block(3)
        assert r.success
        assert r.case == ReadCase.DECODE
        assert np.array_equal(r.value, new)
        cluster.network.heal()


class TestMultipleStripes:
    def test_stripes_are_isolated(self):
        cluster = Cluster(9)
        code = MDSCode(9, 6)
        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1))
        p1 = TrapErcProtocol(cluster, code, quorum, stripe_id="a")
        p2 = TrapErcProtocol(cluster, code, quorum, stripe_id="b")
        d1, d2 = rand_data(seed=38), rand_data(seed=39)
        p1.initialize(d1)
        p2.initialize(d2)
        p1.write_block(0, rand_block(seed=40))
        r2 = p2.read_block(0)
        assert r2.version == 0
        assert np.array_equal(r2.value, d2[0])
