"""Registry completeness: every quorum/protocol class is reachable by name."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro.quorum
from repro.api import (
    QuorumSpec,
    build_quorum_system,
    build_trapezoid_quorum,
    protocol_entry,
    protocol_names,
    quorum_entry,
    quorum_names,
    register_protocol,
    register_quorum,
)
from repro.api.registry import _PROTOCOLS, _QUORUMS
from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem

SAMPLE_SPECS = {
    "trapezoid": QuorumSpec(kind="trapezoid", a=2, b=3, h=2),
    "rowa": QuorumSpec(kind="rowa", size=5),
    "majority": QuorumSpec(kind="majority", size=5),
    "grid": QuorumSpec(kind="grid", rows=2, cols=3),
    "tree": QuorumSpec(kind="tree", height=2),
    "voting": QuorumSpec(kind="voting", size=5, read_votes=3, write_votes=3),
}


def _concrete_quorum_classes() -> set[type]:
    """Every concrete QuorumSystem subclass defined under repro.quorum."""
    classes: set[type] = set()
    for info in pkgutil.iter_modules(repro.quorum.__path__):
        module = importlib.import_module(f"repro.quorum.{info.name}")
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (
                issubclass(obj, QuorumSystem)
                and obj is not QuorumSystem
                and not inspect.isabstract(obj)
                and obj.__module__.startswith("repro.quorum")
            ):
                classes.add(obj)
    return classes


class TestQuorumRegistry:
    def test_every_quorum_class_is_registered(self):
        registered = {entry.system_class for entry in _QUORUMS.values()}
        missing = _concrete_quorum_classes() - registered
        assert not missing, (
            f"unregistered quorum classes: {sorted(c.__name__ for c in missing)}"
        )

    def test_sample_specs_cover_registry(self):
        assert set(SAMPLE_SPECS) == set(quorum_names())

    @pytest.mark.parametrize("kind", sorted(SAMPLE_SPECS))
    def test_every_kind_buildable(self, kind):
        system = build_quorum_system(SAMPLE_SPECS[kind])
        assert isinstance(system, quorum_entry(kind).system_class)
        assert system.size >= 1
        # The built system satisfies the registered interface end to end.
        alive = set(range(system.size))
        wq = system.find_write_quorum(alive)
        assert wq is not None and system.is_write_quorum(wq)
        rq = system.find_read_quorum(alive)
        assert rq is not None and system.is_read_quorum(rq)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError, match="unknown quorum kind"):
            quorum_entry("pentagon")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_quorum("rowa", QuorumSystem)(lambda spec: None)

    def test_trapezoid_quorum_object(self):
        quorum = build_trapezoid_quorum(SAMPLE_SPECS["trapezoid"])
        assert quorum.shape.total_nodes == 15  # the paper's Figure 1
        with pytest.raises(ConfigurationError, match="requires a trapezoid"):
            build_trapezoid_quorum(SAMPLE_SPECS["rowa"])

    def test_trapezoid_explicit_w_vector(self):
        spec = QuorumSpec(kind="trapezoid", a=2, b=3, h=1, w=(2, 4))
        assert build_trapezoid_quorum(spec).w == (2, 4)


class TestProtocolRegistry:
    def test_expected_names(self):
        assert set(protocol_names()) == {"trap-erc", "trap-fr", "rowa", "majority"}

    @pytest.mark.parametrize("name", ["trap-erc", "trap-fr"])
    def test_trapezoid_protocols_marked(self, name):
        assert protocol_entry(name).needs_trapezoid

    def test_repair_support_marked(self):
        assert protocol_entry("trap-erc").supports_repair
        assert not protocol_entry("trap-fr").supports_repair

    def test_unknown_protocol_raises(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            protocol_entry("paxos")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_protocol("rowa", object)(lambda *a: None)

    def test_custom_protocol_and_quorum_are_buildable_from_specs(self):
        """The extension points actually extend the declarative surface."""
        from repro.api import SystemSpec, build_quorum_system, build_system
        from repro.quorum.majority import MajoritySystem

        @register_quorum("all-of", MajoritySystem)
        def _build_all_of(spec):
            return MajoritySystem(spec.size)

        class EchoEngine:
            def __init__(self, cluster):
                self.cluster = cluster

            def initialize(self, data):
                self.data = data

            def read_block(self, i):
                from repro.core.results import ReadResult

                return ReadResult(success=True, value=self.data[i], version=0)

            def write_block(self, i, value):
                from repro.core.results import WriteResult

                self.data[i] = value
                return WriteResult(success=True, version=1)

        @register_protocol("echo", EchoEngine)
        def _build_echo(spec, cluster, code, layout):
            return EchoEngine(cluster)

        try:
            # Custom quorum kind constructible from a spec dict (JSON path).
            qspec = QuorumSpec.from_dict({"kind": "all-of", "size": 5})
            assert isinstance(build_quorum_system(qspec), MajoritySystem)
            # Custom protocol with a *new* name builds end to end; its
            # availability geometry falls back to the spec's quorum.
            spec = SystemSpec.trapezoid(9, 6, 2, 1, 1, 2, protocol="echo")
            built = build_system(spec)
            built.initialize()
            assert built.engine.read_block(0).success
            assert 0.0 < float(built.write_availability(0.9)) <= 1.0
        finally:
            _QUORUMS.pop("all-of")
            _PROTOCOLS.pop("echo")

    def test_entries_expose_engine_classes(self):
        from repro.core import (
            MajorityProtocol,
            RowaProtocol,
            TrapErcProtocol,
            TrapFrProtocol,
        )

        assert _PROTOCOLS["trap-erc"].engine_class is TrapErcProtocol
        assert _PROTOCOLS["trap-fr"].engine_class is TrapFrProtocol
        assert _PROTOCOLS["rowa"].engine_class is RowaProtocol
        assert _PROTOCOLS["majority"].engine_class is MajorityProtocol
