"""build_system: a read/write smoke per registered protocol + validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ClusterSpec,
    CodeSpec,
    ProtocolEngine,
    QuorumSpec,
    SystemSpec,
    build_system,
    protocol_entry,
    protocol_names,
)
from repro.errors import ConfigurationError

SPEC = SystemSpec.trapezoid(9, 6, 2, 1, 1, 2, seed=21)


class TestBuildSmoke:
    @pytest.mark.parametrize("name", protocol_names())
    def test_initialize_write_read(self, name):
        built = build_system(SPEC.replace(protocol=name))
        assert isinstance(built.engine, protocol_entry(name).engine_class)
        assert isinstance(built.engine, ProtocolEngine)
        data = built.initialize()
        assert data.shape == (6, SPEC.workload.block_length)

        value = np.arange(SPEC.workload.block_length, dtype=np.uint8)
        write = built.engine.write_block(1, value)
        assert write.success and write.version == 1

        read = built.engine.read_block(1)
        assert read.success and read.version == 1
        assert np.array_equal(read.value, value)

    @pytest.mark.parametrize("name", protocol_names())
    def test_initial_reads_see_loaded_data(self, name):
        built = build_system(SPEC.replace(protocol=name))
        data = built.initialize()
        for i in range(built.num_blocks):
            read = built.engine.read_block(i)
            assert read.success and read.version == 0
            assert np.array_equal(read.value, data[i])

    def test_seeded_data_is_deterministic(self):
        a = build_system(SPEC).initialize()
        b = build_system(SPEC).initialize()
        assert np.array_equal(a, b)
        c = build_system(SPEC.replace(seed=99)).initialize()
        assert not np.array_equal(a, c)

    def test_explicit_data_accepted(self):
        built = build_system(SPEC)
        data = np.zeros((6, 8), dtype=np.uint8)
        assert np.array_equal(built.initialize(data), data)
        assert built.engine.read_block(0).success

    def test_repair_only_for_trap_erc(self):
        assert build_system(SPEC).repair is not None
        assert build_system(SPEC).repair_fn() is not None
        for name in ("trap-fr", "rowa", "majority"):
            built = build_system(SPEC.replace(protocol=name))
            assert built.repair is None and built.repair_fn() is None

    def test_availability_hooks(self):
        built = build_system(SPEC)
        w = float(built.write_availability(0.9))
        r = float(built.read_availability(0.9))
        assert 0.0 < w <= 1.0 and 0.0 < r <= 1.0
        assert r >= w  # trapezoid reads are at least as available as writes

    def test_flat_availability_hooks_model_the_engine(self):
        # ROWA on the 4-node consistency group: writes need all 4 nodes,
        # regardless of what the (trapezoid) quorum section says.
        built = build_system(SPEC.replace(protocol="rowa"))
        assert float(built.write_availability(0.9)) == pytest.approx(0.9**4)
        assert float(built.read_availability(0.9)) == pytest.approx(
            1.0 - 0.1**4
        )


class TestBuildValidation:
    def test_geometry_mismatch_rejected(self):
        # (9, 6) needs a 4-node trapezoid; (a=2, b=3, h=2) holds 15.
        bad = SystemSpec(
            protocol="trap-erc",
            code=CodeSpec(n=9, k=6),
            quorum=QuorumSpec(kind="trapezoid", a=2, b=3, h=2),
        )
        with pytest.raises(ConfigurationError, match="n - k \\+ 1"):
            build_system(bad)

    def test_trap_protocol_needs_trapezoid_quorum(self):
        bad = SystemSpec(
            protocol="trap-fr",
            code=CodeSpec(n=9, k=6),
            quorum=QuorumSpec(kind="majority", size=4),
        )
        with pytest.raises(ConfigurationError, match="requires a trapezoid"):
            build_system(bad)

    def test_flat_protocols_accept_any_quorum_geometry(self):
        spec = SystemSpec(
            protocol="majority",
            code=CodeSpec(n=9, k=6),
            quorum=QuorumSpec(kind="majority", size=4),
        )
        built = build_system(spec)
        built.initialize()
        assert built.engine.read_block(0).success

    def test_flat_protocol_quorum_size_mismatch_rejected(self):
        spec = SystemSpec(
            protocol="rowa",
            code=CodeSpec(n=9, k=6),  # group size 4
            quorum=QuorumSpec(kind="rowa", size=7),
        )
        with pytest.raises(ConfigurationError, match="size = 4"):
            build_system(spec)

    def test_flat_protocol_contradictory_quorum_kind_rejected(self):
        spec = SystemSpec(
            protocol="rowa",
            code=CodeSpec(n=9, k=6),
            quorum=QuorumSpec(kind="voting", size=4, read_votes=2, write_votes=3),
        )
        with pytest.raises(ConfigurationError, match="contradicts protocol"):
            build_system(spec)

    def test_wrong_data_shape_rejected(self):
        built = build_system(SPEC)
        with pytest.raises(ConfigurationError, match="data must have shape"):
            built.initialize(np.zeros((4, 8), dtype=np.uint8))

    def test_rotating_placement_changes_layout(self):
        spec = SPEC.replace(
            placement=SPEC.placement.replace(kind="rotating"),
        )
        l0 = build_system(spec, stripe_index=0).layout
        l1 = build_system(spec, stripe_index=1).layout
        assert l0.node_ids != l1.node_ids


class TestCoordinatorInjection:
    """coordinator_factory routes every registry engine onto the event path."""

    @pytest.mark.parametrize("name", protocol_names())
    def test_event_path_end_to_end(self, name):
        from repro.cluster.events import Simulator
        from repro.cluster.network import FixedLatency
        from repro.runtime import EventCoordinator

        sim = Simulator()

        def factory(cluster):
            cluster.network.latency = FixedLatency(0.001)
            return EventCoordinator(cluster, sim, rng=3)

        built = build_system(SPEC.replace(protocol=name), coordinator_factory=factory)
        assert built.coordinator is not None
        assert built.engine.coordinator is built.coordinator
        built.initialize()
        read = built.engine.read_block(0)
        assert read.success
        assert read.latency > 0  # virtual time actually elapsed

    def test_repair_service_stays_on_instant_path(self):
        from repro.cluster.events import Simulator
        from repro.runtime import EventCoordinator, InstantCoordinator

        sim = Simulator()
        built = build_system(
            SPEC, coordinator_factory=lambda c: EventCoordinator(c, sim, rng=0)
        )
        # trap-erc supports repair; its anti-entropy engine must not share
        # the event coordinator (repair passes run out of band).
        assert built.repair is not None
        assert isinstance(built.repair.protocol.coordinator, InstantCoordinator)
        assert built.repair.protocol is not built.engine
        assert built.repair.protocol.cluster is built.cluster

    def test_unsupporting_builder_rejected(self):
        from repro.api import register_protocol
        from repro.api.registry import _PROTOCOLS
        from repro.cluster.events import Simulator
        from repro.runtime import EventCoordinator

        class LegacyEngine:
            pass

        @register_protocol("legacy-engine", LegacyEngine)
        def _build_legacy(spec, cluster, code, layout):  # no coordinator kwarg
            return LegacyEngine()

        try:
            sim = Simulator()
            with pytest.raises(ConfigurationError, match="coordinator"):
                build_system(
                    SPEC.replace(protocol="legacy-engine"),
                    coordinator_factory=lambda c: EventCoordinator(c, sim, rng=0),
                )
        finally:
            _PROTOCOLS.pop("legacy-engine")
