"""ScenarioRunner: every kind runs, results are tidy JSON, seeds pin runs."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ClusterSpec,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    WorkloadSpec,
    protocol_names,
    run_spec,
)
from repro.errors import ConfigurationError

BASE = SystemSpec.trapezoid(9, 6, 2, 1, 1, 2, seed=17)


def _with_scenario(**kwargs) -> SystemSpec:
    return BASE.replace(scenario=ScenarioSpec(**kwargs))


class TestScenarioKinds:
    @pytest.mark.parametrize("name", protocol_names())
    def test_smoke_runs_every_protocol(self, name):
        spec = _with_scenario(kind="smoke").replace(
            protocol=name, workload=WorkloadSpec(num_ops=40, block_length=8)
        )
        result = run_spec(spec)
        data = result.data
        assert data["reads"] + data["writes"] == 40
        # Healthy cluster: every operation must succeed.
        assert data["reads_ok"] == data["reads"]
        assert data["writes_ok"] == data["writes"]
        assert data["messages"] > 0

    def test_availability_matches_direct_sweep(self):
        from repro.analysis import write_availability
        from repro.api import build_trapezoid_quorum

        result = run_spec(_with_scenario(kind="availability", ps=(0.5, 0.9), trials=0))
        records = result.data["records"]
        assert len(records) == 2 * 4  # 2 ps x (3 closed_form + 1 exact)
        quorum = build_trapezoid_quorum(BASE.quorum)
        write_cf = next(
            r
            for r in records
            if r["metric"] == "write" and r["method"] == "closed_form" and r["p"] == 0.5
        )
        assert write_cf["value"] == pytest.approx(float(write_availability(quorum, 0.5)))

    @pytest.mark.parametrize("name", protocol_names())
    def test_protocol_mc_every_protocol(self, name):
        spec = _with_scenario(kind="protocol_mc", trials=40).replace(
            protocol=name,
            cluster=ClusterSpec(num_nodes=9, p=0.85),
            workload=WorkloadSpec(block_length=8),
        )
        data = run_spec(spec).data
        assert data["p"] == 0.85
        for metric in ("read", "write"):
            est = data[metric]
            assert est["trials"] == 40
            assert 0.0 <= est["mean"] <= 1.0
            assert est["ci95"][0] <= est["mean"] <= est["ci95"][1]

    def test_trace_runs_and_reports_tally(self):
        spec = _with_scenario(
            kind="trace", horizon=60.0, op_rate=1.0, repair_interval=10.0
        ).replace(
            cluster=ClusterSpec(
                num_nodes=9, failure="exponential", mtbf=40.0, mttr=4.0
            ),
            workload=WorkloadSpec(block_length=8),
        )
        data = run_spec(spec).data
        assert data["reads_attempted"] + data["writes_attempted"] > 0
        assert data["consistency_violations"] == 0
        assert set(data["summary"]) >= {"read_availability", "write_availability"}

    def test_protocol_mc_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError, match="trials >= 1"):
            run_spec(_with_scenario(kind="protocol_mc", trials=0))

    def test_trace_requires_exponential_cluster(self):
        with pytest.raises(ConfigurationError, match="exponential"):
            run_spec(_with_scenario(kind="trace"))

    def test_trace_requires_trap_erc(self):
        spec = _with_scenario(kind="trace").replace(
            protocol="rowa",
            cluster=ClusterSpec(num_nodes=9, failure="exponential", mtbf=40.0, mttr=4.0),
        )
        with pytest.raises(ConfigurationError, match="trap-erc"):
            run_spec(spec)

    def test_comparison_covers_registry_by_default(self):
        result = run_spec(_with_scenario(kind="comparison", steps=30))
        assert set(result.data) == set(protocol_names())
        for res in result.data.values():
            assert res["reads"] + res["writes"] == 30
            assert 0.0 <= res["read_availability"] <= 1.0

    def test_comparison_subset(self):
        result = run_spec(
            _with_scenario(kind="comparison", steps=20, protocols=("rowa", "trap-fr"))
        )
        assert set(result.data) == {"rowa", "trap-fr"}

    def test_sweep_covers_w_range(self):
        result = run_spec(_with_scenario(kind="sweep", ps=(0.7,), trials=0))
        assert result.data["w_values"] == [1, 2, 3]  # s_1 = 3 for (a=2, b=1)
        ws = {r["w"] for r in result.data["records"]}
        assert ws == {1, 2, 3}

    def test_optimize_matches_direct_search(self):
        from repro.analysis import optimize_config

        result = run_spec(
            _with_scenario(kind="optimize", ps=(0.5, 0.8), max_h=2)
        )
        assert result.kind == "optimize"
        assert [r["p"] for r in result.data["results"]] == [0.5, 0.8]
        direct = optimize_config(9, 6, 0.8, max_h=2)
        replay = result.data["results"][1]
        assert replay["evaluated"] == direct.evaluated
        best = replay["best_balanced"]
        assert tuple(best["w"]) == direct.best_balanced.w
        assert best["write"] == direct.best_balanced.write
        assert best["read"] == direct.best_balanced.read
        assert len(replay["pareto"]) == len(direct.pareto)

    def test_optimize_rejects_boundary_p(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="optimize", ps=(0.5, 1.0))

    def test_sweep_rejects_w_values_on_flat_shape(self):
        flat = SystemSpec(
            scenario=ScenarioSpec(kind="sweep", w_values=(1, 2, 3))
        )  # default quorum is the h = 0 group trapezoid
        with pytest.raises(ConfigurationError, match="h = 0"):
            run_spec(flat)

    def test_comparison_num_blocks_pins_schedule(self):
        pinned = run_spec(
            _with_scenario(kind="comparison", steps=25, num_blocks=1)
        )
        assert set(pinned.data) == set(protocol_names())
        with pytest.raises(ConfigurationError, match="num_blocks"):
            run_spec(_with_scenario(kind="comparison", steps=10, num_blocks=7))

    def test_unknown_protocol_rejected_at_run(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            run_spec(BASE.replace(protocol="paxos"))


class TestResultsAndDeterminism:
    def test_result_json_round_trip(self):
        result = run_spec(_with_scenario(kind="comparison", steps=20))
        again = ScenarioResult.from_json(result.to_json())
        assert again.to_dict() == result.to_dict()
        # The embedded spec replays into the identical spec object.
        assert again.replay_spec() == result.replay_spec()
        json.loads(result.to_json())  # valid JSON end to end

    @pytest.mark.parametrize(
        "kind, extra",
        [
            ("smoke", {}),
            ("availability", {"trials": 50}),
            ("comparison", {"steps": 20}),
            ("sweep", {"ps": (0.8,), "trials": 20}),
            ("optimize", {"ps": (0.6,), "max_h": 2}),
        ],
    )
    def test_identical_spec_identical_results(self, kind, extra):
        spec = _with_scenario(kind=kind, **extra)
        assert run_spec(spec).to_json() == run_spec(spec).to_json()

    def test_runner_is_idempotent(self):
        runner = ScenarioRunner(_with_scenario(kind="smoke"))
        assert runner.run().to_json() == runner.run().to_json()

    def test_seed_changes_results(self):
        a = run_spec(_with_scenario(kind="comparison", steps=40))
        b = run_spec(
            _with_scenario(kind="comparison", steps=40).replace(seed=18)
        )
        assert a.to_json() != b.to_json()

    def test_full_round_trip_spec_to_results(self):
        """The acceptance path: JSON spec -> run -> JSON results -> re-run."""
        text = _with_scenario(kind="smoke").to_json()
        spec = SystemSpec.from_json(text)
        result = ScenarioRunner(spec).run()
        replay = ScenarioRunner(SystemSpec.from_dict(result.to_dict()["spec"])).run()
        assert replay.to_json() == result.to_json()
