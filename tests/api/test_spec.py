"""Spec-tree validation and JSON round-trip property tests."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ClusterSpec,
    CodeSpec,
    FaultloadSpec,
    LatencySpec,
    MetadataSpec,
    PlacementSpec,
    QuorumSpec,
    ScenarioSpec,
    SystemSpec,
    WorkloadSpec,
    execution_options,
)
from repro.errors import ConfigurationError


# --------------------------------------------------------------------- #
# strategies for valid specs
# --------------------------------------------------------------------- #

codes = st.integers(1, 6).flatmap(
    lambda k: st.integers(0, 6).map(lambda m: CodeSpec(n=k + m, k=k))
)

trapezoids = st.tuples(
    st.integers(0, 3), st.integers(1, 5), st.integers(0, 3)
).map(lambda abh: QuorumSpec(kind="trapezoid", a=abh[0], b=abh[1], h=abh[2]))

flat_quorums = st.one_of(
    st.integers(1, 9).map(lambda s: QuorumSpec(kind="rowa", size=s)),
    st.integers(1, 9).map(lambda s: QuorumSpec(kind="majority", size=s)),
    st.tuples(st.integers(1, 4), st.integers(1, 4)).map(
        lambda rc: QuorumSpec(kind="grid", rows=rc[0], cols=rc[1])
    ),
    st.integers(0, 3).map(lambda h: QuorumSpec(kind="tree", height=h)),
    st.integers(1, 7).map(
        lambda s: QuorumSpec(
            kind="voting", size=s, read_votes=s // 2 + 1, write_votes=s // 2 + 1
        )
    ),
)

faultloads = st.one_of(
    st.none(),
    st.builds(
        FaultloadSpec,
        kind=st.sampled_from(["none", "churn", "partition"]),
        mtbf=st.floats(0.1, 1000.0, allow_nan=False),
        mttr=st.floats(0.1, 100.0, allow_nan=False),
        partition_size=st.integers(1, 4),
    ),
)

scenarios = st.builds(
    ScenarioSpec,
    kind=st.sampled_from(
        [
            "smoke",
            "availability",
            "protocol_mc",
            "trace",
            "comparison",
            "sweep",
            "latency",
        ]
    ),
    ps=st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=4
    ).map(tuple),
    trials=st.integers(0, 100),
    steps=st.integers(1, 50),
    clients=st.integers(1, 16),
    think_time=st.floats(0.0, 5.0, allow_nan=False),
    faultload=faultloads,
)

latencies = st.one_of(
    st.none(),
    st.builds(
        LatencySpec,
        kind=st.sampled_from(["fixed", "uniform", "lognormal"]),
        delay=st.floats(0.0, 0.1, allow_nan=False),
        timeout=st.floats(0.001, 1.0, allow_nan=False, exclude_min=False),
        retries=st.integers(0, 3),
    ),
)

workloads = st.builds(
    WorkloadSpec,
    kind=st.sampled_from(["uniform", "sequential", "zipf", "vm_disk"]),
    num_ops=st.integers(1, 500),
    read_fraction=st.floats(0.0, 1.0, allow_nan=False),
    block_length=st.integers(1, 128),
)

system_specs = st.builds(
    SystemSpec,
    protocol=st.sampled_from(["trap-erc", "trap-fr", "rowa", "majority"]),
    code=codes,
    quorum=st.one_of(st.none(), trapezoids, flat_quorums),
    placement=st.builds(
        PlacementSpec,
        kind=st.sampled_from(["identity", "rotating"]),
        stripes=st.integers(1, 4),
    ),
    workload=workloads,
    latency=latencies,
    scenario=scenarios,
    seed=st.integers(-(2**31), 2**31),
)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(system_specs)
    def test_dict_round_trip_is_lossless(self, spec):
        assert SystemSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=100, deadline=None)
    @given(system_specs)
    def test_json_round_trip_is_lossless(self, spec):
        again = SystemSpec.from_json(spec.to_json())
        assert again == spec
        # to_dict output must itself be valid, stable JSON content.
        assert json.loads(again.to_json()) == spec.to_dict()

    @settings(max_examples=50, deadline=None)
    @given(system_specs)
    def test_specs_are_hashable_and_stable(self, spec):
        assert hash(spec) == hash(SystemSpec.from_dict(spec.to_dict()))

    def test_cluster_spec_defaults_from_code(self):
        spec = SystemSpec(code=CodeSpec(n=12, k=8))
        assert spec.cluster.num_nodes == 12
        assert spec.quorum.kind == "trapezoid"
        # default geometry is the flat group-sized trapezoid
        assert spec.quorum.b == 5 and spec.quorum.h == 0

    def test_trapezoid_constructor(self):
        spec = SystemSpec.trapezoid(9, 6, 2, 1, 1, 2, seed=3)
        assert spec.quorum.a == 2 and spec.quorum.w == 2
        assert spec.seed == 3


class TestValidation:
    def test_unknown_keys_rejected(self):
        payload = SystemSpec().to_dict()
        payload["frobnicate"] = 1
        with pytest.raises(ConfigurationError, match="unknown SystemSpec keys"):
            SystemSpec.from_dict(payload)

    def test_nested_unknown_keys_rejected(self):
        payload = SystemSpec().to_dict()
        payload["code"]["q"] = 3
        with pytest.raises(ConfigurationError, match="unknown CodeSpec keys"):
            SystemSpec.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid spec JSON"):
            SystemSpec.from_json("{nope")

    def test_bad_code(self):
        with pytest.raises(ConfigurationError):
            CodeSpec(n=3, k=5)

    def test_unknown_quorum_kind_deferred_to_build(self):
        # The spec layer stays inert so register_quorum() can extend the
        # declarative surface; unknown kinds fail at registry lookup.
        from repro.api import build_quorum_system

        spec = QuorumSpec(kind="pentagon", size=5)  # constructs fine
        with pytest.raises(ConfigurationError, match="unknown quorum kind"):
            build_quorum_system(spec)

    def test_trapezoid_requires_shape(self):
        with pytest.raises(ConfigurationError, match="needs a, b and h"):
            QuorumSpec(kind="trapezoid", a=1)

    def test_cluster_smaller_than_code_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot host"):
            SystemSpec(code=CodeSpec(n=9, k=6), cluster=ClusterSpec(num_nodes=5))

    def test_exponential_needs_rates(self):
        with pytest.raises(ConfigurationError, match="mtbf"):
            ClusterSpec(num_nodes=5, failure="exponential")

    def test_scenario_ps_bounds(self):
        with pytest.raises(ConfigurationError, match="every p"):
            ScenarioSpec(ps=(1.5,))

    def test_optimize_kind_needs_interior_p(self):
        with pytest.raises(ConfigurationError, match="strictly inside"):
            ScenarioSpec(kind="optimize", ps=(0.5, 1.0))
        with pytest.raises(ConfigurationError, match="max_h"):
            ScenarioSpec(kind="optimize", max_h=-1)
        spec = ScenarioSpec(kind="optimize", ps=(0.5,), max_h=2)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_workload_kind(self):
        with pytest.raises(ConfigurationError, match="unknown workload kind"):
            WorkloadSpec(kind="chaotic")

    def test_replace_revalidates(self):
        spec = SystemSpec()
        with pytest.raises(ConfigurationError):
            spec.replace(code=CodeSpec(n=9, k=6), cluster=ClusterSpec(num_nodes=2))

    def test_w_list_coerced_to_tuple(self):
        q = QuorumSpec(kind="trapezoid", a=2, b=1, h=1, w=[1, 2])
        assert q.w == (1, 2)
        assert QuorumSpec.from_dict(q.to_dict()) == q

    def test_latency_spec_validation(self):
        with pytest.raises(ConfigurationError, match="unknown latency kind"):
            LatencySpec(kind="quantum")
        with pytest.raises(ConfigurationError, match="timeout"):
            LatencySpec(timeout=0.0)
        with pytest.raises(ConfigurationError, match="retries"):
            LatencySpec(retries=-1)

    def test_faultload_spec_validation(self):
        with pytest.raises(ConfigurationError, match="unknown faultload kind"):
            FaultloadSpec(kind="meteor")
        with pytest.raises(ConfigurationError, match="mtbf"):
            FaultloadSpec(kind="churn", mtbf=0.0)
        with pytest.raises(ConfigurationError, match="duration"):
            FaultloadSpec(kind="partition", period=1.0, duration=2.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0, 0.0])
    @pytest.mark.parametrize("field", ["mtbf", "mttr", "period"])
    def test_faultload_rates_reject_nonfinite(self, field, bad):
        # Validated for every kind, not just the one consuming the field:
        # a NaN in a results artifact must fail at load, not at replay.
        with pytest.raises(ConfigurationError, match=field):
            FaultloadSpec(**{field: bad})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.1, 1.1])
    @pytest.mark.parametrize(
        "field", ["byzantine_fraction", "corruption_rate"]
    )
    def test_faultload_fractions_reject_out_of_range(self, field, bad):
        with pytest.raises(ConfigurationError, match=field):
            FaultloadSpec(**{field: bad})

    def test_faultload_duration_rejects_nonfinite(self):
        for bad in (float("nan"), float("inf"), -1.0, 0.0):
            with pytest.raises(ConfigurationError, match="duration"):
                FaultloadSpec(duration=bad)

    def test_byzantine_faultload_round_trip(self):
        fl = FaultloadSpec(
            kind="byzantine",
            byzantine_fraction=0.25,
            corruption_mode="mixed",
            corruption_rate=0.5,
        )
        assert FaultloadSpec.from_dict(fl.to_dict()) == fl
        with pytest.raises(ConfigurationError, match="corruption_mode"):
            FaultloadSpec(kind="byzantine", corruption_mode="gaslight")

    def test_metadata_spec_validation_and_round_trip(self):
        meta = MetadataSpec(nodes=5, quorum="rowa")
        assert MetadataSpec.from_dict(meta.to_dict()) == meta
        with pytest.raises(ConfigurationError, match="nodes"):
            MetadataSpec(nodes=0)
        with pytest.raises(ConfigurationError, match="registry kind"):
            MetadataSpec(quorum="")

    def test_system_spec_metadata_round_trip(self):
        spec = SystemSpec(metadata=MetadataSpec(nodes=3))
        assert SystemSpec.from_dict(spec.to_dict()) == spec
        assert SystemSpec.from_dict(spec.to_dict()).metadata.quorum == "majority"
        # Pre-metadata artifacts (no "metadata" key) must keep loading.
        payload = SystemSpec().to_dict()
        payload.pop("metadata", None)
        assert SystemSpec.from_dict(payload).metadata is None

    def test_latency_scenario_validation(self):
        with pytest.raises(ConfigurationError, match="clients"):
            ScenarioSpec(kind="latency", clients=0)
        with pytest.raises(ConfigurationError, match="think_time"):
            ScenarioSpec(kind="latency", think_time=-0.5)

    def test_pre_runtime_spec_json_still_loads(self):
        """Specs serialized before the latency/faultload fields existed
        (no ``latency`` key, no ``scenario.faultload``) must keep
        loading — results files are long-lived artifacts."""
        payload = SystemSpec().to_dict()
        del payload["latency"]
        del payload["scenario"]["faultload"]
        del payload["scenario"]["clients"]
        del payload["scenario"]["think_time"]
        spec = SystemSpec.from_dict(payload)
        assert spec.latency is None
        assert spec.scenario.faultload is None


class TestExecutionOptions:
    """The advisory execution block: validated, then kept out of identity."""

    def test_absent_block_means_serial(self):
        assert execution_options(None) == {"jobs": 0}

    def test_valid_block(self):
        assert execution_options({"jobs": 4}) == {"jobs": 4}
        assert execution_options({}) == {"jobs": 0}

    @pytest.mark.parametrize(
        "block",
        [
            "4",
            ["jobs"],
            {"jobs": -2},
            {"jobs": 1.5},
            {"jobs": True},
            {"jobs": "many"},
            {"workers": 4},
        ],
    )
    def test_invalid_blocks_rejected(self, block):
        with pytest.raises(ConfigurationError):
            execution_options(block)

    def test_from_dict_strips_execution_block(self):
        spec = SystemSpec.trapezoid(9, 6, 2, 1, 1, 2, seed=3)
        payload = spec.to_dict()
        payload["execution"] = {"jobs": 8}
        again = SystemSpec.from_dict(payload)
        assert again == spec
        assert hash(again) == hash(spec)
        assert "execution" not in again.to_dict()

    def test_from_dict_still_validates_the_block(self):
        payload = SystemSpec().to_dict()
        payload["execution"] = {"jobs": -1}
        with pytest.raises(ConfigurationError, match="jobs"):
            SystemSpec.from_dict(payload)

    def test_from_dict_leaves_caller_dict_untouched(self):
        payload = SystemSpec().to_dict()
        payload["execution"] = {"jobs": 2}
        SystemSpec.from_dict(payload)
        assert payload["execution"] == {"jobs": 2}
