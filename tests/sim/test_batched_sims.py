"""Tests for the batched simulation paths: cached membership matrices,
multi-stripe protocol MC, and multi-stripe trace runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.failures import FailureTrace
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape, default_shape_for_nbnode
from repro.sim import (
    ProtocolMonteCarlo,
    TraceSimConfig,
    TraceSimulation,
    level_membership_matrix,
    mc_write_availability,
)


def quorum_for(n: int, k: int) -> TrapezoidQuorum:
    return TrapezoidQuorum.uniform(default_shape_for_nbnode(n - k + 1))


class TestMembershipCache:
    def test_same_quorum_returns_cached_object(self):
        q = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 2))
        m1 = level_membership_matrix(q)
        m2 = level_membership_matrix(q)
        assert m1 is m2  # cached, not rebuilt

    def test_equal_quorums_share_entry(self):
        q1 = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 2))
        q2 = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 2))
        assert level_membership_matrix(q1) is level_membership_matrix(q2)

    def test_matrix_read_only(self):
        q = TrapezoidQuorum.uniform(TrapezoidShape(1, 3, 1))
        with pytest.raises(ValueError):
            level_membership_matrix(q)[0, 0] = 7

    def test_matrix_contents(self):
        q = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 2))
        m = level_membership_matrix(q)
        assert m.shape == (3, 15)
        assert m.sum() == 15  # every position on exactly one level
        assert np.array_equal(m.sum(axis=1), [3, 5, 7])

    def test_estimator_still_correct(self):
        q = TrapezoidQuorum.uniform(TrapezoidShape(0, 3, 0))
        # Single level of 3 with w0 = 2: availability at p=1 must be 1.
        est = mc_write_availability(q, 1.0, trials=100, rng=0)
        assert est.successes == 100


class TestMultiStripeProtocolMC:
    def test_stripes_multiply_trial_count(self):
        mc = ProtocolMonteCarlo(6, 4, quorum_for(6, 4), rng=0, stripes=3)
        est = mc.read_availability(1.0, trials=10)
        assert est.trials == 30
        assert est.successes == 30

    def test_write_availability_all_up(self):
        mc = ProtocolMonteCarlo(6, 4, quorum_for(6, 4), rng=1, stripes=2)
        est = mc.write_availability(1.0, trials=5)
        assert est.trials == 10 and est.successes == 10

    def test_rotated_layouts_distinct(self):
        mc = ProtocolMonteCarlo(6, 4, quorum_for(6, 4), rng=2, stripes=3)
        layouts = {erc.layout.node_ids for erc in mc.ercs}
        assert len(layouts) == 3

    def test_single_stripe_backcompat(self):
        mc = ProtocolMonteCarlo(6, 4, quorum_for(6, 4), rng=3)
        assert mc.erc is mc.ercs[0] and mc.fr is mc.frs[0]
        assert mc._engine("erc") is mc.erc
        est = mc.read_availability(0.9, trials=20, protocol="fr")
        assert est.trials == 20

    def test_all_down_fails(self):
        mc = ProtocolMonteCarlo(6, 4, quorum_for(6, 4), rng=4, stripes=2)
        est = mc.read_availability(0.0, trials=5)
        assert est.successes == 0

    def test_invalid_stripes(self):
        with pytest.raises(ConfigurationError):
            ProtocolMonteCarlo(6, 4, quorum_for(6, 4), stripes=0)

    def test_decode_plan_cache_used_on_decode_reads(self):
        mc = ProtocolMonteCarlo(6, 4, quorum_for(6, 4), rng=5)
        mc.code.clear_plan_cache()
        mc.cluster.fail(0)  # N_0 down -> reads of block 0 take the decode path
        first = mc.erc.read_block(0)
        second = mc.erc.read_block(0)
        assert first.success and second.success
        assert np.array_equal(first.value, second.value)
        info = mc.code.plan_cache_info()
        # Same survivor set twice: one Gauss-Jordan, then cache hits.
        assert info["misses"] == 1 and info["hits"] >= 1


class TestMultiStripeTraceSim:
    def _trace(self, n: int) -> FailureTrace:
        return FailureTrace(num_nodes=n, events=())

    def test_volume_run_no_failures(self):
        n, k = 6, 4
        config = TraceSimConfig(horizon=50.0, op_rate=1.0, stripes=3)
        sim = TraceSimulation(
            n, k, quorum_for(n, k), self._trace(n), config=config, rng=0
        )
        assert sim.num_logical_blocks == 12
        assert len(sim.protocols) == 3
        tally = sim.run()
        assert tally.consistency_violations == 0
        assert tally.reads_attempted + tally.writes_attempted > 0
        assert tally.reads_succeeded == tally.reads_attempted
        assert tally.writes_succeeded == tally.writes_attempted

    def test_single_stripe_default_unchanged(self):
        n, k = 6, 4
        sim = TraceSimulation(
            n, k, quorum_for(n, k),
            self._trace(n),
            config=TraceSimConfig(horizon=30.0),
            rng=1,
        )
        assert sim.num_logical_blocks == k
        assert sim.protocol is sim.protocols[0]
        tally = sim.run()
        assert tally.consistency_violations == 0

    def test_invalid_stripes_config(self):
        with pytest.raises(ConfigurationError):
            TraceSimConfig(stripes=0)
