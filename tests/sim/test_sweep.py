"""Tests for the experiment sweep utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import exact_read_erc, write_availability
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import availability_sweep, records_to_csv

QUORUM = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)


class TestAvailabilitySweep:
    def test_records_cover_grid_and_methods(self):
        records = availability_sweep(QUORUM, 15, 8, [0.5, 0.9])
        ps = {r.p for r in records}
        metrics = {r.metric for r in records}
        methods = {r.method for r in records}
        assert ps == {0.5, 0.9}
        assert metrics == {"write", "read_fr", "read_erc"}
        assert methods == {"closed_form", "exact"}
        assert len(records) == 2 * 4

    def test_values_match_direct_computation(self):
        records = availability_sweep(QUORUM, 15, 8, [0.6])
        by_key = {(r.metric, r.method): r.value for r in records}
        assert by_key[("write", "closed_form")] == pytest.approx(
            float(write_availability(QUORUM, 0.6))
        )
        assert by_key[("read_erc", "exact")] == pytest.approx(
            float(exact_read_erc(QUORUM, 15, 8, 0.6))
        )

    def test_mc_column_optional(self):
        records = availability_sweep(QUORUM, 15, 8, [0.7], mc_trials=5000, rng=0)
        methods = {r.method for r in records}
        assert "monte_carlo" in methods
        mc_read = next(
            r for r in records if r.method == "monte_carlo" and r.metric == "read_erc"
        )
        assert mc_read.value == pytest.approx(
            float(exact_read_erc(QUORUM, 15, 8, 0.7)), abs=0.05
        )

    def test_mc_trials_validated(self):
        with pytest.raises(ConfigurationError):
            availability_sweep(QUORUM, 15, 8, [0.5], mc_trials=-1)

    def test_scalar_p_accepted(self):
        records = availability_sweep(QUORUM, 15, 8, 0.5)
        assert {r.p for r in records} == {0.5}


class TestSweepParallel:
    """The MC-column fan-out: position-keyed streams, serial-identical."""

    def test_jobs2_identical_to_serial(self):
        serial = availability_sweep(
            QUORUM, 15, 8, [0.6, 0.8], mc_trials=400, rng=7
        )
        parallel = availability_sweep(
            QUORUM, 15, 8, [0.6, 0.8], mc_trials=400, rng=7, jobs=2
        )
        assert parallel == serial

    def test_mc_streams_keyed_by_grid_position(self):
        # Point i's MC stream depends only on (seed, i) — never on what
        # the rest of the grid looks like or which order columns ran.
        long = availability_sweep(
            QUORUM, 15, 8, [0.6, 0.8, 0.9], mc_trials=300, rng=11
        )
        short = availability_sweep(QUORUM, 15, 8, [0.6], mc_trials=300, rng=11)
        mc_long = [r for r in long if r.method == "monte_carlo" and r.p == 0.6]
        mc_short = [r for r in short if r.method == "monte_carlo"]
        assert mc_long == mc_short


class TestCsvRendering:
    def test_csv_shape(self):
        records = availability_sweep(QUORUM, 15, 8, [0.5, 0.8])
        csv = records_to_csv(records)
        lines = csv.strip().split("\n")
        assert lines[0] == "p,metric,method,value"
        assert len(lines) == 1 + len(records)
        for line in lines[1:]:
            parts = line.split(",")
            assert len(parts) == 4
            float(parts[0])
            float(parts[3])
