"""Saturation sweep and queueing sanity: the closed-network behaviour.

The queueing-theory floor: with per-node FIFO servers, measured queue
wait must grow with offered load (the M/D/1-style check of the issue),
and the ops/s-vs-clients curve must rise then flatten — non-degenerate
and deterministic under a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.api import (
    LatencySpec,
    ScenarioRunner,
    ScenarioSpec,
    ServiceTimeSpec,
    ShardingSpec,
    SystemSpec,
    WorkloadSpec,
)
from repro.errors import ConfigurationError
from repro.sim import (
    ClosedLoopConfig,
    SaturationPoint,
    knee_clients,
    queue_summary,
    saturation_sweep,
)
from tests.runtime.test_sharded_runtime import build_sharded

from repro.cluster import FixedServiceTime


def _make_run(clients, service=0.002, ops=240, shards=4):
    sim, _ = build_sharded(
        7, ops, clients, 0.0, 0.5, shards=shards,
        service=FixedServiceTime(service),
    )
    sim.config = ClosedLoopConfig(clients=clients, think_time=0.0, horizon=5000.0)
    return sim


class TestQueueingSanity:
    def test_queue_wait_grows_with_offered_load(self):
        """M/D/1-style: higher arrival pressure => longer measured waits."""
        waits = []
        for clients in (1, 4, 16):
            run = _make_run(clients)
            run.run()
            queues = run.router.shards[0].coordinator.queues
            summary = queue_summary(queues, run.sim.now)
            waits.append(summary["mean_wait"])
        assert waits[0] <= waits[1] <= waits[2]
        assert waits[2] > waits[0]
        assert waits[2] > 0.0

    def test_utilization_grows_with_clients(self):
        utils = []
        for clients in (1, 8):
            run = _make_run(clients)
            run.run()
            queues = run.router.shards[0].coordinator.queues
            utils.append(queue_summary(queues, run.sim.now)["max_utilization"])
        assert 0.0 < utils[0] < utils[1] <= 1.0

    def test_queue_summary_zeros_when_off(self):
        summary = queue_summary(None, 10.0)
        assert summary["nodes"] == 0
        assert summary["mean_wait"] == 0.0
        assert summary["max_utilization"] == 0.0


class TestSaturationSweep:
    def test_throughput_rises_then_flattens(self):
        points = saturation_sweep(_make_run, [1, 2, 4, 8, 16])
        tps = [p.throughput for p in points]
        assert tps[1] > tps[0]  # scaling regime
        # Saturation regime: the last doubling buys less than the first.
        assert tps[-1] / tps[-2] < tps[1] / tps[0]
        assert all(p.ops_completed > 0 for p in points)
        assert all(len(p.per_shard) == 4 for p in points)
        assert all(len(p.trace_hash) == 64 for p in points)

    def test_points_are_json_shaped(self):
        import json

        (point,) = saturation_sweep(_make_run, [2])
        payload = json.dumps(point.to_dict())
        assert "operation_latency" in payload
        assert point.aggregate["operation_latency"]["p95"] > 0

    def test_client_count_validated(self):
        with pytest.raises(ConfigurationError, match="client counts"):
            saturation_sweep(_make_run, [0])

    def test_knee_clients(self):
        def pt(clients, tp):
            return SaturationPoint(
                clients=clients, ops_completed=1, ops_failed=0,
                virtual_duration=1.0, throughput=tp, aggregate={},
                per_shard=[], queues={},
            )

        points = [pt(1, 10.0), pt(2, 19.0), pt(4, 20.0), pt(8, 20.5)]
        assert knee_clients(points) == 2  # 19 >= 0.9 * 20.5
        assert knee_clients(points, threshold=1.0) == 8
        with pytest.raises(ConfigurationError, match="at least one"):
            knee_clients([])
        with pytest.raises(ConfigurationError, match="threshold"):
            knee_clients(points, threshold=0.0)


class TestSaturationScenario:
    SPEC = SystemSpec.trapezoid(
        9, 6, 2, 1, 1, 2,
        latency=LatencySpec(kind="fixed", delay=0.001),
        sharding=ShardingSpec(shards=4),
        service=ServiceTimeSpec(kind="fixed", time=0.002),
        workload=WorkloadSpec(num_ops=160, block_length=16),
        scenario=ScenarioSpec(
            kind="saturation", client_counts=(1, 4, 8), horizon=2000.0
        ),
        seed=23,
    )

    def test_reports_curve_per_shard_and_knee(self):
        data = ScenarioRunner(self.SPEC).run().data
        assert data["shards"] == 4
        assert data["client_counts"] == [1, 4, 8]
        tps = [p["throughput"] for p in data["points"]]
        assert len(set(tps)) == 3  # non-degenerate curve
        assert tps[1] > tps[0]
        assert data["knee_clients"] in (1, 4, 8)
        for point in data["points"]:
            assert len(point["per_shard"]) == 4
            agg = point["aggregate"]
            assert agg["operation_latency"]["p50"] > 0
            assert agg["read_latency"]["p95"] >= agg["read_latency"]["p50"]
        assert len(data["trace_hash"]) == 64

    def test_deterministic_and_json_round_trip(self):
        spec = SystemSpec.from_json(self.SPEC.to_json())
        assert spec == self.SPEC
        first = ScenarioRunner(self.SPEC).run()
        second = ScenarioRunner(spec).run()
        assert first.to_json() == second.to_json()

    def test_default_client_counts(self):
        spec = self.SPEC.replace(
            scenario=ScenarioSpec(kind="saturation", horizon=2000.0),
            workload=WorkloadSpec(num_ops=60, block_length=16),
        )
        data = ScenarioRunner(spec).run().data
        assert data["client_counts"] == [1, 2, 4, 8, 16]


class TestSpecValidation:
    def test_sharding_spec(self):
        assert ShardingSpec().shards == 1
        with pytest.raises(ConfigurationError, match="shards"):
            ShardingSpec(shards=0)
        with pytest.raises(ConfigurationError, match="routing"):
            ShardingSpec(routing="modulo")
        spec = ShardingSpec(shards=4, routing="hash", route_seed=9)
        assert ShardingSpec.from_dict(spec.to_dict()) == spec

    def test_service_spec(self):
        assert ServiceTimeSpec().kind == "none"
        with pytest.raises(ConfigurationError, match="service-time"):
            ServiceTimeSpec(kind="pareto")
        with pytest.raises(ConfigurationError, match="mean"):
            ServiceTimeSpec(kind="exponential", time=0.0)
        spec = ServiceTimeSpec(kind="fixed", time=0.001)
        assert ServiceTimeSpec.from_dict(spec.to_dict()) == spec

    def test_two_tier_latency_spec(self):
        spec = LatencySpec(kind="two_tier", local=0.001, remote=0.01,
                           rack_size=3, jitter=0.1)
        assert LatencySpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigurationError, match="local <= remote"):
            LatencySpec(kind="two_tier", local=0.01, remote=0.001)
        with pytest.raises(ConfigurationError, match="rack_size"):
            LatencySpec(kind="two_tier", rack_size=0)

    def test_client_counts_validated(self):
        with pytest.raises(ConfigurationError, match="client count"):
            ScenarioSpec(kind="saturation", client_counts=(0,))
        with pytest.raises(ConfigurationError, match="empty"):
            ScenarioSpec(kind="saturation", client_counts=())

    def test_system_spec_round_trips_with_sharding(self):
        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            sharding=ShardingSpec(shards=8, routing="hash"),
            service=ServiceTimeSpec(kind="exponential", time=0.0004),
        )
        assert SystemSpec.from_json(spec.to_json()) == spec
        # Old-style documents (no sharding keys) still load.
        plain = SystemSpec.trapezoid(9, 6, 2, 1, 1, 2)
        payload = plain.to_dict()
        del payload["sharding"], payload["service"]
        assert SystemSpec.from_dict(payload) == plain
