"""Tests for the comparative-evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import MajorityProtocol, RowaProtocol, TrapErcProtocol
from repro.erasure import MDSCode
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import ComparisonResult, make_schedule, run_comparison

L = 16


def build_engines():
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(6, L), dtype=np.int64).astype(np.uint8)

    c1 = Cluster(9)
    erc = TrapErcProtocol(c1, MDSCode(9, 6), quorum)
    erc.initialize(data)
    c2 = Cluster(9)
    rowa = RowaProtocol(c2, [0, 6, 7, 8], "cmp")
    rowa.initialize(data[:6])
    c3 = Cluster(9)
    major = MajorityProtocol(c3, [0, 6, 7, 8], "cmp")
    major.initialize(data[:6])
    return {"erc": (c1, erc), "rowa": (c2, rowa), "majority": (c3, major)}


class TestSchedule:
    def test_shape_and_determinism(self):
        s1 = make_schedule(50, 9, 6, rng=3)
        s2 = make_schedule(50, 9, 6, rng=3)
        assert s1 == s2
        assert len(s1) == 50
        for step in s1:
            assert all(0 <= n < 9 for n in step.down)
            assert 0 <= step.block < 6
            assert len(step.down) <= 2

    def test_read_fraction_extremes(self):
        assert all(s.is_read for s in make_schedule(30, 4, 2, read_fraction=1.0, rng=4))
        assert not any(
            s.is_read for s in make_schedule(30, 4, 2, read_fraction=0.0, rng=5)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_schedule(0, 4, 2)
        with pytest.raises(ConfigurationError):
            make_schedule(5, 4, 2, max_down=9)
        with pytest.raises(ConfigurationError):
            make_schedule(5, 4, 2, read_fraction=1.5)


class TestRunComparison:
    def test_tallies_cover_schedule(self):
        engines = build_engines()
        schedule = make_schedule(60, 9, 6, rng=6)
        results = run_comparison(engines, schedule, L)
        reads = sum(s.is_read for s in schedule)
        for name, res in results.items():
            assert res.reads == reads
            assert res.writes == 60 - reads
            assert 0 <= res.reads_ok <= res.reads
            assert 0 <= res.writes_ok <= res.writes

    def test_structural_expectations(self):
        """On the *same* node set ({0,6,7,8} = block 0's ERC group), with
        anti-entropy for ERC: ROWA reads never lose; ROWA writes never
        win."""
        from repro.core import RepairService

        engines = build_engines()
        repair = RepairService(engines["erc"][1])
        # num_blocks=1 pins every op to block 0, whose ERC consistency
        # group coincides with the baselines' replica set.
        schedule = make_schedule(150, 9, 1, max_down=2, rng=7)
        results = run_comparison(
            engines, schedule, L, repair_fns={"erc": repair.sync_all}
        )
        rowa = results["rowa"]
        for name, res in results.items():
            assert rowa.read_availability >= res.read_availability - 1e-12
            assert rowa.write_availability <= res.write_availability + 1e-12
        # ERC pays more messages per write than flat replication on the
        # same 4-node budget (it embeds a read and updates parity nodes).
        assert results["erc"].messages_per_write > results["rowa"].messages_per_write

    def test_erc_without_repair_collapses(self):
        """The staleness collapse is visible through this harness too."""
        from repro.core import RepairService

        schedule = make_schedule(150, 9, 1, max_down=2, read_fraction=0.0, rng=8)
        engines = build_engines()
        bare = run_comparison({"erc": engines["erc"]}, schedule, L)
        engines2 = build_engines()
        repair = RepairService(engines2["erc"][1])
        healed = run_comparison(
            {"erc": engines2["erc"]}, schedule, L, repair_fns={"erc": repair.sync_all}
        )
        assert healed["erc"].write_availability > bare["erc"].write_availability + 0.2

    def test_block_length_validated(self):
        with pytest.raises(ConfigurationError):
            run_comparison({}, [], 0)

    def test_result_properties_no_ops(self):
        res = ComparisonResult(name="idle")
        assert res.read_availability == 1.0
        assert res.write_availability == 1.0
        assert res.messages_per_read == 0.0
        assert res.messages_per_write == 0.0
