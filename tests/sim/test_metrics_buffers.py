"""Chunked numpy sample buffers behind :class:`LatencyTally`.

``LatencySamples`` must be a drop-in for the Python list it replaced
(append/extend/len/iter/max/+/==) while storing samples in float64
chunks; ``percentile_summary`` must produce bit-identical output on its
zero-copy fast path; tally ``merge`` must match element-exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import LatencySamples, LatencyTally, percentile_summary

CHUNK = LatencySamples._CHUNK


class TestLatencySamples:
    def test_list_surface(self):
        buf = LatencySamples()
        buf.append(3.0)
        buf.extend([1.0, 2.0])
        assert len(buf) == 3
        assert list(buf) == [3.0, 1.0, 2.0]
        assert max(buf) == 3.0
        assert buf == [3.0, 1.0, 2.0]
        assert buf == LatencySamples([3.0, 1.0, 2.0])
        assert buf != [3.0, 1.0]

    def test_elements_stay_python_floats(self):
        buf = LatencySamples([0.25])
        assert all(type(x) is float for x in buf)

    def test_crosses_chunk_boundaries(self):
        n = 2 * CHUNK + 17
        values = [float(i) for i in range(n)]
        buf = LatencySamples()
        for v in values[: CHUNK + 3]:
            buf.append(v)
        buf.extend(values[CHUNK + 3 :])
        assert len(buf) == n
        assert list(buf) == values
        np.testing.assert_array_equal(buf.as_array(), np.array(values))

    def test_concatenation(self):
        a = LatencySamples([1.0, 2.0])
        b = LatencySamples([3.0])
        merged = a + b
        assert isinstance(merged, LatencySamples)
        assert list(merged) == [1.0, 2.0, 3.0]
        assert list(a) == [1.0, 2.0]  # inputs untouched

    @given(st.lists(st.floats(0.0, 10.0), max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_percentile_fast_path_bit_identical(self, values):
        assert percentile_summary(LatencySamples(values)) == percentile_summary(
            list(values)
        )

    def test_percentile_fast_path_on_chunked_buffer(self):
        values = [float(i % 97) / 7.0 for i in range(3 * CHUNK + 5)]
        assert percentile_summary(LatencySamples(values)) == percentile_summary(
            values
        )

    def test_empty(self):
        buf = LatencySamples()
        assert len(buf) == 0
        assert list(buf) == []
        assert percentile_summary(buf) == {
            "count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }


class TestTallyMerge:
    @given(
        shards=st.lists(
            st.lists(st.floats(0.0, 5.0), max_size=40), min_size=1, max_size=5
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_matches_elementwise_concatenation(self, shards):
        """Merged shard tallies equal the flat concatenation, exactly."""
        total = LatencyTally()
        for samples in shards:
            part = LatencyTally()
            for x in samples:
                part.read_latencies.append(x)
                part.write_latencies.append(x * 2.0)
            part.reads_attempted = len(samples)
            total.merge(part)
        flat = [x for samples in shards for x in samples]
        assert list(total.read_latencies) == flat
        assert list(total.write_latencies) == [x * 2.0 for x in flat]
        assert total.reads_attempted == sum(len(s) for s in shards)
        assert total.operation_percentiles() == percentile_summary(
            flat + [x * 2.0 for x in flat]
        )

    def test_merge_across_chunk_boundary(self):
        a = LatencyTally()
        b = LatencyTally()
        for i in range(CHUNK - 1):
            a.read_latencies.append(float(i))
        for i in range(10):
            b.read_latencies.append(float(1000 + i))
        a.merge(b)
        assert list(a.read_latencies) == [float(i) for i in range(CHUNK - 1)] + [
            float(1000 + i) for i in range(10)
        ]

    def test_summary_uses_buffers(self):
        tally = LatencyTally()
        tally.reads_attempted = tally.reads_succeeded = 2
        tally.read_latencies.extend([0.5, 1.5])
        summary = tally.summary()
        assert summary["read_latency"]["count"] == 2.0
        assert summary["read_latency"]["p50"] == 1.0
