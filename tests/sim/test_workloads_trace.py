"""Tests for workload generators and the history-model trace simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import FailureTrace, exponential_trace
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import (
    OpKind,
    TraceSimConfig,
    TraceSimulation,
    sequential_workload,
    uniform_workload,
    vm_disk_workload,
    zipf_workload,
)

QUORUM = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)  # (7,4) stripes


class TestWorkloads:
    def test_uniform_counts_and_range(self):
        ops = uniform_workload(500, 8, read_fraction=0.5, rng=0)
        assert len(ops) == 500
        assert all(0 <= op.block < 8 for op in ops)
        reads = sum(op.kind is OpKind.READ for op in ops)
        assert 180 < reads < 320  # ~50%

    def test_uniform_read_fraction_extremes(self):
        assert all(
            op.kind is OpKind.READ for op in uniform_workload(50, 4, 1.0, rng=1)
        )
        assert all(
            op.kind is OpKind.WRITE for op in uniform_workload(50, 4, 0.0, rng=2)
        )

    def test_sequential_round_robin(self):
        ops = sequential_workload(10, 4, rng=3)
        assert [op.block for op in ops] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_zipf_skew(self):
        ops = zipf_workload(4000, 16, alpha=1.5, rng=4)
        counts = np.bincount([op.block for op in ops], minlength=16)
        assert counts[0] > counts[8] > 0 or counts[8] == 0
        assert counts[0] > 4000 / 16  # head hotter than uniform

    def test_zipf_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_workload(10, 4, alpha=0.0)

    def test_vm_disk_properties(self):
        ops = vm_disk_workload(600, 32, rng=5)
        assert len(ops) == 600
        assert all(0 <= op.block < 32 for op in ops)
        # bursts guarantee a healthy share of writes
        writes = sum(op.kind is OpKind.WRITE for op in ops)
        assert writes > 100

    def test_vm_disk_validation(self):
        with pytest.raises(ConfigurationError):
            vm_disk_workload(10, 4, burst_length=0)
        with pytest.raises(ConfigurationError):
            vm_disk_workload(10, 4, hot_fraction=0.0)

    def test_common_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_workload(0, 4)
        with pytest.raises(ConfigurationError):
            uniform_workload(10, 0)
        with pytest.raises(ConfigurationError):
            uniform_workload(10, 4, read_fraction=1.5)

    def test_payload_seeds_vary(self):
        ops = uniform_workload(100, 4, read_fraction=0.0, rng=6)
        assert len({op.payload_seed for op in ops}) > 90


class TestTraceSimConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceSimConfig(horizon=0)
        with pytest.raises(ConfigurationError):
            TraceSimConfig(op_rate=0)
        with pytest.raises(ConfigurationError):
            TraceSimConfig(read_fraction=2.0)
        with pytest.raises(ConfigurationError):
            TraceSimConfig(repair_interval=0.0)


class TestTraceSimulation:
    def test_no_failures_everything_succeeds(self):
        trace = FailureTrace(7, [])
        sim = TraceSimulation(
            7, 4, QUORUM, trace, TraceSimConfig(horizon=100.0, op_rate=1.0), rng=7
        )
        tally = sim.run()
        assert tally.reads_attempted + tally.writes_attempted > 50
        assert tally.reads_succeeded == tally.reads_attempted
        assert tally.writes_succeeded == tally.writes_attempted
        assert tally.consistency_violations == 0
        assert tally.messages > 0

    def test_trace_size_validated(self):
        with pytest.raises(ConfigurationError):
            TraceSimulation(7, 4, QUORUM, FailureTrace(5, []))

    def test_failures_reduce_availability_but_not_consistency(self):
        trace = exponential_trace(7, mtbf=20.0, mttr=20.0, horizon=400.0, rng=8)
        sim = TraceSimulation(
            7, 4, QUORUM, trace, TraceSimConfig(horizon=400.0, op_rate=2.0), rng=9
        )
        tally = sim.run()
        assert tally.consistency_violations == 0
        assert tally.reads_succeeded < tally.reads_attempted  # some failures

    def test_repair_improves_over_no_repair(self):
        # Same trace and workload, with and without anti-entropy: the
        # repaired run must succeed at least as often (staleness shrinks
        # the usable quorum pool without repair).
        trace = exponential_trace(7, mtbf=30.0, mttr=10.0, horizon=600.0, rng=10)
        base_cfg = dict(horizon=600.0, op_rate=1.5, read_fraction=0.4)
        no_repair = TraceSimulation(
            7, 4, QUORUM, trace, TraceSimConfig(**base_cfg), rng=11
        ).run()
        with_repair = TraceSimulation(
            7, 4, QUORUM, trace, TraceSimConfig(**base_cfg, repair_interval=25.0), rng=11
        ).run()
        assert with_repair.repairs > 0
        total_no = no_repair.reads_succeeded + no_repair.writes_succeeded
        total_yes = with_repair.reads_succeeded + with_repair.writes_succeeded
        assert total_yes >= total_no
        assert with_repair.consistency_violations == 0
        assert no_repair.consistency_violations == 0

    def test_custom_workload_drives_ops(self):
        from repro.sim import Operation

        trace = FailureTrace(7, [])
        workload = [Operation(OpKind.WRITE, 0, 123), Operation(OpKind.READ, 0, 0)]
        sim = TraceSimulation(
            7,
            4,
            QUORUM,
            trace,
            TraceSimConfig(horizon=50.0, op_rate=1.0),
            workload=workload,
            rng=12,
        )
        tally = sim.run()
        # alternating write/read workload: roughly half and half
        assert tally.writes_attempted >= 1
        assert tally.reads_attempted >= 1

    def test_summary_keys(self):
        trace = FailureTrace(7, [])
        sim = TraceSimulation(
            7, 4, QUORUM, trace, TraceSimConfig(horizon=30.0, op_rate=1.0), rng=13
        )
        tally = sim.run()
        summary = tally.summary()
        for key in (
            "read_availability",
            "write_availability",
            "decode_fraction",
            "consistency_violations",
            "repairs",
            "messages",
        ):
            assert key in summary
