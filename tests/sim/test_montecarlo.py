"""Tests for the vectorized Monte-Carlo estimators and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    exact_read_erc,
    read_availability_fr,
    write_availability,
)
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import (
    MCEstimate,
    level_membership_matrix,
    mc_read_availability_erc,
    mc_read_availability_fr,
    mc_write_availability,
)

SHAPE = TrapezoidShape(2, 3, 1)  # the calibrated Fig-3 trapezoid (n=15, k=8)
QUORUM = TrapezoidQuorum.uniform(SHAPE, 3)
TRIALS = 60_000


class TestMCEstimate:
    def test_mean(self):
        assert MCEstimate(25, 100).mean == 0.25

    def test_ci_contains_mean(self):
        est = MCEstimate(250, 1000)
        lo, hi = est.ci95()
        assert lo <= est.mean <= hi

    def test_ci_shrinks_with_trials(self):
        small = MCEstimate(25, 100)
        large = MCEstimate(2500, 10000)
        assert (large.ci95()[1] - large.ci95()[0]) < (
            small.ci95()[1] - small.ci95()[0]
        )

    def test_extreme_proportions_stay_in_unit_interval(self):
        lo, hi = MCEstimate(0, 50).ci95()
        assert lo == pytest.approx(0.0, abs=1e-12) and hi < 0.2
        lo, hi = MCEstimate(50, 50).ci95()
        assert hi == pytest.approx(1.0, abs=1e-12) and lo > 0.8

    def test_wider_z_widens_interval(self):
        est = MCEstimate(400, 1000)
        lo95, hi95 = est.ci(1.96)
        lo4, hi4 = est.ci(4.0)
        assert lo4 < lo95 and hi4 > hi95

    def test_contains(self):
        est = MCEstimate(500, 1000)
        assert est.contains(0.5)
        assert not est.contains(0.9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MCEstimate(1, 0)
        with pytest.raises(ConfigurationError):
            MCEstimate(5, 4)


class TestLevelMembership:
    def test_matrix_shape_and_partition(self):
        m = level_membership_matrix(QUORUM)
        assert m.shape == (2, 8)
        assert np.all(m.sum(axis=0) == 1)  # each position on exactly one level
        assert m.sum(axis=1).tolist() == [3, 5]


class TestWriteMC:
    @pytest.mark.parametrize("p", [0.3, 0.5, 0.8, 0.95])
    def test_matches_closed_form(self, p):
        est = mc_write_availability(QUORUM, p, trials=TRIALS, rng=1)
        assert est.contains(float(write_availability(QUORUM, p)), z=4)

    def test_extremes(self):
        assert mc_write_availability(QUORUM, 1.0, trials=500, rng=2).mean == 1.0
        assert mc_write_availability(QUORUM, 0.0, trials=500, rng=3).mean == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mc_write_availability(QUORUM, 1.5, trials=10)
        with pytest.raises(ConfigurationError):
            mc_write_availability(QUORUM, 0.5, trials=0)


class TestReadMC:
    @pytest.mark.parametrize("p", [0.3, 0.5, 0.8, 0.95])
    def test_fr_matches_closed_form(self, p):
        est = mc_read_availability_fr(QUORUM, p, trials=TRIALS, rng=4)
        assert est.contains(float(read_availability_fr(QUORUM, p)), z=4)

    @pytest.mark.parametrize("p", [0.3, 0.5, 0.8, 0.95])
    def test_erc_matches_exact_enumeration(self, p):
        # The MC samples the exact Algorithm-2 predicate, so it must agree
        # with exact_read_erc (not with the paper's approximate eq. 13).
        est = mc_read_availability_erc(QUORUM, 15, 8, p, trials=TRIALS, rng=5)
        assert est.contains(float(exact_read_erc(QUORUM, 15, 8, p)), z=4)

    def test_erc_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            mc_read_availability_erc(QUORUM, 12, 8, 0.5, trials=10)

    def test_erc_extremes(self):
        assert mc_read_availability_erc(QUORUM, 15, 8, 1.0, trials=500, rng=6).mean == 1.0
        assert mc_read_availability_erc(QUORUM, 15, 8, 0.0, trials=500, rng=7).mean == 0.0

    def test_reproducible_with_same_seed(self):
        a = mc_read_availability_erc(QUORUM, 15, 8, 0.6, trials=5000, rng=42)
        b = mc_read_availability_erc(QUORUM, 15, 8, 0.6, trials=5000, rng=42)
        assert a.successes == b.successes
