"""Protocol-level Monte Carlo vs analysis: the strongest agreement check."""

from __future__ import annotations

import pytest

from repro.analysis import exact_read_erc, read_availability_fr, write_availability
from repro.errors import ConfigurationError
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import ProtocolMonteCarlo

# Small configuration so several hundred full protocol executions are fast:
# (7, 4): Nbnode = 4, shape (2, 1, 1) -> levels (1, 3).
SHAPE = TrapezoidShape(2, 1, 1)
QUORUM = TrapezoidQuorum.uniform(SHAPE, 2)


@pytest.fixture(scope="module")
def mc() -> ProtocolMonteCarlo:
    return ProtocolMonteCarlo(7, 4, QUORUM, rng=11)


class TestProtocolReadAvailability:
    @pytest.mark.parametrize("p", [0.5, 0.8])
    def test_erc_read_matches_exact(self, mc, p):
        est = mc.read_availability(p, trials=600, protocol="erc")
        assert est.contains(float(exact_read_erc(QUORUM, 7, 4, p)), z=4), str(est)

    @pytest.mark.parametrize("p", [0.5, 0.8])
    def test_fr_read_matches_eq10(self, mc, p):
        est = mc.read_availability(p, trials=600, protocol="fr")
        assert est.contains(float(read_availability_fr(QUORUM, p)), z=4), str(est)

    def test_read_block_parameter(self, mc):
        est = mc.read_availability(0.9, trials=200, protocol="erc", block=3)
        assert est.mean > 0.8


class TestProtocolWriteAvailability:
    @pytest.mark.parametrize("p", [0.6, 0.9])
    def test_erc_write_matches_eq9(self, mc, p):
        est = mc.write_availability(p, trials=250, protocol="erc")
        assert est.contains(float(write_availability(QUORUM, p)), z=4), str(est)

    def test_fr_write_matches_eq8(self, mc):
        est = mc.write_availability(0.7, trials=250, protocol="fr")
        assert est.contains(float(write_availability(QUORUM, 0.7)), z=4), str(est)

    def test_write_erc_equals_fr_statistically(self, mc):
        # Eq. 8 == eq. 9: same write availability for both protocols.
        erc = mc.write_availability(0.7, trials=250, protocol="erc")
        fr = mc.write_availability(0.7, trials=250, protocol="fr")
        lo_e, hi_e = erc.ci95()
        lo_f, hi_f = fr.ci95()
        assert max(lo_e, lo_f) <= min(hi_e, hi_f), "CIs must overlap"


class TestValidation:
    def test_bad_protocol_name(self, mc):
        with pytest.raises(ConfigurationError):
            mc.read_availability(0.5, trials=10, protocol="raid")

    def test_bad_p(self, mc):
        with pytest.raises(ConfigurationError):
            mc.read_availability(1.5, trials=10)
        with pytest.raises(ConfigurationError):
            mc.write_availability(-0.1, trials=10)
