"""Closed-loop event-driven simulation: concurrency, metrics, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    FaultloadSpec,
    LatencySpec,
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    WorkloadSpec,
)
from repro.cluster import Cluster, Simulator
from repro.cluster.failures import exponential_trace
from repro.cluster.network import FixedLatency, Network
from repro.cluster.rng import make_rng
from repro.core.trap_erc import TrapErcProtocol
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.runtime import EventCoordinator, RetryPolicy
from repro.sim import (
    ClosedLoopConfig,
    ClosedLoopSimulation,
    PartitionWindow,
    percentile_summary,
    uniform_workload,
)
from repro.errors import ConfigurationError


class TestPercentileSummary:
    def test_empty_is_zeros(self):
        assert percentile_summary([]) == {
            "count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_orders(self):
        s = percentile_summary(range(1, 101))
        assert s["count"] == 100
        assert s["p50"] <= s["p95"] <= s["p99"]
        assert s["p50"] == pytest.approx(50.5)


def build_sim(seed=0, clients=5, ops=120, think=0.02, trace=None, partitions=None):
    network = Network(latency=FixedLatency(0.001))
    cluster = Cluster(9, network=network)
    simulator = Simulator()
    coordinator = EventCoordinator(
        cluster, simulator, rng=seed, policy=RetryPolicy(timeout=0.05),
        record_trace=True,
    )
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    engine = TrapErcProtocol(cluster, MDSCode(9, 6), quorum, coordinator=coordinator)
    engine.initialize(
        make_rng(1).integers(0, 256, size=(6, 8), dtype=np.int64).astype(np.uint8)
    )
    cluster.reset_stats()  # drop the instant-path bootstrap traffic
    workload = uniform_workload(ops, 6, 0.5, rng=make_rng(2))
    return ClosedLoopSimulation(
        cluster, engine, coordinator, workload,
        config=ClosedLoopConfig(clients=clients, think_time=think, horizon=100.0),
        trace=trace, partitions=partitions,
    ), coordinator


class TestClosedLoopSimulation:
    def test_operations_genuinely_concurrent(self):
        sim, coordinator = build_sim(clients=5, think=0.0)
        tally = sim.run()
        assert coordinator.max_in_flight == 5
        assert tally.reads_attempted + tally.writes_attempted == 120

    def test_healthy_cluster_all_ops_succeed_with_latency_samples(self):
        # think_time spaces the clients out so no two writers collide.
        sim, _ = build_sim(clients=1, ops=60)
        tally = sim.run()
        assert tally.reads_succeeded == tally.reads_attempted
        assert tally.writes_succeeded == tally.writes_attempted
        assert tally.consistency_violations == 0
        assert len(tally.read_latencies) == tally.reads_succeeded
        # ERC write = embedded read + 2 write rounds: strictly slower.
        assert tally.write_percentiles()["p50"] > tally.read_percentiles()["p50"]

    def test_per_round_message_counts(self):
        sim, _ = build_sim(clients=2, ops=60)
        tally = sim.run()
        rounds = tally.round_messages
        assert rounds["version-query"] > 0
        assert rounds["write"] > 0
        assert tally.messages == sum(rounds.values())

    def test_same_seed_identical_results_and_trace(self):
        sim1, coord1 = build_sim(seed=5)
        sim2, coord2 = build_sim(seed=5)
        assert sim1.run().summary() == sim2.run().summary()
        assert coord1.trace_hash() == coord2.trace_hash()

    def test_churn_faultload_costs_availability(self):
        trace = exponential_trace(9, mtbf=0.5, mttr=0.5, horizon=100.0, rng=make_rng(3))
        sim, _ = build_sim(trace=trace, ops=200, think=0.05)
        tally = sim.run()
        assert tally.writes_succeeded < tally.writes_attempted
        assert tally.consistency_violations == 0

    def test_partition_window_causes_timeouts_then_heals(self):
        windows = [PartitionWindow(0.0, 1.0, (6, 7))]
        sim, _ = build_sim(partitions=windows, ops=100, think=0.02)
        tally = sim.run()
        assert tally.timeouts > 0
        assert tally.messages_dropped > 0
        # Writes need w_1 = 2 of the 3 parities: the 2-node partition
        # blocks them, and the stale survivors keep rejecting deltas even
        # after the heal (the documented no-anti-entropy collapse). Reads
        # ride level 0 + the direct path throughout.
        assert tally.writes_succeeded == 0
        assert tally.reads_succeeded == tally.reads_attempted
        assert tally.consistency_violations == 0
        # Failed writes are bounded by the timeout policy, not stragglers.
        assert max(tally.failed_write_latencies) < 0.2

    def test_partition_window_validation(self):
        with pytest.raises(ConfigurationError, match="end > start"):
            PartitionWindow(5.0, 5.0, (1,))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="clients"):
            ClosedLoopConfig(clients=0)
        with pytest.raises(ConfigurationError, match="think_time"):
            ClosedLoopConfig(think_time=-1.0)


class TestLatencyScenarioKind:
    """The facade surface: spec -> runner -> tidy percentile results."""

    def make_spec(self, **scenario_kwargs) -> SystemSpec:
        scenario = dict(
            kind="latency", clients=4, think_time=0.05, horizon=30.0,
        )
        scenario.update(scenario_kwargs)
        return SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            latency=LatencySpec(kind="fixed", delay=0.001),
            workload=WorkloadSpec(num_ops=80, block_length=16),
            scenario=ScenarioSpec(**scenario),
            seed=21,
        )

    def test_round_trips_and_reproduces(self):
        spec = self.make_spec(
            faultload=FaultloadSpec(kind="churn", mtbf=3.0, mttr=0.5)
        )
        replay = SystemSpec.from_json(spec.to_json())
        assert replay == spec
        r1 = ScenarioRunner(spec).run()
        r2 = ScenarioRunner(replay).run()
        assert r1.to_dict() == r2.to_dict()
        summary = r1.data["summary"]
        assert summary["read_latency"]["p95"] >= summary["read_latency"]["p50"] > 0
        assert r1.data["trace_hash"] == r2.data["trace_hash"]

    @pytest.mark.parametrize("protocol", ["trap-erc", "trap-fr", "rowa", "majority"])
    def test_every_registry_engine_runs_event_driven(self, protocol):
        result = ScenarioRunner(self.make_spec().replace(protocol=protocol)).run()
        summary = result.data["summary"]
        assert summary["read_availability"] > 0.9
        assert summary["max_in_flight"] >= 2

    def test_partition_faultload_reported(self):
        spec = self.make_spec(
            faultload=FaultloadSpec(
                kind="partition", partition_size=2, period=1.0, duration=0.4
            )
        )
        result = ScenarioRunner(spec).run()
        assert result.data["summary"]["timeouts"] > 0
        assert result.data["faultload"]["kind"] == "partition"

    def test_repair_interval_wires_anti_entropy(self):
        spec = self.make_spec(
            think_time=0.2,
            repair_interval=0.5,
            faultload=FaultloadSpec(kind="churn", mtbf=2.0, mttr=1.0),
        )
        result = ScenarioRunner(spec).run()
        # repairs may legitimately be zero on a lucky trace, but the
        # scenario must run and stay consistent under churn + repair.
        assert result.data["summary"]["consistency_violations"] == 0

    def test_different_seeds_different_traces(self):
        h1 = ScenarioRunner(self.make_spec()).run().data["trace_hash"]
        h2 = ScenarioRunner(self.make_spec().replace(seed=22)).run().data["trace_hash"]
        assert h1 != h2
