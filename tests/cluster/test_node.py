"""Tests for the fail-stop versioned storage node."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import StorageNode
from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError


@pytest.fixture
def node() -> StorageNode:
    return StorageNode(3)


def payload(seed: int = 0, length: int = 16) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, length, dtype=np.int64).astype(np.uint8)


class TestDataRecords:
    def test_put_and_read(self, node):
        buf = payload(1)
        node.put_data("k", buf, 0)
        got, version = node.read_data("k")
        assert np.array_equal(got, buf)
        assert version == 0

    def test_read_returns_copy(self, node):
        buf = payload(2)
        node.put_data("k", buf, 0)
        got, _ = node.read_data("k")
        got[0] ^= 0xFF
        again, _ = node.read_data("k")
        assert np.array_equal(again, buf)

    def test_put_copies_input(self, node):
        buf = payload(3)
        node.put_data("k", buf, 0)
        buf[0] ^= 0xFF
        got, _ = node.read_data("k")
        assert got[0] == payload(3)[0]

    def test_write_monotonic_guard(self, node):
        node.put_data("k", payload(4), 5)
        with pytest.raises(StaleNodeError):
            node.write_data("k", payload(5), 5)
        with pytest.raises(StaleNodeError):
            node.write_data("k", payload(5), 4)
        node.write_data("k", payload(5), 6)
        assert node.data_version("k") == 6

    def test_write_fresh_key(self, node):
        node.write_data("new", payload(6), 0)
        assert node.data_version("new") == 0

    def test_version_of_missing_key_is_minus_one(self, node):
        assert node.data_version("nope") == -1

    def test_read_missing_key_raises(self, node):
        with pytest.raises(KeyError):
            node.read_data("nope")

    def test_stats_counting(self, node):
        node.put_data("k", payload(7), 0)
        node.read_data("k")
        node.data_version("k")
        assert node.stats.writes == 1
        assert node.stats.reads == 1
        assert node.stats.version_queries == 1


class TestParityRecords:
    def test_put_and_read(self, node):
        buf = payload(8)
        vv = np.zeros(4, dtype=np.int64)
        node.put_parity("p", buf, vv)
        got, versions = node.read_parity("p")
        assert np.array_equal(got, buf)
        assert np.array_equal(versions, vv)

    def test_apply_delta_updates_payload_and_version(self, node):
        buf = payload(9)
        node.put_parity("p", buf, np.zeros(4, dtype=np.int64))
        delta = payload(10)
        node.apply_delta("p", 2, delta, expected_version=0, new_version=1)
        got, versions = node.read_parity("p")
        assert np.array_equal(got, buf ^ delta)
        assert versions.tolist() == [0, 0, 1, 0]

    def test_apply_delta_stale_guard(self, node):
        node.put_parity("p", payload(11), np.zeros(4, dtype=np.int64))
        with pytest.raises(StaleNodeError):
            node.apply_delta("p", 1, payload(12), expected_version=3, new_version=4)
        assert node.stats.stale_rejections == 1

    def test_apply_delta_missing_record(self, node):
        with pytest.raises(StaleNodeError):
            node.apply_delta("p", 0, payload(13), expected_version=0, new_version=1)

    def test_apply_delta_contribution_bounds(self, node):
        node.put_parity("p", payload(14), np.zeros(4, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            node.apply_delta("p", 4, payload(15), expected_version=0, new_version=1)

    def test_apply_delta_version_order(self, node):
        node.put_parity("p", payload(16), np.zeros(4, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            node.apply_delta("p", 0, payload(17), expected_version=1, new_version=1)

    def test_apply_delta_shape_guard(self, node):
        node.put_parity("p", payload(18), np.zeros(4, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            node.apply_delta("p", 0, payload(19, length=8), expected_version=0, new_version=1)

    def test_parity_versions_missing(self, node):
        assert node.parity_versions("nope") is None

    def test_versions_returned_as_copy(self, node):
        node.put_parity("p", payload(20), np.zeros(4, dtype=np.int64))
        vv = node.parity_versions("p")
        vv[0] = 99
        assert node.parity_versions("p")[0] == 0


class TestFailStop:
    def test_fail_blocks_all_rpcs(self, node):
        node.put_data("k", payload(21), 0)
        node.fail()
        for call in (
            lambda: node.read_data("k"),
            lambda: node.data_version("k"),
            lambda: node.write_data("k", payload(22), 1),
            lambda: node.put_data("k2", payload(22), 0),
            lambda: node.parity_versions("p"),
        ):
            with pytest.raises(NodeUnavailableError):
                call()
        assert node.stats.failed_rpcs == 5

    def test_recover_keeps_data(self, node):
        node.put_data("k", payload(23), 7)
        node.fail()
        node.recover()
        got, version = node.read_data("k")
        assert version == 7
        assert np.array_equal(got, payload(23))

    def test_recover_with_wipe(self, node):
        node.put_data("k", payload(24), 7)
        node.fail()
        node.recover(wipe=True)
        assert node.data_version("k") == -1
        assert node.keys() == set()

    def test_keys_inspection_works_when_down(self, node):
        node.put_data("k", payload(25), 0)
        node.fail()
        assert node.keys() == {"k"}
        assert node.has_key("k")
