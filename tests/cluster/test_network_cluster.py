"""Tests for the network fabric, failure models and cluster facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    BernoulliSnapshot,
    Cluster,
    EventKind,
    FailureEvent,
    FailureTrace,
    FixedLatency,
    Network,
    Simulator,
    TwoTierLatency,
    UniformLatency,
    exponential_trace,
    make_rng,
    spawn_rngs,
)
from repro.errors import ConfigurationError, NodeUnavailableError, SimulationError


def payload(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, 16, dtype=np.int64).astype(np.uint8)


class TestNetwork:
    def test_rpc_counts_messages(self):
        cluster = Cluster(3)
        cluster.rpc(0, "put_data", "k", payload(), 0)
        assert cluster.network.stats.messages == 2
        assert cluster.network.stats.by_kind["put_data"] == 1
        assert cluster.network.stats.bytes_sent == 16

    def test_rpc_to_failed_node(self):
        cluster = Cluster(3)
        cluster.fail(1)
        with pytest.raises(NodeUnavailableError):
            cluster.rpc(1, "data_version", "k")
        assert cluster.network.stats.rpc_failures == 1

    def test_partition_blocks_reachable_node(self):
        cluster = Cluster(3)
        cluster.network.partition([2])
        with pytest.raises(NodeUnavailableError):
            cluster.rpc(2, "data_version", "k")
        cluster.network.heal()
        assert cluster.rpc(2, "data_version", "k") == -1

    def test_partial_heal(self):
        net = Network()
        net.partition([0, 1])
        net.heal([0])
        cluster = Cluster(2, network=net)
        assert net.is_reachable(cluster.node(0))
        assert not net.is_reachable(cluster.node(1))

    def test_message_delay_accumulates(self):
        net = Network(latency=FixedLatency(0.001))
        cluster = Cluster(2, network=net)
        cluster.rpc(0, "data_version", "k")
        cluster.rpc(1, "data_version", "k")
        # Sum over messages — a traffic proxy, not an operation latency.
        assert net.stats.total_message_delay == pytest.approx(0.004)

    def test_virtual_latency_alias_removed(self):
        # The deprecated pre-runtime alias for ``total_message_delay``
        # completed its removal cycle (docs/RUNTIME.md, "Accounting").
        net = Network(latency=FixedLatency(0.001))
        cluster = Cluster(2, network=net)
        cluster.rpc(0, "data_version", "k")
        assert not hasattr(net.stats, "virtual_latency")
        with pytest.raises(AttributeError):
            net.stats.virtual_latency

    def test_round_latency_is_max_of_parallel(self):
        net = Network(latency=FixedLatency(0.001))
        cluster = Cluster(2, network=net)
        cluster.rpc(0, "data_version", "k")
        assert net.last_rpc_delay == pytest.approx(0.002)
        net.record_round(net.last_rpc_delay)
        assert net.stats.operation_latency == pytest.approx(0.002)
        assert net.stats.rounds == 1

    def test_uniform_latency_bounds(self):
        model = UniformLatency(0.001, 0.002)
        rng = make_rng(0)
        for _ in range(50):
            assert 0.001 <= model.sample(rng) <= 0.002

    def test_stats_reset(self):
        cluster = Cluster(2)
        cluster.rpc(0, "data_version", "k")
        cluster.reset_stats()
        assert cluster.network.stats.messages == 0


class TestTwoTierLatency:
    def test_ragged_last_rack(self):
        # rack_size = 3 over 7 nodes: racks {0,1,2}, {3,4,5}, {6}. The
        # short trailing rack is still a rack of its own.
        model = TwoTierLatency(local=0.001, remote=0.01, rack_size=3)
        rng = make_rng(0)
        assert model.rack_of(6) == 2
        assert model.sample_link(rng, 6, 6) == pytest.approx(0.001)
        assert model.sample_link(rng, 5, 6) == pytest.approx(0.01)
        assert model.sample_link(rng, 3, 5) == pytest.approx(0.001)

    def test_single_rack_degeneracy(self):
        # rack_size >= cluster size: every on-cluster leg is local; only
        # off-cluster endpoints pay the remote tier.
        model = TwoTierLatency(local=0.001, remote=0.01, rack_size=100)
        rng = make_rng(1)
        for src in range(5):
            for dst in range(5):
                assert model.sample_link(rng, src, dst) == pytest.approx(0.001)
        assert model.sample_link(rng, None, 0) == pytest.approx(0.01)
        assert model.sample_link(rng, 0, -1) == pytest.approx(0.01)

    def test_sample_link_symmetric(self):
        # Tier selection depends only on the rack pair, not direction.
        model = TwoTierLatency(local=0.001, remote=0.01, rack_size=2)
        rng = make_rng(2)
        pairs = [(0, 1), (1, 0), (0, 2), (2, 0), (3, 2), (2, 3)]
        for src, dst in pairs:
            forward = model.sample_link(rng, src, dst)
            backward = model.sample_link(rng, dst, src)
            assert forward == pytest.approx(backward)
        # Same-rack pairs sit on the local tier, cross-rack on remote.
        assert model.sample_link(rng, 0, 1) < model.sample_link(rng, 0, 2)

    def test_jitter_stays_within_band(self):
        model = TwoTierLatency(
            local=0.001, remote=0.01, rack_size=2, jitter=0.5
        )
        rng = make_rng(3)
        for _ in range(200):
            local = model.sample_link(rng, 0, 1)
            remote = model.sample_link(rng, 0, 2)
            assert 0.0005 <= local <= 0.0015
            assert 0.005 <= remote <= 0.015


class TestCluster:
    def test_size_and_ids(self):
        cluster = Cluster(5)
        assert len(cluster) == 5
        assert cluster.alive_ids == [0, 1, 2, 3, 4]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Cluster(0)
        with pytest.raises(ConfigurationError):
            Cluster(3).node(3)

    def test_fail_recover(self):
        cluster = Cluster(4)
        cluster.fail_many([1, 3])
        assert cluster.failed_ids == [1, 3]
        cluster.recover(1)
        assert cluster.failed_ids == [3]
        cluster.recover_all()
        assert cluster.failed_ids == []

    def test_apply_alive_vector(self):
        cluster = Cluster(4)
        cluster.apply_alive_vector(np.array([True, False, True, False]))
        assert cluster.alive_ids == [0, 2]
        cluster.apply_alive_vector(np.array([False, True, True, True]))
        assert cluster.alive_ids == [1, 2, 3]

    def test_apply_alive_vector_shape_check(self):
        with pytest.raises(ConfigurationError):
            Cluster(3).apply_alive_vector(np.array([True, False]))


class TestBernoulliSnapshot:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BernoulliSnapshot(1.5, 3)
        with pytest.raises(ConfigurationError):
            BernoulliSnapshot(0.5, 0)

    def test_extreme_p(self):
        rng = make_rng(1)
        assert BernoulliSnapshot(1.0, 5).sample(rng).all()
        assert not BernoulliSnapshot(0.0, 5).sample(rng).any()

    def test_sample_many_shape(self):
        out = BernoulliSnapshot(0.5, 7).sample_many(100, make_rng(2))
        assert out.shape == (100, 7)
        assert out.dtype == bool

    def test_sample_many_mean_close_to_p(self):
        out = BernoulliSnapshot(0.7, 10).sample_many(20000, make_rng(3))
        assert abs(out.mean() - 0.7) < 0.01

    def test_trials_validation(self):
        with pytest.raises(ConfigurationError):
            BernoulliSnapshot(0.5, 3).sample_many(0, make_rng(0))


class TestFailureTrace:
    def test_alive_at(self):
        trace = FailureTrace(
            2,
            [
                FailureEvent(1.0, 0, EventKind.FAIL),
                FailureEvent(2.0, 0, EventKind.REPAIR),
            ],
        )
        assert trace.alive_at(0, 0.5)
        assert not trace.alive_at(0, 1.5)
        assert trace.alive_at(0, 2.5)
        assert trace.alive_at(1, 1.5)

    def test_alive_vector(self):
        trace = FailureTrace(3, [FailureEvent(1.0, 2, EventKind.FAIL)])
        assert trace.alive_vector(0.5).tolist() == [True, True, True]
        assert trace.alive_vector(1.0).tolist() == [True, True, False]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureTrace(1, [FailureEvent(1.0, 3, EventKind.FAIL)])
        with pytest.raises(ConfigurationError):
            FailureTrace(1, [FailureEvent(-1.0, 0, EventKind.FAIL)])

    def test_availability_of(self):
        trace = FailureTrace(
            1,
            [
                FailureEvent(2.0, 0, EventKind.FAIL),
                FailureEvent(3.0, 0, EventKind.REPAIR),
            ],
        )
        assert trace.availability_of(0, 4.0) == pytest.approx(0.75)

    def test_exponential_trace_hits_target_availability(self):
        # availability = mtbf / (mtbf + mttr) = 0.8
        trace = exponential_trace(20, mtbf=8.0, mttr=2.0, horizon=3000.0, rng=make_rng(4))
        measured = np.mean([trace.availability_of(i, 3000.0) for i in range(20)])
        assert abs(measured - 0.8) < 0.03

    def test_exponential_trace_validation(self):
        with pytest.raises(ConfigurationError):
            exponential_trace(2, mtbf=0, mttr=1, horizon=10)
        with pytest.raises(ConfigurationError):
            exponential_trace(2, mtbf=1, mttr=1, horizon=0)

    def test_events_alternate_per_node(self):
        trace = exponential_trace(5, mtbf=5.0, mttr=1.0, horizon=200.0, rng=make_rng(5))
        for node in range(5):
            kinds = [ev.kind for ev in trace.events if ev.node_id == node]
            for a, b in zip(kinds, kinds[1:]):
                assert a != b, "fail/repair events must alternate"


class TestSimulator:
    def test_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(2.0, lambda: order.append("c"))  # FIFO among ties
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 2.0
        assert sim.processed == 3

    def test_schedule_in(self):
        sim = Simulator()
        times = []
        sim.schedule_in(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run_until(6.0)
        assert fired == [1, 5]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def recurring():
            seen.append(sim.now)
            if sim.now < 3:
                sim.schedule_in(1.0, recurring)

        sim.schedule_at(1.0, recurring)
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_max_events(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(float(t), lambda: None)
        sim.run(max_events=3)
        assert sim.processed == 3

    def test_cancelled_timer_never_fires(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_at(1.0, lambda: fired.append("cancelled"))
        sim.schedule_at(2.0, lambda: fired.append("live"))
        timer.cancel()
        sim.run()
        assert fired == ["live"]
        assert sim.processed == 1

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        timer = sim.schedule_at(1.0, lambda: None)
        sim.run()
        timer.cancel()  # must not raise or corrupt the queue
        assert len(sim) == 0

    def test_len_excludes_cancelled_anywhere_in_heap(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        buried = sim.schedule_at(2.0, lambda: None)  # not at the heap head
        sim.schedule_at(3.0, lambda: None)
        buried.cancel()
        assert len(sim) == 2

    def test_run_until_skips_cancelled_head(self):
        sim = Simulator()
        fired = []
        head = sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        head.cancel()
        sim.run_until(3.0)
        assert fired == [] and sim.now == 3.0


class TestRngHelpers:
    def test_make_rng_passthrough(self):
        rng = make_rng(7)
        assert make_rng(rng) is rng

    def test_make_rng_deterministic(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_spawn_rngs_independent(self):
        parent = make_rng(9)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 3
