"""Tests for rack topologies and correlated failure sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import RackTopology, rack_aware_assignment, make_rng
from repro.errors import ConfigurationError


class TestTopology:
    def test_uniform_round_robin(self):
        topo = RackTopology.uniform(9, 3)
        assert topo.racks == [[0, 3, 6], [1, 4, 7], [2, 5, 8]]
        assert topo.rack_of(4) == 1

    def test_explicit_racks(self):
        topo = RackTopology([[0, 1], [2, 3, 4]])
        assert topo.num_nodes == 5
        assert topo.rack_of(2) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RackTopology([])
        with pytest.raises(ConfigurationError):
            RackTopology([[0, 1], []])
        with pytest.raises(ConfigurationError):
            RackTopology([[0, 1], [1, 2]])  # duplicate
        with pytest.raises(ConfigurationError):
            RackTopology([[0, 2]])  # gap
        with pytest.raises(ConfigurationError):
            RackTopology.uniform(3, 4)
        with pytest.raises(ConfigurationError):
            RackTopology.uniform(9, 3).rack_of(9)


class TestMarginals:
    def test_marginal_p(self):
        topo = RackTopology.uniform(6, 2)
        assert topo.marginal_p(0.1, 0.2) == pytest.approx(0.9 * 0.8)

    def test_node_failure_for_marginal_roundtrip(self):
        topo = RackTopology.uniform(6, 2)
        node_q = topo.node_failure_for_marginal(0.1, 0.72)
        assert topo.marginal_p(0.1, node_q) == pytest.approx(0.72)

    def test_unreachable_marginal(self):
        topo = RackTopology.uniform(6, 2)
        with pytest.raises(ConfigurationError):
            topo.node_failure_for_marginal(0.5, 0.6)

    def test_prob_validation(self):
        topo = RackTopology.uniform(6, 2)
        with pytest.raises(ConfigurationError):
            topo.sample_alive(10, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            topo.sample_alive(10, 0.1, 1.5)
        with pytest.raises(ConfigurationError):
            topo.sample_alive(0, 0.1, 0.1)


class TestSampling:
    def test_shape_and_dtype(self):
        topo = RackTopology.uniform(9, 3)
        alive = topo.sample_alive(100, 0.1, 0.1, rng=make_rng(0))
        assert alive.shape == (100, 9)
        assert alive.dtype == bool

    def test_marginal_matches(self):
        topo = RackTopology.uniform(12, 4)
        alive = topo.sample_alive(40_000, 0.15, 0.1, rng=make_rng(1))
        assert abs(alive.mean() - topo.marginal_p(0.15, 0.1)) < 0.01

    def test_rack_members_fail_together(self):
        topo = RackTopology.uniform(9, 3)
        alive = topo.sample_alive(20_000, 0.3, 0.0, rng=make_rng(2))
        # With node_q = 0 nodes only fail with their whole rack: members
        # of rack 0 (nodes 0, 3, 6) must be perfectly correlated.
        assert np.array_equal(alive[:, 0], alive[:, 3])
        assert np.array_equal(alive[:, 0], alive[:, 6])
        # Different racks are independent: correlation near zero.
        corr = np.corrcoef(alive[:, 0], alive[:, 1])[0, 1]
        assert abs(corr) < 0.05

    def test_zero_rack_q_is_independent_model(self):
        topo = RackTopology.uniform(8, 2)
        alive = topo.sample_alive(20_000, 0.0, 0.25, rng=make_rng(3))
        assert abs(alive.mean() - 0.75) < 0.01
        corr = np.corrcoef(alive[:, 0], alive[:, 2])[0, 1]  # same rack
        assert abs(corr) < 0.05


class TestCorrelationHurtsAvailability:
    def test_write_availability_drops_under_rack_failures(self):
        """At equal marginal p, rack-correlated failures reduce quorum
        availability versus the paper's independence assumption."""
        from repro.quorum import TrapezoidQuorum, TrapezoidShape
        from repro.sim import level_membership_matrix

        quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 3, 1), 3)
        p = 0.85
        rack_q = 0.10
        topo = RackTopology.uniform(8, 2)
        node_q = topo.node_failure_for_marginal(rack_q, p)
        membership = level_membership_matrix(quorum).T

        def write_rate(alive: np.ndarray) -> float:
            counts = alive @ membership
            return float(np.all(counts >= np.asarray(quorum.w), axis=1).mean())

        correlated = topo.sample_alive(60_000, rack_q, node_q, rng=make_rng(4))
        independent = topo.sample_alive(60_000, 0.0, 1.0 - p, rng=make_rng(5))
        assert abs(correlated.mean() - independent.mean()) < 0.01  # same marginal
        assert write_rate(correlated) < write_rate(independent) - 0.02


class TestRackAwareAssignment:
    def test_spreads_across_racks(self):
        topo = RackTopology.uniform(9, 3)
        order = rack_aware_assignment(topo, 6)
        assert len(set(order)) == 6
        racks_used = [topo.rack_of(n) for n in order[:3]]
        assert sorted(racks_used) == [0, 1, 2]

    def test_full_assignment(self):
        topo = RackTopology.uniform(7, 2)
        order = rack_aware_assignment(topo, 7)
        assert sorted(order) == list(range(7))

    def test_validation(self):
        topo = RackTopology.uniform(6, 2)
        with pytest.raises(ConfigurationError):
            rack_aware_assignment(topo, 7)
        with pytest.raises(ConfigurationError):
            rack_aware_assignment(topo, 0)
