"""Event-engine mechanics: compaction, monotone lanes, batch drain.

The vectorized event core leans on three :class:`Simulator` mechanisms
(heap compaction of cancelled timers, deque-backed monotone lanes, and
same-timestamp batch grouping); each is pinned here in isolation,
including the regression bound on peak heap depth under cancel-heavy
churn that motivated compaction.
"""

from __future__ import annotations

import pytest

from repro.cluster.events import MonotoneLane, Simulator, Timer
from repro.errors import SimulationError


class TestOrdering:
    def test_time_then_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule_at(2.0, lambda: order.append("late"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "late"]
        assert sim.now == 2.0
        assert sim.processed == 3

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="in the past"):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_advances_to_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(0.5, lambda: fired.append(0.5))
        sim.schedule_at(2.5, lambda: fired.append(2.5))
        sim.run_until(1.0)
        assert fired == [0.5]
        assert sim.now == 1.0
        assert len(sim) == 1


class TestCompaction:
    def test_cancelled_timer_is_lazy_but_counted(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_in(1.0, lambda: fired.append("x"))
        timer.cancel()
        timer.cancel()  # idempotent
        assert sim.queue_depth == 1  # still housed
        assert len(sim) == 0  # but not live
        sim.run()
        assert fired == []

    def test_peak_heap_bounded_under_cancel_churn(self):
        """Arm-and-cancel churn must not grow the heap past ~2x live.

        This is the workload shape of the event runtime before lanes:
        every resolved message cancels its timeout timer, so without
        compaction the heap holds every timer ever armed (10_000 here).
        """
        sim = Simulator()
        live = sim.schedule_at(10_000.0, lambda: None)  # one long-lived event
        for i in range(10_000):
            timer = sim.schedule_at(float(i + 1), lambda: None)
            timer.cancel()
            sim.run_until(float(i))
        assert live is not None
        assert len(sim) == 1
        # >50% dead triggers a rebuild, so the raw heap stays near the
        # compaction threshold instead of the 10_001 armed entries.
        assert sim.peak_queue_depth < 200
        assert sim.queue_depth < 200

    def test_dead_heads_pruned_without_running(self):
        sim = Simulator()
        order = []
        dead = sim.schedule_at(1.0, lambda: order.append("dead"))
        sim.schedule_at(1.0, lambda: order.append("live"))
        dead.cancel()
        sim.run()
        assert order == ["live"]
        assert sim.processed == 1


class TestMonotoneLane:
    def test_merges_with_heap_in_global_order(self):
        sim = Simulator()
        lane = sim.monotone_lane()
        order = []
        sim.schedule_at(1.0, lambda: order.append("h1"))
        lane.schedule_call(1.5, lambda: order.append("l1"))
        sim.schedule_at(2.0, lambda: order.append("h2"))
        lane.schedule_call(2.5, lambda: order.append("l2"))
        sim.run()
        assert order == ["h1", "l1", "h2", "l2"]

    def test_same_time_resolves_by_schedule_order(self):
        sim = Simulator()
        lane = sim.monotone_lane()
        order = []
        sim.schedule_at(1.0, lambda: order.append("heap-first"))
        lane.schedule_call(1.0, lambda: order.append("lane-second"))
        sim.schedule_at(1.0, lambda: order.append("heap-third"))
        sim.run()
        assert order == ["heap-first", "lane-second", "heap-third"]

    def test_rejects_non_monotone_deadline(self):
        sim = Simulator()
        lane = sim.monotone_lane()
        lane.schedule_call(2.0, lambda: None)
        with pytest.raises(SimulationError, match="non-decreasing"):
            lane.schedule_call(1.0, lambda: None)

    def test_keyed_lanes_are_shared(self):
        sim = Simulator()
        assert sim.monotone_lane(key=("timeout", 0.05)) is sim.monotone_lane(
            key=("timeout", 0.05)
        )
        assert sim.monotone_lane(key=("timeout", 0.1)) is not sim.monotone_lane(
            key=("timeout", 0.05)
        )
        assert sim.monotone_lane() is not sim.monotone_lane()

    def test_lane_cancel_and_compaction(self):
        sim = Simulator()
        lane = sim.monotone_lane()
        fired = []
        timers = [
            lane.schedule_call(float(i), lambda i=i: fired.append(i))
            for i in range(300)
        ]
        for timer in timers[:299]:
            timer.cancel()
        assert len(lane) == 1
        # Compaction (>50% dead past the floor) keeps the deque small.
        lane.schedule_call(300.0, lambda: fired.append(300))
        assert len(lane._entries) < 150
        sim.run()
        assert fired == [299, 300]


class TestBatchDrain:
    def test_same_time_events_dispatch_in_one_call(self):
        sim = Simulator()
        calls = []
        handler = sim.register_batch_handler(lambda payloads: calls.append(payloads))
        for i in range(5):
            sim.schedule_batch(1.0, handler, i)
        sim.run()
        assert calls == [[0, 1, 2, 3, 4]]
        assert sim.processed == 5

    def test_foreign_event_splits_the_group(self):
        """A plain event sequenced between batch entries breaks the run —
        handlers observe exactly the per-event interleaving."""
        sim = Simulator()
        order = []
        handler = sim.register_batch_handler(lambda p: order.append(("batch", p)))
        sim.schedule_batch(1.0, handler, "a")
        sim.schedule_at(1.0, lambda: order.append(("plain", None)))
        sim.schedule_batch(1.0, handler, "b")
        sim.run()
        assert order == [
            ("batch", ["a"]),
            ("plain", None),
            ("batch", ["b"]),
        ]

    def test_lane_event_splits_the_group(self):
        sim = Simulator()
        order = []
        handler = sim.register_batch_handler(lambda p: order.append(("batch", p)))
        lane = sim.monotone_lane()
        sim.schedule_batch(1.0, handler, "a")
        lane.schedule_call(1.0, lambda: order.append(("lane", None)))
        sim.schedule_batch(1.0, handler, "b")
        sim.run()
        assert order == [("batch", ["a"]), ("lane", None), ("batch", ["b"])]

    def test_distinct_handlers_do_not_merge(self):
        sim = Simulator()
        order = []
        h1 = sim.register_batch_handler(lambda p: order.append(("h1", p)))
        h2 = sim.register_batch_handler(lambda p: order.append(("h2", p)))
        sim.schedule_batch(1.0, h1, 1)
        sim.schedule_batch(1.0, h2, 2)
        sim.schedule_batch(1.0, h1, 3)
        sim.run()
        assert order == [("h1", [1]), ("h2", [2]), ("h1", [3])]

    def test_different_times_do_not_merge(self):
        sim = Simulator()
        calls = []
        handler = sim.register_batch_handler(lambda p: calls.append((sim.now, p)))
        sim.schedule_batch(1.0, handler, "a")
        sim.schedule_batch(2.0, handler, "b")
        sim.run()
        assert calls == [(1.0, ["a"]), (2.0, ["b"])]

    def test_cancelled_batch_entry_skipped(self):
        sim = Simulator()
        calls = []
        handler = sim.register_batch_handler(lambda p: calls.append(p))
        sim.schedule_batch(1.0, handler, "a")
        timer = sim.schedule_batch(1.0, handler, "b")
        sim.schedule_batch(1.0, handler, "c")
        timer.cancel()
        sim.run()
        assert calls == [["a", "c"]]


class TestTimerHandle:
    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_at(1.0, lambda: fired.append(1))
        sim.run()
        timer.cancel()
        assert fired == [1]
        assert len(sim) == 0

    def test_standalone_timer(self):
        timer = Timer(1.0)
        timer.cancel()
        assert timer.cancelled
