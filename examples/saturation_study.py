#!/usr/bin/env python3
"""Throughput saturation: how many clients one shared cluster can serve.

The paper evaluates one trapezoid quorum instance with free nodes; a
production deployment multiplexes many stripe families (volumes) over
one cluster whose nodes take real service time per request. This example
drives the sharded event runtime — a ShardRouter front end dispatching
to per-shard coordinators that contend on per-node FIFO service queues —
and sweeps the closed-loop client count to find the knee of the ops/s
curve: the point where extra clients stop buying throughput and only buy
queueing delay.

Two things to notice:

* the protocols saturate very differently on identical hardware:
  TRAP-ERC spreads its quorum traffic over the trapezoid, so the busiest
  node is still below full utilization at 16 clients, while majority
  hammers one fixed replica group — its knee arrives at 2 clients and
  goodput *decreases* beyond it (queueing collapse);
* sharding multiplexes more volumes onto the same metal, it does not add
  capacity: with 4 stripe families the aggregate curve sits slightly
  below the single-volume one, because rotated placements make one
  volume's parity traffic land on another's data nodes — exactly the
  cross-volume interference the shared service queues exist to measure.

Run:  python examples/saturation_study.py
"""

from repro.api import (
    LatencySpec,
    PlacementSpec,
    ScenarioRunner,
    ScenarioSpec,
    ServiceTimeSpec,
    ShardingSpec,
    SystemSpec,
    WorkloadSpec,
)

N, K = 9, 6
CLIENTS = (1, 2, 4, 8, 16)
SHARD_COUNTS = (1, 4)
PROTOCOLS = ("trap-erc", "majority")
SERVICE = ServiceTimeSpec(kind="fixed", time=0.002)


def run_curve(protocol: str, shards: int) -> dict:
    # Rotating placement is what makes sharding pay: each stripe family's
    # consistency group lands on a different rotation of the cluster, so
    # the per-shard write traffic (which always hits a family's parity
    # nodes) spreads instead of piling onto one hot set.
    spec = SystemSpec.trapezoid(
        N, K, 2, 1, 1, 2,
        protocol=protocol,
        latency=LatencySpec(kind="fixed", delay=0.001),
        placement=PlacementSpec(kind="rotating"),
        sharding=ShardingSpec(shards=shards, routing="interleave"),
        service=SERVICE,
        workload=WorkloadSpec(num_ops=200, block_length=32),
        scenario=ScenarioSpec(
            kind="saturation", client_counts=CLIENTS, horizon=5000.0
        ),
        seed=42,
    )
    return ScenarioRunner(spec).run().data


def main() -> None:
    print(
        f"Saturation study: (n={N}, k={K}) trapezoid cluster, per-node "
        f"service {SERVICE.time * 1e3:.1f} ms ({SERVICE.kind}), closed-loop "
        "clients with zero think time.\n"
    )
    for protocol in PROTOCOLS:
        for shards in SHARD_COUNTS:
            data = run_curve(protocol, shards)
            print(f"=== {protocol}, {shards} shard(s) "
                  f"({shards * K} logical blocks) ===")
            header = f"  {'clients':>8s} {'ops/s':>9s} {'p95 (ms)':>9s} " \
                     f"{'q-wait (ms)':>12s} {'max util':>9s}"
            print(header)
            for point in data["points"]:
                p95 = point["aggregate"]["operation_latency"]["p95"] * 1e3
                wait = point["queues"]["mean_wait"] * 1e3
                util = point["queues"]["max_utilization"]
                print(
                    f"  {point['clients']:8d} {point['throughput']:9.1f} "
                    f"{p95:9.2f} {wait:12.3f} {util:9.2f}"
                )
            print(f"  knee of the curve: {data['knee_clients']} clients\n")


if __name__ == "__main__":
    main()
