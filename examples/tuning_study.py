#!/usr/bin/env python3
"""Configuration tuning: searching the trapezoid design space.

The protocol leaves the trapezoid shape (a, b, h) and the write-quorum
vector free. This example uses the optimizer to map the design space for
a (15, 8) deployment at several node availabilities, printing the Pareto
front of (write, read) availability and the specialized winners.

It also demonstrates a reproduction finding: the configuration the paper
evaluates (shape (2,3,1), w = (2,3)) is *dominated* — another shape gets
strictly better exact read availability at the same write availability.

Run:  python examples/tuning_study.py
"""

from repro.analysis import (
    exact_read_erc,
    optimize_config_sweep,
    write_availability,
)
from repro.quorum import TrapezoidQuorum, TrapezoidShape

N, K = 15, 8
P_GRID = (0.5, 0.7, 0.9)


def describe(point) -> str:
    return (
        f"shape (a={point.shape.a}, b={point.shape.b}, h={point.shape.h}) "
        f"w={point.w}: write={point.write:.4f} read={point.read:.4f}"
    )


def main() -> None:
    # One sweep call: the occupancy tables are built once per shape and
    # shared across the whole availability grid.
    sweep = optimize_config_sweep(N, K, P_GRID, max_h=2)
    for p, result in zip(P_GRID, sweep):
        print(f"=== (n={N}, k={K}) at node availability p = {p} "
              f"({result.evaluated} configurations evaluated) ===")
        print("  best for writes :", describe(result.best_for_writes))
        print("  best for reads  :", describe(result.best_for_reads))
        print("  best balanced   :", describe(result.best_balanced))
        print(f"  Pareto front ({len(result.pareto)} points):")
        for point in result.pareto[:8]:
            print("   ", describe(point))
        if len(result.pareto) > 8:
            print(f"    ... {len(result.pareto) - 8} more")
        print()

    # The paper's configuration vs the front at p = 0.5.
    paper = TrapezoidQuorum(TrapezoidShape(2, 3, 1), (2, 3))
    pw = float(write_availability(paper, 0.5))
    pr = float(exact_read_erc(paper, N, K, 0.5))
    print(f"Paper's Figure-3 configuration: write={pw:.4f} read={pr:.4f}")
    result = sweep[P_GRID.index(0.5)]
    dominators = [
        pt for pt in result.pareto
        if pt.write >= pw - 1e-12 and pt.read > pr + 1e-6
    ]
    print(f"Configurations dominating it: {len(dominators)}; e.g.")
    for point in dominators[:3]:
        print("   ", describe(point))
    print()
    print("Take-away: the trapezoid family is expressive enough that the")
    print("evaluated configuration is a reasonable but not optimal choice;")
    print("a deployment should run this optimizer for its own (n, k, p).")


if __name__ == "__main__":
    main()
