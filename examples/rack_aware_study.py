#!/usr/bin/env python3
"""Rack-aware deployment study: correlated failures vs the paper's model.

The paper assumes independent node failures. Real clusters fail in
correlated groups (racks). This example quantifies, for the calibrated
(15, 8) configuration at a fixed marginal node availability:

1. how much rack correlation erodes the availability the closed forms
   promise, and
2. how much *rack-aware placement* — spreading a stripe's blocks across
   racks — recovers, compared with naive rack-oblivious placement that
   can colocate many blocks in one failure domain.

Run:  python examples/rack_aware_study.py
"""

import numpy as np

from repro.analysis import write_availability
from repro.bench import FIG_K, FIG_N, fig_quorum
from repro.cluster import RackTopology, make_rng, rack_aware_assignment
from repro.sim import level_membership_matrix

P_MARGINAL = 0.85
TRIALS = 120_000
QUORUM = fig_quorum(3)


def availability_for_assignment(
    topo: RackTopology, assignment: list[int], rack_q: float, rng
) -> tuple[float, float]:
    """(write, read) availability of block 0 under a node assignment.

    ``assignment`` lists the cluster nodes hosting stripe blocks 0..n-1;
    block 0's trapezoid group is [assignment[0]] + parity nodes.
    """
    node_q = topo.node_failure_for_marginal(rack_q, P_MARGINAL)
    alive = topo.sample_alive(TRIALS, rack_q, node_q, rng=rng)
    group = [assignment[0]] + [assignment[j] for j in range(FIG_K, FIG_N)]
    counts = alive[:, group] @ level_membership_matrix(QUORUM).T
    write_ok = np.all(counts >= np.asarray(QUORUM.w), axis=1)
    check_ok = np.any(counts >= np.asarray(QUORUM.read_thresholds), axis=1)
    ni = alive[:, assignment[0]]
    others = [assignment[j] for j in range(1, FIG_N)]
    pool = alive[:, others].sum(axis=1)
    read_ok = check_ok & (ni | (pool >= FIG_K))
    return float(write_ok.mean()), float(read_ok.mean())


def main() -> None:
    topo = RackTopology.uniform(FIG_N, 5)  # 5 racks x 3 nodes
    print(f"Cluster: {FIG_N} nodes in 5 racks of 3; marginal p = {P_MARGINAL}")
    print(f"Configuration: (n={FIG_N}, k={FIG_K}), trapezoid "
          f"{QUORUM.shape.level_sizes}, w={QUORUM.w}")
    print()
    predicted_write = float(write_availability(QUORUM, P_MARGINAL))
    print(f"Independence-model prediction (eq. 9): write = {predicted_write:.4f}")
    print()

    naive = list(range(FIG_N))  # blocks 0..14 on nodes 0..14: consecutive
    # Naive is accidentally rack-aware with round-robin racks, so build a
    # deliberately bad assignment: fill rack by rack.
    rack_by_rack = [node for rack in topo.racks for node in rack]
    aware = rack_aware_assignment(topo, FIG_N)

    print(f"{'scenario':>28} {'write':>8} {'read':>8}")
    print("-" * 48)
    for rack_q in (0.0, 0.05, 0.10):
        for label, assignment in [
            ("rack-by-rack (worst)", rack_by_rack),
            ("rack-aware (spread)", aware),
        ]:
            w, r = availability_for_assignment(
                topo, assignment, rack_q, make_rng(hash((label, rack_q)) % 2**31)
            )
            print(f"rack_q={rack_q:4.2f} {label:>20} {w:8.4f} {r:8.4f}")
        print()

    print("At rack_q = 0 both placements match the paper's model. As rack")
    print("correlation grows, packing a stripe into few racks collapses its")
    print("availability, while spreading blocks across racks preserves most")
    print("of it — placement is a first-order design choice the paper's")
    print("independence assumption hides.")


if __name__ == "__main__":
    main()
