#!/usr/bin/env python3
"""Predicted vs measured: the simulator against live TCP node services.

Every other study in this directory runs on virtual time — latencies are
drawn from a model and the discrete-event engine advances a clock nobody
waits on. This one closes the loop on reality: the same ``SystemSpec``
runs once through the event-driven simulator (the *predicted* column)
and once against nine real storage-node services listening on localhost
TCP sockets (the *measured* column), with the ``AsyncCoordinator``
driving the engines' unmodified round plans over the wire and the
identical seeded workload tape on both sides.

What to look for:

* the two columns do **not** share units — predicted latencies are
  virtual seconds from the spec's latency model, measured ones are wall
  seconds dominated by JSON serialization and event-loop scheduling —
  but they share *shape*: reads beat writes in both, and tail ratios
  (p99/p50) land in the same regime;
* the in-process transport (second table) strips the socket cost and
  shows the protocol's intrinsic round structure: the write's extra
  version-query round trip survives in every column, because it is a
  property of the algorithm, not of any transport.

Run:  python examples/wallclock_study.py
"""

from repro.api import (
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    TransportSpec,
    WorkloadSpec,
)

N, K = 9, 6
OPS = 60


def run_one(kind: str) -> dict:
    spec = SystemSpec.trapezoid(
        N, K, 2, 1, 1, 2,
        workload=WorkloadSpec(num_ops=OPS, block_length=32),
        transport=TransportSpec(kind=kind, port_base=0),  # ephemeral ports
        scenario=ScenarioSpec(
            kind="wallclock", clients=4, think_time=0.0, horizon=60.0
        ),
        seed=7,
    )
    return ScenarioRunner(spec).run().data


def print_table(kind: str, data: dict) -> None:
    measured = data["measured"]
    print(
        f"\n== transport={kind}  "
        f"ops={measured['ops_submitted']}  "
        f"throughput={measured['throughput']:.0f} ops/s  "
        f"wall={measured['wall_duration']:.3f}s =="
    )
    print(
        f"{'op':>6s} {'column':>10s} {'count':>6s} "
        f"{'p50':>10s} {'p95':>10s} {'p99':>10s} {'p99/p50':>8s}"
    )
    for op in ("read", "write"):
        for column in ("predicted", "measured"):
            row = data["comparison"][column][op]
            ratio = row["p99"] / row["p50"] if row["p50"] else float("nan")
            print(
                f"{op:>6s} {column:>10s} {int(row['count']):6d} "
                f"{row['p50']:10.6f} {row['p95']:10.6f} {row['p99']:10.6f} "
                f"{ratio:8.2f}"
            )


def main() -> None:
    print("TRAP-ERC predicted (event simulator) vs measured (live services)")
    print(f"(n={N}, k={K}), trapezoid a=2 b=1 h=1 w=2, {OPS} ops, 4 clients")
    for kind in ("tcp", "inproc"):
        print_table(kind, run_one(kind))
    print(
        "\npredicted columns are virtual seconds from the latency model;\n"
        "measured columns are wall seconds over real transports — compare\n"
        "shape (read/write ordering, tail ratios), never absolute values."
    )


if __name__ == "__main__":
    main()
