#!/usr/bin/env python3
"""Virtual-machine disk on TRAP-ERC: the paper's motivating application.

Creates a 48-block virtual disk striped as (9, 6) erasure-coded stripes
over a 9-node cluster, then drives it with a VM-style workload (write
bursts + hot-set random IO) while nodes fail and recover mid-run. The
retrying client plus anti-entropy keep the guest's view strictly
consistent: every read returns the last acknowledged write.

Run:  python examples/virtual_disk.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.sim import OpKind, vm_disk_workload
from repro.storage import DiskClient, VirtualDisk


def main() -> None:
    rng = np.random.default_rng(7)
    cluster = Cluster(9)
    disk = VirtualDisk(cluster, num_blocks=48, block_size=512, n=9, k=6)
    disk.format()
    client = DiskClient(disk, max_retries=2, repair_on_failure=True)

    print(f"Virtual disk: {disk.num_blocks} blocks x {disk.block_size} B "
          f"({disk.capacity_bytes()} B logical)")
    print(f"Physical footprint: {disk.raw_storage_bytes():.0f} B "
          f"(efficiency {disk.storage_efficiency():.2f} = k/n)")
    print(f"Full replication at equal fault tolerance would use "
          f"{disk.num_blocks * (9 - 6 + 1) * 512} B")
    print()

    # Ground truth of what the guest believes it wrote. A write whose
    # quorum failed is *indeterminate* (it may or may not become visible,
    # like any failed quorum write), so the consistency oracle accepts
    # either the last acknowledged value or any later indeterminate one.
    guest_view: dict[int, bytes] = {}
    indeterminate: dict[int, set[bytes]] = {}

    workload = vm_disk_workload(400, disk.num_blocks, rng=rng)
    failures = {80: [0], 160: [6, 7], 240: [3], 320: []}  # step -> nodes to fail
    verified = 0

    for step, op in enumerate(workload):
        if step in failures:
            cluster.recover_all()
            for nid in failures[step]:
                cluster.fail(nid)
            state = f"down={failures[step]}" if failures[step] else "all up"
            print(f"  step {step:3d}: failure injection -> {state}")

        if op.kind is OpKind.WRITE:
            payload = np.random.default_rng(op.payload_seed).integers(
                0, 256, disk.block_size, dtype=np.int64
            ).astype(np.uint8).tobytes()
            if client.write(op.block, payload):
                guest_view[op.block] = payload
                indeterminate[op.block] = set()
            else:
                indeterminate.setdefault(op.block, set()).add(payload)
        else:
            data = client.read(op.block)
            if data is not None and op.block in guest_view:
                allowed = data == guest_view[op.block] or data in indeterminate.get(
                    op.block, set()
                )
                assert allowed, (
                    f"CONSISTENCY VIOLATION at step {step}, block {op.block}: "
                    "read returned a value that was never written there"
                )
                verified += 1

    cluster.recover_all()
    disk.repair_all()

    s = client.stats
    print()
    print(f"Workload complete: {s.writes} writes, {s.reads} reads")
    print(f"  write retries: {s.write_retries}, failures: {s.write_failures}")
    print(f"  read  retries: {s.read_retries}, failures: {s.read_failures}")
    print(f"  repair passes: {s.repair_passes}")
    print(f"  reads verified against guest view: {verified} — all consistent")
    print()
    print("Network traffic:", cluster.network.stats.messages, "messages,",
          cluster.network.stats.bytes_sent, "payload bytes")


if __name__ == "__main__":
    main()
