#!/usr/bin/env python3
"""Quickstart: strongly consistent reads/writes over an erasure-coded stripe.

Declares the whole system — a 9-node cluster storing a (9, 6) MDS stripe
with each block's consistency group on a trapezoid — as one
:class:`repro.api.SystemSpec`, builds it through the facade's registry,
and demonstrates the TRAP-ERC protocol: quorum writes with in-place
parity deltas (Algorithm 1), quorum reads with direct and decode paths
(Algorithm 2), and recovery via the anti-entropy service. The spec
serializes to JSON, so the same configuration can be re-run with
``python -m repro.cli run --config <file>``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import SystemSpec, build_system
from repro.core import ReadCase


def main() -> None:
    # --- declare: (9, 6) code, trapezoid with levels (1, 3), w = (1, 2) --
    spec = SystemSpec.trapezoid(n=9, k=6, a=2, b=1, h=1, w=2, seed=0)
    print("Declarative spec (JSON-serializable):")
    print(" ", spec.to_json(indent=None)[:72], "...")
    print()

    # --- build: one factory call replaces the old hand-wiring ------------
    system = build_system(spec)
    protocol, cluster, code = system.engine, system.cluster, system.code
    repair = system.repair

    print("Cluster   :", len(cluster), "nodes")
    print("Code      : (n=9, k=6) MDS over GF(2^8) — tolerates 3 erasures")
    print("Trapezoid : levels", system.quorum.shape.level_sizes, "w =", system.quorum.w)
    print("Group size: n - k + 1 =", system.layout.group_size, "nodes per block")
    print()

    # --- load the initial stripe (seeded from spec.seed) ------------------
    data = system.initialize()
    print(f"Initialized {code.k} data blocks of {data.shape[1]} bytes "
          "(version 0 everywhere).")

    # --- a quorum write (Algorithm 1) ------------------------------------
    new_value = np.frombuffer(b"trapezoid quorum protocol hello!", dtype=np.uint8).copy()
    result = protocol.write_block(2, new_value)
    print(
        f"Write block 2 -> success={result.success} version={result.version} "
        f"acks/level={result.acks_per_level} messages={result.messages}"
    )

    # --- a direct read (Algorithm 2, Case 1) -----------------------------
    read = protocol.read_block(2)
    print(
        f"Read  block 2 -> case={read.case.value} version={read.version} "
        f"payload={bytes(read.value[:9])!r}..."
    )

    # --- kill the data node: the read must decode (Case 2) ---------------
    cluster.fail(2)
    read = protocol.read_block(2)
    assert read.case == ReadCase.DECODE
    print(
        f"Read  block 2 with N_2 down -> case={read.case.value} "
        f"(reconstructed from {code.k} fragments), payload intact: "
        f"{bytes(read.value[:9])!r}..."
    )

    # --- writes survive parity failures up to the quorum bound -----------
    cluster.recover(2)
    cluster.fail(8)  # one parity down: w_1 = 2 of 3 still reachable
    value = system.rng.integers(0, 256, data.shape[1], dtype=np.int64).astype(np.uint8)
    result = protocol.write_block(0, value)
    print(f"Write with parity 8 down -> success={result.success} (quorum met)")

    # --- the recovered node is stale until anti-entropy runs -------------
    cluster.recover(8)
    print("Parity 8 stale after recovery:", repair.is_parity_stale(8))
    repaired = repair.sync_all()
    print(f"Anti-entropy repaired {repaired} record(s); stale now:",
          repair.is_parity_stale(8))

    # --- storage accounting (the paper's Figure 5) -----------------------
    from repro.analysis import storage_erc, storage_fr

    print()
    print(
        "Storage per block: ERC n/k = %.3f blocks vs FR n-k+1 = %.0f blocks"
        % (storage_erc(9, 6), storage_fr(9, 6))
    )
    print("Availability hooks: write avail at p=0.9 ->",
          f"{float(system.write_availability(0.9)):.4f}")
    print("Done.")


if __name__ == "__main__":
    main()
