#!/usr/bin/env python3
"""Quickstart: strongly consistent reads/writes over an erasure-coded stripe.

Builds a 9-node cluster storing a (9, 6) MDS stripe, arranges each data
block's consistency group on a trapezoid, and demonstrates the TRAP-ERC
protocol: quorum writes with in-place parity deltas (Algorithm 1), quorum
reads with direct and decode paths (Algorithm 2), and recovery via the
anti-entropy service.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.core import ReadCase, RepairService, TrapErcProtocol
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape


def main() -> None:
    # --- setup: (9, 6) code, trapezoid with levels (1, 3), w = (1, 2) ----
    cluster = Cluster(9)
    code = MDSCode(9, 6)
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    protocol = TrapErcProtocol(cluster, code, quorum)
    repair = RepairService(protocol)

    print("Cluster   :", len(cluster), "nodes")
    print("Code      : (n=9, k=6) MDS over GF(2^8) — tolerates 3 erasures")
    print("Trapezoid : levels", quorum.shape.level_sizes, "w =", quorum.w)
    print("Group size: n - k + 1 =", protocol.layout.group_size, "nodes per block")
    print()

    # --- load the initial stripe ----------------------------------------
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(6, 32), dtype=np.int64).astype(np.uint8)
    protocol.initialize(data)
    print("Initialized 6 data blocks of 32 bytes (version 0 everywhere).")

    # --- a quorum write (Algorithm 1) ------------------------------------
    new_value = np.frombuffer(b"trapezoid quorum protocol hello!", dtype=np.uint8).copy()
    result = protocol.write_block(2, new_value)
    print(
        f"Write block 2 -> success={result.success} version={result.version} "
        f"acks/level={result.acks_per_level} messages={result.messages}"
    )

    # --- a direct read (Algorithm 2, Case 1) -----------------------------
    read = protocol.read_block(2)
    print(
        f"Read  block 2 -> case={read.case.value} version={read.version} "
        f"payload={bytes(read.value[:9])!r}..."
    )

    # --- kill the data node: the read must decode (Case 2) ---------------
    cluster.fail(2)
    read = protocol.read_block(2)
    assert read.case == ReadCase.DECODE
    print(
        f"Read  block 2 with N_2 down -> case={read.case.value} "
        f"(reconstructed from {code.k} fragments), payload intact: "
        f"{bytes(read.value[:9])!r}..."
    )

    # --- writes survive parity failures up to the quorum bound -----------
    cluster.recover(2)
    cluster.fail(8)  # one parity down: w_1 = 2 of 3 still reachable
    result = protocol.write_block(0, rng.integers(0, 256, 32, dtype=np.int64).astype(np.uint8))
    print(f"Write with parity 8 down -> success={result.success} (quorum met)")

    # --- the recovered node is stale until anti-entropy runs -------------
    cluster.recover(8)
    print("Parity 8 stale after recovery:", repair.is_parity_stale(8))
    repaired = repair.sync_all()
    print(f"Anti-entropy repaired {repaired} record(s); stale now:",
          repair.is_parity_stale(8))

    # --- storage accounting (the paper's Figure 5) -----------------------
    from repro.analysis import storage_erc, storage_fr

    print()
    print(
        "Storage per block: ERC n/k = %.3f blocks vs FR n-k+1 = %.0f blocks"
        % (storage_erc(9, 6), storage_fr(9, 6))
    )
    print("Done.")


if __name__ == "__main__":
    main()
