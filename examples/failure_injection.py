#!/usr/bin/env python3
"""History-model failure injection: beyond the paper's snapshot analysis.

Drives one (7, 4) TRAP-ERC stripe through an exponential failure/repair
trace (per-node availability 0.75) with a Poisson operation stream, and
contrasts three regimes:

* snapshot prediction — the paper's closed forms at p = 0.75,
* trace-driven, no repair — recovered nodes stay stale and the usable
  quorum pool shrinks over time,
* trace-driven with anti-entropy every 20 time units.

Strict consistency (reads never return stale acknowledged data) holds in
all regimes; what changes is *availability*.

Run:  python examples/failure_injection.py
"""

from repro.analysis import exact_read_erc, write_availability
from repro.cluster import exponential_trace
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import TraceSimConfig, TraceSimulation

N, K = 7, 4
QUORUM = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
HORIZON = 1200.0
MTBF, MTTR = 30.0, 10.0  # availability = 30 / 40 = 0.75


def main() -> None:
    p = MTBF / (MTBF + MTTR)
    print(f"Stripe: (n={N}, k={K}), trapezoid levels {QUORUM.shape.level_sizes}, "
          f"w={QUORUM.w}")
    print(f"Failure process: Exp(MTBF={MTBF}) up / Exp(MTTR={MTTR}) down "
          f"-> long-run p = {p:.2f}")
    print()

    print("Snapshot-model prediction at p = %.2f:" % p)
    print(f"  write availability (eq. 9): {float(write_availability(QUORUM, p)):.4f}")
    print(f"  read availability (exact Alg. 2): "
          f"{float(exact_read_erc(QUORUM, N, K, p)):.4f}")
    print()

    results = {}
    for label, repair_interval in [("no repair", None), ("repair every 20", 20.0)]:
        trace = exponential_trace(N, MTBF, MTTR, HORIZON, rng=5)
        config = TraceSimConfig(
            horizon=HORIZON,
            op_rate=2.0,
            read_fraction=0.5,
            repair_interval=repair_interval,
        )
        tally = TraceSimulation(N, K, QUORUM, trace, config, rng=6).run()
        results[label] = tally
        read_est = tally.read_availability()
        write_est = tally.write_availability()
        print(f"Trace-driven ({label}):")
        print(f"  reads : {tally.reads_succeeded}/{tally.reads_attempted} "
              f"-> {read_est.mean:.4f} {read_est.ci95()}")
        print(f"  writes: {tally.writes_succeeded}/{tally.writes_attempted} "
              f"-> {write_est.mean:.4f} {write_est.ci95()}")
        print(f"  decode fraction of successful reads: {tally.decode_fraction():.3f}")
        print(f"  repairs performed: {tally.repairs}")
        print(f"  consistency violations: {tally.consistency_violations}")
        print()

    gain = (
        results["repair every 20"].read_availability().mean
        - results["no repair"].read_availability().mean
    )
    print(f"Anti-entropy read-availability gain: {gain:+.4f}")
    print("The snapshot model is an upper bound: staleness after recovery")
    print("costs availability unless a repair process closes the gap.")


if __name__ == "__main__":
    main()
