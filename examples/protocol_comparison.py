#!/usr/bin/env python3
"""Protocol comparison: TRAP-ERC vs TRAP-FR vs ROWA vs Majority.

One declarative :class:`repro.api.SystemSpec` with a ``comparison``
scenario drives all four registered protocol engines through an
*identical* schedule of failures and operations (via
``repro.sim.comparative``) on the same 4-node budget: ``num_blocks=1``
pins every operation to block 0, whose TRAP consistency group
{0, 6, 7, 8} doubles as the replica set of the flat baselines, so every
protocol defends exactly the same node set. TRAP-ERC runs with its
anti-entropy service (wired automatically by the registry), without which
staleness collapses its write availability (see EXPERIMENTS.md).

The comparison shows the design point the paper argues for: TRAP-ERC
buys near-replication availability at erasure-coding storage cost,
paying in messages and decode work.

Run:  python examples/protocol_comparison.py
"""

from repro.analysis import storage_erc, storage_fr
from repro.api import (
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    WorkloadSpec,
    protocol_names,
)

N, K = 9, 6
STEPS = 300
BLOCK = 64


def main() -> None:
    spec = SystemSpec.trapezoid(
        n=N, k=K, a=2, b=1, h=1, w=2,
        workload=WorkloadSpec(block_length=BLOCK, read_fraction=0.5),
        scenario=ScenarioSpec(
            kind="comparison",
            steps=STEPS,
            max_down=2,
            protocols=("trap-erc", "trap-fr", "rowa", "majority"),
            num_blocks=1,  # all ops on block 0: same node set for everyone
        ),
        seed=4,
    )
    result = ScenarioRunner(spec).run()

    print(f"{STEPS} operations on block 0, 0-2 random nodes down per step")
    print("(TRAP-ERC runs with anti-entropy between failure epochs)")
    print(f"(registry protocols available: {', '.join(protocol_names())})")
    print()
    header = (
        f"{'protocol':>10} {'read avail':>11} {'write avail':>12} "
        f"{'msg/read':>9} {'msg/write':>10} {'storage/block':>14}"
    )
    print(header)
    print("-" * len(header))
    for name in spec.scenario.protocols:
        res = result.data[name]
        storage = storage_erc(N, K) if name == "trap-erc" else storage_fr(N, K)
        print(
            f"{name:>10} {res['read_availability']:>11.3f} "
            f"{res['write_availability']:>12.3f} {res['messages_per_read']:>9.1f} "
            f"{res['messages_per_write']:>10.1f} {storage:>14.3f}"
        )

    print()
    print("storage/block in units of blocksize (eqs. 14-15: ERC n/k, FR n-k+1).")
    print("ROWA: perfect reads, fragile writes. Majority: balanced, 4x storage.")
    print("TRAP-ERC: near-FR availability at 2.7x less storage, paying in")
    print("messages (embedded read + parity deltas) and repair traffic.")
    print()
    print("Reproduce from the CLI: write spec.to_json() to comparison.json,")
    print("then run:  python -m repro.cli run --config comparison.json")


if __name__ == "__main__":
    main()
