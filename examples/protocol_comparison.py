#!/usr/bin/env python3
"""Protocol comparison: TRAP-ERC vs TRAP-FR vs ROWA vs Majority.

Runs the four protocol engines through an *identical* schedule of
failures and operations (via `repro.sim.comparative`), on the same
4-node budget: block 0's TRAP consistency group {0, 6, 7, 8} doubles as
the replica set of the flat baselines. TRAP-ERC runs with its
anti-entropy service, without which staleness collapses its write
availability (see EXPERIMENTS.md).

The comparison shows the design point the paper argues for: TRAP-ERC
buys near-replication availability at erasure-coding storage cost,
paying in messages and decode work.

Run:  python examples/protocol_comparison.py
"""

import numpy as np

from repro.analysis import storage_erc, storage_fr
from repro.cluster import Cluster
from repro.core import (
    MajorityProtocol,
    RepairService,
    RowaProtocol,
    TrapErcProtocol,
    TrapFrProtocol,
)
from repro.erasure import MDSCode
from repro.quorum import TrapezoidQuorum, TrapezoidShape
from repro.sim import make_schedule, run_comparison

N, K = 9, 6
STEPS = 300
BLOCK = 64


def build():
    quorum = TrapezoidQuorum.uniform(TrapezoidShape(2, 1, 1), 2)
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=(K, BLOCK), dtype=np.int64).astype(np.uint8)
    engines = {}
    repair_fns = {}

    c1 = Cluster(N)
    erc = TrapErcProtocol(c1, MDSCode(N, K), quorum)
    erc.initialize(data)
    engines["TRAP-ERC"] = (c1, erc)
    repair_fns["TRAP-ERC"] = RepairService(erc).sync_all

    c2 = Cluster(N)
    fr = TrapFrProtocol(c2, N, K, quorum)
    fr.initialize(data)
    engines["TRAP-FR"] = (c2, fr)

    c3 = Cluster(N)
    rowa = RowaProtocol(c3, [0, 6, 7, 8], "cmp")
    rowa.initialize(data)
    engines["ROWA"] = (c3, rowa)

    c4 = Cluster(N)
    major = MajorityProtocol(c4, [0, 6, 7, 8], "cmp")
    major.initialize(data)
    engines["Majority"] = (c4, major)
    return engines, repair_fns


def main() -> None:
    engines, repair_fns = build()
    # All ops hit block 0 so every protocol defends the same node set.
    schedule = make_schedule(STEPS, N, 1, max_down=2, read_fraction=0.5, rng=4)
    results = run_comparison(engines, schedule, BLOCK, repair_fns=repair_fns)

    print(f"{STEPS} operations on block 0, 0-2 random nodes down per step")
    print("(TRAP-ERC runs with anti-entropy between failure epochs)")
    print()
    header = (
        f"{'protocol':>10} {'read avail':>11} {'write avail':>12} "
        f"{'msg/read':>9} {'msg/write':>10} {'storage/block':>14}"
    )
    print(header)
    print("-" * len(header))
    for name, res in results.items():
        storage = storage_erc(N, K) if name == "TRAP-ERC" else storage_fr(N, K)
        print(
            f"{name:>10} {res.read_availability:>11.3f} "
            f"{res.write_availability:>12.3f} {res.messages_per_read:>9.1f} "
            f"{res.messages_per_write:>10.1f} {storage:>14.3f}"
        )

    print()
    print("storage/block in units of blocksize (eqs. 14-15: ERC n/k, FR n-k+1).")
    print("ROWA: perfect reads, fragile writes. Majority: balanced, 4x storage.")
    print("TRAP-ERC: near-FR availability at 2.7x less storage, paying in")
    print("messages (embedded read + parity deltas) and repair traffic.")


if __name__ == "__main__":
    main()
