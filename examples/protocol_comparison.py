#!/usr/bin/env python3
"""Protocol comparison: TRAP-ERC vs TRAP-FR vs ROWA vs Majority.

Two comparisons from one declarative :class:`repro.api.SystemSpec`:

1. **Availability & message cost** — a ``comparison`` scenario drives
   all four registered protocol engines through an *identical* schedule
   of failures and operations (via ``repro.sim.comparative``) on the
   same 4-node budget: ``num_blocks=1`` pins every operation to block 0,
   whose TRAP consistency group {0, 6, 7, 8} doubles as the replica set
   of the flat baselines, so every protocol defends exactly the same
   node set. TRAP-ERC runs with its anti-entropy service (wired
   automatically by the registry), without which staleness collapses its
   write availability (see EXPERIMENTS.md).

2. **Latency under churn** — a ``latency`` scenario runs each engine on
   the event-driven runtime (docs/RUNTIME.md): closed-loop clients,
   lognormal per-message latency, and a churn faultload failing and
   repairing nodes *while operations are in flight*. The p95 columns
   show what the instant model cannot: quorum-wait tails — ERC pays its
   extra rounds (embedded read + per-level deltas) in p95 write latency,
   ROWA reads stay flat because one fast replica suffices.

The comparison shows the design point the paper argues for: TRAP-ERC
buys near-replication availability at erasure-coding storage cost,
paying in messages, decode work and tail latency.

Run:  python examples/protocol_comparison.py
"""

from repro.analysis import storage_erc, storage_fr
from repro.api import (
    FaultloadSpec,
    LatencySpec,
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    WorkloadSpec,
    protocol_names,
)

N, K = 9, 6
STEPS = 300
BLOCK = 64
PROTOCOLS = ("trap-erc", "trap-fr", "rowa", "majority")


def run_comparison() -> dict:
    spec = SystemSpec.trapezoid(
        n=N, k=K, a=2, b=1, h=1, w=2,
        workload=WorkloadSpec(block_length=BLOCK, read_fraction=0.5),
        scenario=ScenarioSpec(
            kind="comparison",
            steps=STEPS,
            max_down=2,
            protocols=PROTOCOLS,
            num_blocks=1,  # all ops on block 0: same node set for everyone
        ),
        seed=4,
    )
    return ScenarioRunner(spec).run().data


def run_latency_under_churn(protocol: str) -> dict:
    """One event-driven closed-loop run: 6 clients, churn faultload."""
    spec = SystemSpec.trapezoid(
        n=N, k=K, a=2, b=1, h=1, w=2,
        protocol=protocol,
        latency=LatencySpec(kind="lognormal", timeout=0.05, retries=1),
        workload=WorkloadSpec(num_ops=600, block_length=BLOCK),
        scenario=ScenarioSpec(
            kind="latency",
            clients=6,
            think_time=0.05,
            horizon=30.0,
            repair_interval=1.0,
            faultload=FaultloadSpec(kind="churn", mtbf=8.0, mttr=1.5),
        ),
        seed=4,
    )
    return ScenarioRunner(spec).run().data["summary"]


def main() -> None:
    comparison = run_comparison()

    print(f"{STEPS} operations on block 0, 0-2 random nodes down per step")
    print("(TRAP-ERC runs with anti-entropy between failure epochs)")
    print(f"(registry protocols available: {', '.join(protocol_names())})")
    print()
    header = (
        f"{'protocol':>10} {'read avail':>11} {'write avail':>12} "
        f"{'msg/read':>9} {'msg/write':>10} {'storage/block':>14}"
    )
    print(header)
    print("-" * len(header))
    for name in PROTOCOLS:
        res = comparison[name]
        storage = storage_erc(N, K) if name == "trap-erc" else storage_fr(N, K)
        print(
            f"{name:>10} {res['read_availability']:>11.3f} "
            f"{res['write_availability']:>12.3f} {res['messages_per_read']:>9.1f} "
            f"{res['messages_per_write']:>10.1f} {storage:>14.3f}"
        )

    print()
    print("storage/block in units of blocksize (eqs. 14-15: ERC n/k, FR n-k+1).")
    print("ROWA: perfect reads, fragile writes. Majority: balanced, 4x storage.")
    print("TRAP-ERC: near-FR availability at 2.7x less storage, paying in")
    print("messages (embedded read + parity deltas) and repair traffic.")

    print()
    print("Event-driven runtime: 6 closed-loop clients, lognormal message")
    print("latency, churn faultload (MTBF 8, MTTR 1.5) interleaving with")
    print("in-flight operations; latencies in virtual milliseconds.")
    print()
    header = (
        f"{'protocol':>10} {'read avail':>11} {'write avail':>12} "
        f"{'read p95':>9} {'write p95':>10} {'timeouts':>9}"
    )
    print(header)
    print("-" * len(header))
    for name in PROTOCOLS:
        summary = run_latency_under_churn(name)
        print(
            f"{name:>10} {summary['read_availability']:>11.3f} "
            f"{summary['write_availability']:>12.3f} "
            f"{summary['read_latency']['p95'] * 1e3:>7.2f}ms "
            f"{summary['write_latency']['p95'] * 1e3:>8.2f}ms "
            f"{summary['timeouts']:>9.0f}"
        )

    print()
    print("p95 under churn is where the protocols differentiate: every write")
    print("is an embedded quorum read plus per-level write rounds, so write")
    print("tails stack rounds; quorum-wait keeps read tails near one RTT.")
    print()
    print("Reproduce from the CLI: write spec.to_json() to comparison.json,")
    print("then run:  python -m repro.cli run --config comparison.json")


if __name__ == "__main__":
    main()
