#!/usr/bin/env python3
"""Byzantine metadata: when the root of trust itself starts lying.

`examples/byzantine_study.py` showed that a separate metadata quorum
makes corrupt *payload* nodes detectable — but that defense trusts the
metadata tier unconditionally. This study arms the metadata nodes
themselves and compares two tiers on the same (9, 6) TRAP-ERC volume:

* **fail-stop** — the PR 6 trust model: 3 metadata nodes, majority
  thresholds (read 2 of 3), unauthenticated records, newest record
  wins;
* **hardened** — the Byzantine-tolerant tier: 3f+1 = 4 nodes at f = 1,
  2f+1 = 3 write/read thresholds, writer-keyed record tags
  (self-verifying records) and the f+1-matching resolution rule
  (docs/RUNTIME.md, "The Byzantine metadata tier").

The attack in the probe is **authentic rollback**: lying metadata nodes
replay the genuine version-0 record they held before a write committed
(tags verify — the record is real, merely old), while one data node has
been restored from an old backup and still serves the version-0 bytes.
A reader steered to (version 0, digest_0) finds a payload that matches
perfectly — every check passes, and the committed write is silently
lost. Three things to notice:

* **the fail-stop tier is silently fooled**: once the liars cover its
  2-node read quorum, reads return stale bytes with no error anywhere;
* **the hardened tier holds through f and refuses at f+1**: up to
  f = 1 replaying liars cannot assemble f+1 matching records against
  the honest majority; at f+1 = 2 the colluding replays trip the
  freshness refusal — a clean failure, never wrong bytes;
* **forgery is even cheaper to stop**: a *forged* record (bumped
  version, fabricated digest) poisons the unauthenticated tier at a
  single liar — reads chase a version nobody serves — while the signed
  tier rejects the bad tag and widens past it (sweep below).

Run:  python examples/metadata_byzantine_study.py
"""

import numpy as np

from repro.api import (
    FaultloadSpec,
    LatencySpec,
    MetadataSpec,
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    WorkloadSpec,
    build_system,
)
from repro.cluster import make_rng
from repro.cluster.node import MetadataByzantineBehavior

N, K = 9, 6
BLOCK = 32

FAILSTOP = MetadataSpec(nodes=3)  # majority: read 2 of 3, unsigned
HARDENED = MetadataSpec(nodes=4, f=1)  # 3f+1, signed, f+1-matching


def base_spec(meta: MetadataSpec, liars: int, mode: str) -> SystemSpec:
    return SystemSpec.trapezoid(
        N, K, 2, 1, 1, 2,
        metadata=meta,
        latency=LatencySpec(kind="fixed", delay=0.001),
        workload=WorkloadSpec(num_ops=80, block_length=BLOCK),
        scenario=ScenarioSpec(
            kind="latency",
            clients=1,
            think_time=0.0,
            horizon=10_000.0,
            faultload=FaultloadSpec(
                kind="byzantine",
                byzantine_fraction=0.0,  # payload nodes stay honest here
                metadata_liars=liars,
                metadata_mode=mode,
                metadata_rate=1.0,
            ),
        ),
        seed=11,
    )


def rollback_probe() -> None:
    """The headline: authentic-rollback replay against a stale data node."""
    print(
        "--- Probe: rollback replay + one data node restored from a "
        "version-0 backup ---"
    )
    for label, meta, liar_counts in (
        ("fail-stop (3 nodes, read 2) ", FAILSTOP, (0, 1, 2, 3)),
        ("hardened  (4 nodes, f=1)    ", HARDENED, (0, 1, 2)),
    ):
        for liars in liar_counts:
            spec = base_spec(meta, 0, "stale_record").replace(
                scenario=ScenarioSpec(kind="smoke")
            )
            system = build_system(spec)
            data = system.initialize()
            # Prime the liars-to-be *before* the write: their replay
            # snapshot is the authentic version-0 record set.
            first = spec.cluster.num_nodes
            behaviors = []
            for idx in range(liars):
                behavior = MetadataByzantineBehavior(
                    "stale_record", 1.0, make_rng(1000 + idx)
                )
                behavior.prime(system.cluster.node(first + idx))
                behaviors.append((first + idx, behavior))
            # Commit version 1, then roll the home node's disk back to
            # the version-0 record (restored from an old backup).
            new_value = (
                make_rng(7)
                .integers(0, 256, BLOCK, dtype=np.int64)
                .astype(np.uint8)
            )
            assert system.engine.write_block(0, new_value).success
            ni = system.layout.node_of_block(0)
            system.cluster.rpc(
                ni, "put_data", system.engine.data_key(0), data[0], 0
            )
            for node_id, behavior in behaviors:
                system.cluster.node(node_id).set_byzantine(behavior)
            result = system.engine.read_block(0)
            if not result.success:
                outcome = "clean failure (no certifiable record)"
            elif np.array_equal(result.value, new_value):
                outcome = "correct"
            else:
                outcome = (
                    f"WRONG BYTES — v{result.version} served, "
                    "committed write silently lost"
                )
            print(f"  {label} liars={liars}: {outcome}")
    print()


def sweep() -> None:
    """ScenarioRunner sweep: forgery and rollback under live workloads."""
    print(
        "--- Sweep: 80-op closed loop, lying metadata nodes "
        f"(n={N}, k={K}) ---"
    )
    print(
        f"  {'mode':>12s} {'tier':>9s} {'liars':>5s} {'read avail':>10s} "
        f"{'write avail':>11s} {'tag rej':>7s} {'meta fail':>9s}"
    )
    for mode in ("forge", "stale_record"):
        for label, meta in (("fail-stop", FAILSTOP), ("hardened", HARDENED)):
            for liars in (0, 1, 2):
                data = ScenarioRunner(base_spec(meta, liars, mode)).run().data
                summary = data["summary"]
                detected = data["byzantine"]["detected"]
                print(
                    f"  {mode:>12s} {label:>9s} {liars:5d} "
                    f"{summary['read_availability']:10.3f} "
                    f"{summary['write_availability']:11.3f} "
                    f"{detected['tag_rejections']:7d} "
                    f"{detected['metadata_failures']:9d}"
                )
    print(
        "\n  One forging liar stalls the unauthenticated tier completely "
        "(reads chase a fabricated version nobody serves), while the "
        "signed tier rejects the bad tag and widens past it at full "
        "availability — collapsing cleanly only at f + 1 forgers, when "
        "the quorum is genuinely exhausted. The rollback rows stay at "
        "full availability on both tiers: replaying old records is "
        "harmless while every payload node holds the new bytes. The "
        "probe above shows what changes the moment disk state "
        "cooperates — the fail-stop tier serves wrong bytes, the "
        "hardened one never does."
    )


def main() -> None:
    print(
        f"Metadata Byzantine study: ({N}, {K}) TRAP-ERC, lying metadata "
        "nodes, self-verifying records + 3f+1 quorums.\n"
    )
    rollback_probe()
    sweep()


if __name__ == "__main__":
    main()
