#!/usr/bin/env python3
"""Byzantine storage: what verified reads cost and what they buy.

The paper's availability model is fail-stop — a node is either up or
down. Real disks lie: bit rot, firmware bugs and tampering return
*wrong bytes with a confident smile*, and a fail-stop quorum protocol
happily serves them to the client. This study arms a growing fraction
of the cluster with Byzantine behavior (corrupted payload replies) and
compares two TRAP-ERC builds:

* **fail-stop** — the paper's protocol as-is;
* **verified** — the same protocol with a separate 3-node metadata
  quorum holding per-block (version, digest) records; every payload
  reply is digest-checked and rejected replies widen the round instead
  of failing it (docs/RUNTIME.md, "Byzantine faults & verified reads").

Three things to notice:

* **silent corruption is real**: the probe below reads known data
  through the fail-stop engine with two corrupt nodes — a measurable
  share of "successful" reads returns garbage, with no error anywhere.
  The verified engine returns zero wrong reads, ever;
* **the defense is cheap until it is needed**: at fraction 0 the
  verified path adds only the metadata round traffic; read latency
  rises as corrupt nodes force round widening and decode retries;
* **the tolerance bound is the erasure bound**: with at most
  n - k = 3 corrupt nodes every verified read is still correct; at 4
  the honest copies can no longer form a k-subset and reads fail
  *cleanly* — availability collapses instead of correctness.

Run:  python examples/byzantine_study.py
"""

import numpy as np

from repro.api import (
    FaultloadSpec,
    LatencySpec,
    MetadataSpec,
    ScenarioRunner,
    ScenarioSpec,
    SystemSpec,
    WorkloadSpec,
    build_system,
)
from repro.cluster import make_rng, spawn_rngs
from repro.cluster.node import ByzantineBehavior

N, K = 9, 6
BLOCK = 32
# 0..4 corrupt nodes out of 9 (round(f * 9)); n - k = 3 is the bound.
FRACTIONS = (0.0, 0.12, 0.23, 0.34, 0.45)


def base_spec(verified: bool, fraction: float) -> SystemSpec:
    return SystemSpec.trapezoid(
        N, K, 2, 1, 1, 2,
        metadata=MetadataSpec(nodes=3) if verified else None,
        latency=LatencySpec(kind="fixed", delay=0.001),
        workload=WorkloadSpec(num_ops=80, block_length=BLOCK),
        # One closed-loop client: concurrent-client version races would
        # otherwise fail some reads in BOTH modes and blur the overhead
        # comparison this study is after.
        scenario=ScenarioSpec(
            kind="latency",
            clients=1,
            think_time=0.0,
            horizon=10_000.0,
            faultload=FaultloadSpec(
                kind="byzantine",
                byzantine_fraction=fraction,
                corruption_mode="payload",
                corruption_rate=1.0,
            ),
        ),
        seed=11,
    )


def silent_corruption_probe() -> None:
    """Read known data through both engines with 2 corrupt nodes."""
    print("--- Probe: 2 payload-corrupt nodes, 40 reads of known data ---")
    for label, verified in (("fail-stop", False), ("verified ", True)):
        spec = base_spec(verified, 0.0).replace(
            scenario=ScenarioSpec(kind="smoke")
        )
        system = build_system(spec)
        data = system.initialize()
        streams = spawn_rngs(make_rng(99), 2)
        for node_id, stream in zip((0, 3), streams):
            system.cluster.node(node_id).set_byzantine(
                ByzantineBehavior("payload", 0.5, stream)
            )
        wrong = served = 0
        for trial in range(40):
            result = system.engine.read_block(trial % K)
            if result.success:
                served += 1
                if not np.array_equal(result.value, data[trial % K]):
                    wrong += 1
        print(
            f"  {label}: {served:2d}/40 reads served, "
            f"{wrong:2d} returned WRONG BYTES"
            + ("  <- silent corruption" if wrong else "")
        )
    print()


def sweep() -> None:
    print(
        "--- Sweep: byzantine fraction vs availability / latency "
        f"(n={N}, k={K}, rate 1.0) ---"
    )
    print(
        f"  {'corrupt':>8s} {'mode':>9s} {'read avail':>10s} "
        f"{'p95 read (ms)':>13s} {'goodput/s':>9s} {'meta msgs':>9s} "
        f"{'detected':>8s}"
    )
    for fraction in FRACTIONS:
        corrupt = round(fraction * N)
        for label, verified in (("fail-stop", False), ("verified", True)):
            data = ScenarioRunner(base_spec(verified, fraction)).run().data
            summary = data["summary"]
            meta = summary["round_messages"].get("metadata", 0)
            byz = data["byzantine"]
            detected = (
                byz["detected"]["digest_mismatches"]
                if byz["detected"] is not None
                else "-"
            )
            p95 = summary["read_latency"]["p95"]
            good = (
                summary["read_latency"]["count"]
                + summary["write_latency"]["count"]
            ) / data["virtual_duration"]
            print(
                f"  {corrupt:5d}/{N:<2d} {label:>9s} "
                f"{summary['read_availability']:10.3f} "
                f"{(p95 or 0.0) * 1e3:13.2f} {good:9.1f} {meta:9d} "
                f"{detected!s:>8s}"
            )
    print(
        f"\n  The fail-stop column keeps 'succeeding' past {N - K} corrupt "
        "nodes — those reads are garbage (see the probe above). The "
        f"verified column stays correct through {N - K} corrupt nodes and "
        "fails cleanly beyond the bound: corruption becomes unavailability, "
        "never wrong data."
    )


def main() -> None:
    print(
        f"Byzantine study: ({N}, {K}) TRAP-ERC, payload-corrupting nodes, "
        "verified reads via a 3-node metadata quorum.\n"
    )
    silent_corruption_probe()
    sweep()


if __name__ == "__main__":
    main()
