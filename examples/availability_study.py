#!/usr/bin/env python3
"""Availability study: the paper's section IV, three ways.

For the calibrated Figure-3 configuration (n=15, k=8, trapezoid (2,3,1),
w=3) this example evaluates read and write availability with:

1. the paper's closed forms (eqs. 8-13),
2. exact enumeration of the Algorithm-2 predicate (ground truth),
3. vectorized Monte Carlo (predicate sampling).

and prints them side by side across node availability p, reproducing the
anchor numbers the paper quotes (FR ~ 75%, ERC ~ 63% at p = 0.5).

Run:  python examples/availability_study.py
"""

import numpy as np

from repro.analysis import (
    exact_read_erc,
    read_availability_erc,
    read_availability_fr,
    write_availability,
)
from repro.bench import FIG_K, FIG_N, fig_quorum, scan_fig3_configs
from repro.sim import mc_read_availability_erc, mc_write_availability


def main() -> None:
    quorum = fig_quorum()
    print(
        f"Configuration: n={FIG_N}, k={FIG_K}, trapezoid levels "
        f"{quorum.shape.level_sizes}, w={quorum.w}, "
        f"read thresholds r={quorum.read_thresholds}"
    )
    print()

    header = (
        f"{'p':>5} {'write(eq9)':>11} {'write(MC)':>10} "
        f"{'FR read(eq10)':>13} {'ERC read(eq13)':>14} {'ERC exact':>10} {'ERC MC':>8}"
    )
    print(header)
    print("-" * len(header))
    for p in np.arange(0.3, 1.0001, 0.1):
        p = round(float(p), 2)
        w_cf = float(write_availability(quorum, p))
        w_mc = mc_write_availability(quorum, p, trials=40_000, rng=1).mean
        fr = float(read_availability_fr(quorum, p))
        erc = float(read_availability_erc(quorum, FIG_N, FIG_K, p))
        exact = float(exact_read_erc(quorum, FIG_N, FIG_K, p))
        mc = mc_read_availability_erc(quorum, FIG_N, FIG_K, p, trials=40_000, rng=2).mean
        print(
            f"{p:5.2f} {w_cf:11.4f} {w_mc:10.4f} {fr:13.4f} "
            f"{erc:14.4f} {exact:10.4f} {mc:8.4f}"
        )

    print()
    print("Paper anchors at p=0.5: FR ~ 0.75, ERC ~ 0.63.")
    print()

    print("Calibration scan (best configurations for the Fig. 3 anchors):")
    for res in scan_fig3_configs(top=3):
        print(
            f"  k={res.k:2d} shape=(a={res.a},b={res.b},h={res.h}) w={res.w} "
            f"-> FR={res.fr_at_anchor:.4f} ERC={res.erc_at_anchor:.4f} "
            f"(score {res.score:.4f})"
        )
    print()
    print(
        "Note: eq. 13 slightly exceeds the exact Algorithm-2 availability\n"
        "(its P2 term ignores the version-check requirement); the exact\n"
        "curve never exceeds TRAP-FR. See EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
