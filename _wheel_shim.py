"""Minimal stand-in for the ``wheel`` package (offline toolchains).

Some hermetic environments ship setuptools but not ``wheel``, which breaks
PEP 517/660 installs: ``pip install -e . --no-build-isolation`` fails with
``invalid command 'bdist_wheel'`` and ``--no-use-pep517`` is refused
outright. ``setup.py`` loads this module when ``import wheel`` fails; it
registers just enough of the wheel API for setuptools' ``dist_info`` and
``editable_wheel`` commands to complete:

* a ``bdist_wheel`` command with ``get_tag()`` (always ``py3-none-any`` —
  this project is pure Python), ``write_wheelfile()`` and ``egg2dist()``
  (PKG-INFO -> METADATA, requires.txt -> Requires-Dist);
* ``wheel.wheelfile.WheelFile``: a ZipFile that hashes written members
  and appends the RECORD on close, per the wheel spec.

When the real ``wheel`` distribution is available (any networked dev
machine, CI) this module is never imported.
"""

from __future__ import annotations

import base64
import hashlib
import os
import shutil
import sys
import types
import zipfile

from distutils.core import Command

_WHEEL_TAG = ("py3", "none", "any")


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """ZipFile that maintains the dist-info RECORD, like wheel's own."""

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode, compression=compression)
        stem = os.path.basename(str(file))
        if stem.endswith(".whl"):
            stem = stem[: -len(".whl")]
        name, version = stem.split("-")[:2]
        self.dist_info_path = f"{name}-{version}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._records: list[str] = []

    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        arcname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else zinfo_or_arcname
        )
        if isinstance(data, str):
            data = data.encode("utf-8")
        if arcname != self.record_path:
            self._records.append(f"{arcname},{_record_hash(data)},{len(data)}")

    def write(self, filename, arcname=None, *args, **kwargs):
        super().write(filename, arcname, *args, **kwargs)
        arcname = arcname if arcname is not None else os.path.basename(filename)
        with open(filename, "rb") as handle:
            data = handle.read()
        if arcname != self.record_path:
            self._records.append(f"{arcname},{_record_hash(data)},{len(data)}")

    def write_files(self, base_dir):
        """Add every file under ``base_dir`` (RECORD always last)."""
        deferred = []
        for root, _dirs, files in os.walk(base_dir):
            for name in sorted(files):
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname == self.record_path:
                    deferred.append((path, arcname))
                else:
                    self.write(path, arcname)
        for path, arcname in deferred:
            self.write(path, arcname)

    def close(self):
        if self.fp is not None and self.mode == "w":
            record = "\n".join(self._records + [f"{self.record_path},,", ""])
            super().writestr(self.record_path, record)
        super().close()


def _convert_requires(requires_path: str):
    """requires.txt lines -> (Requires-Dist values, Provides-Extra names)."""
    requires: list[str] = []
    extras: list[str] = []
    if not os.path.exists(requires_path):
        return requires, extras
    extra = marker = None
    with open(requires_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("[") and line.endswith("]"):
                section = line[1:-1]
                extra, _, marker = section.partition(":")
                if extra:
                    extras.append(extra)
                continue
            clauses = []
            if marker:
                clauses.append(f"({marker})" if " or " in marker else marker)
            if extra:
                clauses.append(f'extra == "{extra}"')
            requires.append(line + ("; " + " and ".join(clauses) if clauses else ""))
    return requires, extras


class bdist_wheel(Command):
    """The three entry points setuptools' PEP 660 path actually calls."""

    description = "minimal bdist_wheel stand-in (editable installs only)"
    user_options = []

    def initialize_options(self):
        self.dist_dir = None

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"

    def run(self):  # pragma: no cover - never used for full wheels
        raise RuntimeError(
            "building full wheels needs the real 'wheel' package; "
            "this shim only supports editable installs"
        )

    def get_tag(self):
        return _WHEEL_TAG

    def wheel_file_lines(self):
        return [
            "Wheel-Version: 1.0",
            "Generator: repro-wheel-shim (1.0)",
            "Root-Is-Purelib: true",
            f"Tag: {'-'.join(_WHEEL_TAG)}",
            "",
        ]

    def write_wheelfile(self, dist_info_dir):
        path = os.path.join(dist_info_dir, "WHEEL")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(self.wheel_file_lines()))

    def egg2dist(self, egg_info_dir, dist_info_dir):
        """Convert an .egg-info directory into a .dist-info directory."""
        if os.path.exists(dist_info_dir):
            shutil.rmtree(dist_info_dir)
        os.makedirs(dist_info_dir)
        with open(
            os.path.join(egg_info_dir, "PKG-INFO"), encoding="utf-8"
        ) as handle:
            pkg_info = handle.read()
        body = ""
        if "\n\n" in pkg_info:
            pkg_info, body = pkg_info.split("\n\n", 1)
        headers = [line for line in pkg_info.splitlines() if line.strip()]
        requires, extras = _convert_requires(
            os.path.join(egg_info_dir, "requires.txt")
        )
        headers.extend(f"Provides-Extra: {name}" for name in extras)
        headers.extend(f"Requires-Dist: {req}" for req in requires)
        metadata = "\n".join(headers) + "\n"
        if body:
            metadata += "\n" + body
        with open(
            os.path.join(dist_info_dir, "METADATA"), "w", encoding="utf-8"
        ) as handle:
            handle.write(metadata)
        self.write_wheelfile(dist_info_dir)
        entry_points = os.path.join(egg_info_dir, "entry_points.txt")
        if os.path.exists(entry_points):
            shutil.copy(entry_points, os.path.join(dist_info_dir, "entry_points.txt"))
        shutil.rmtree(egg_info_dir)


def install_shim() -> dict:
    """Register the fake ``wheel`` modules; return extra setup() kwargs."""
    wheel_mod = types.ModuleType("wheel")
    wheel_mod.__version__ = "0.0.shim"
    wheelfile_mod = types.ModuleType("wheel.wheelfile")
    wheelfile_mod.WheelFile = WheelFile
    wheel_mod.wheelfile = wheelfile_mod
    bdist_mod = types.ModuleType("wheel.bdist_wheel")
    bdist_mod.bdist_wheel = bdist_wheel
    wheel_mod.bdist_wheel = bdist_mod
    sys.modules.setdefault("wheel", wheel_mod)
    sys.modules.setdefault("wheel.wheelfile", wheelfile_mod)
    sys.modules.setdefault("wheel.bdist_wheel", bdist_mod)
    return {"cmdclass": {"bdist_wheel": bdist_wheel}}
