"""A retrying disk client: what a VM's block driver would look like.

Wraps :class:`VirtualDisk` with bounded retries and periodic anti-entropy,
turning the protocol's fail-fast quorum operations into the blocking
semantics a guest filesystem expects, while preserving strict consistency
(a retried write simply re-runs Algorithm 1 at a higher version).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.volume import VirtualDisk

__all__ = ["ClientStats", "DiskClient"]


@dataclass
class ClientStats:
    """Operation outcomes as seen by the guest."""

    reads: int = 0
    writes: int = 0
    read_retries: int = 0
    write_retries: int = 0
    read_failures: int = 0
    write_failures: int = 0
    repair_passes: int = 0


class DiskClient:
    """Bounded-retry facade over a :class:`VirtualDisk`."""

    def __init__(
        self,
        disk: VirtualDisk,
        max_retries: int = 2,
        repair_on_failure: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        self.disk = disk
        self.max_retries = int(max_retries)
        self.repair_on_failure = bool(repair_on_failure)
        self.stats = ClientStats()

    def read(self, block: int) -> bytes | None:
        """Read with retries (+ optional repair between attempts)."""
        self.stats.reads += 1
        for attempt in range(self.max_retries + 1):
            data = self.disk.read(block)
            if data is not None:
                return data
            if attempt < self.max_retries:
                self.stats.read_retries += 1
                self._maybe_repair()
        self.stats.read_failures += 1
        return None

    def write(self, block: int, data: bytes) -> bool:
        """Write with retries (+ optional repair between attempts)."""
        self.stats.writes += 1
        for attempt in range(self.max_retries + 1):
            if self.disk.write(block, data):
                return True
            if attempt < self.max_retries:
                self.stats.write_retries += 1
                self._maybe_repair()
        self.stats.write_failures += 1
        return False

    def _maybe_repair(self) -> None:
        if self.repair_on_failure:
            self.stats.repair_passes += 1
            self.disk.repair_all()
