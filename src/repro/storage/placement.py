"""Placement policies: spreading parity roles across the cluster.

With the identity layout every stripe puts its parity blocks on the same
n - k nodes, which concentrates delta-update traffic there (the RAID-4
problem). Rotating the block-to-node mapping per stripe (RAID-5 style)
spreads both the parity write load and the level-0 read pressure.

Policies produce a :class:`~repro.erasure.stripe.StripeLayout` per stripe
index; :class:`~repro.storage.volume.VirtualDisk` accepts a policy.
"""

from __future__ import annotations

from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError

__all__ = ["PlacementPolicy", "IdentityPlacement", "RotatingPlacement"]


class PlacementPolicy:
    """Maps a stripe index to a block -> node layout."""

    def __init__(self, n: int, k: int, num_nodes: int) -> None:
        if k < 1 or n < k:
            raise ConfigurationError(f"invalid (n={n}, k={k})")
        if num_nodes < n:
            raise ConfigurationError(
                f"cluster of {num_nodes} nodes cannot host n={n} blocks"
            )
        self.n = n
        self.k = k
        self.num_nodes = num_nodes

    def layout_for(self, stripe_index: int) -> StripeLayout:  # pragma: no cover
        raise NotImplementedError

    def parity_load(self, num_stripes: int) -> dict[int, int]:
        """Node id -> number of stripes whose parity it stores."""
        load: dict[int, int] = {node: 0 for node in range(self.num_nodes)}
        for s in range(num_stripes):
            for node in self.layout_for(s).parity_nodes:
                load[node] += 1
        return load


class IdentityPlacement(PlacementPolicy):
    """Every stripe uses nodes 0..n-1 in block order (RAID-4 style)."""

    def layout_for(self, stripe_index: int) -> StripeLayout:
        if stripe_index < 0:
            raise ConfigurationError("stripe_index must be >= 0")
        return StripeLayout(self.n, self.k, tuple(range(self.n)))


class RotatingPlacement(PlacementPolicy):
    """Rotate the node assignment by one per stripe (RAID-5 style).

    Stripe s places block b on node ``(b + s) % num_nodes``; with
    num_nodes >= n the assignment is always collision-free, and over
    num_nodes consecutive stripes every node serves every role equally
    often when num_nodes == n.
    """

    def layout_for(self, stripe_index: int) -> StripeLayout:
        if stripe_index < 0:
            raise ConfigurationError("stripe_index must be >= 0")
        ids = tuple((b + stripe_index) % self.num_nodes for b in range(self.n))
        return StripeLayout(self.n, self.k, ids)
