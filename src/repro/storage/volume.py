"""Virtual disk: the paper's motivating application, built on TRAP-ERC.

"when users' data stored on virtual disks is accessed by several virtual
machines, a strict consistency protocol is required in any case to avoid
incoherent data" — this module is that use case: a logical block device
whose blocks are erasure-coded across the cluster and kept strongly
consistent by the trapezoid protocol.

A :class:`VirtualDisk` of ``num_blocks`` logical blocks of ``block_size``
bytes maps each group of k logical blocks onto one TRAP-ERC stripe.
Logical block b lives in stripe ``b // k`` as data block ``b % k``; reads
and writes go through Algorithms 2 and 1 respectively, so every logical
block keeps linearizable semantics under node failures.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.repair import RepairService
from repro.core.trap_erc import TrapErcProtocol
from repro.erasure.code import MDSCode
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum, default_shape_for_nbnode

__all__ = ["VirtualDisk"]


class VirtualDisk:
    """A strongly consistent logical block device over an (n, k) code.

    Parameters
    ----------
    cluster:
        Storage cluster with at least n nodes.
    num_blocks:
        Logical capacity in blocks (rounded up to whole stripes internally).
    block_size:
        Bytes per logical block.
    n, k:
        Erasure-code parameters per stripe.
    quorum:
        Trapezoid specification; defaults to the canonical shape for
        n - k + 1 nodes with the paper's eq. 16 write-quorum vector.
    placement:
        Optional :class:`~repro.storage.placement.PlacementPolicy` that
        assigns each stripe's blocks to nodes (e.g. RAID-5-style
        rotation); defaults to the identity layout on nodes 0..n-1.

    Examples
    --------
    >>> from repro.cluster import Cluster
    >>> disk = VirtualDisk(Cluster(9), num_blocks=12, block_size=64, n=9, k=6)
    >>> disk.format()
    >>> disk.write(5, b"hello world")
    True
    >>> disk.read(5)[:11]
    b'hello world'
    """

    def __init__(
        self,
        cluster: Cluster,
        num_blocks: int,
        block_size: int,
        n: int,
        k: int,
        quorum: TrapezoidQuorum | None = None,
        placement=None,
    ) -> None:
        if num_blocks < 1:
            raise ConfigurationError(f"num_blocks must be >= 1, got {num_blocks}")
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        if quorum is None:
            quorum = TrapezoidQuorum.uniform(default_shape_for_nbnode(n - k + 1))
        self.cluster = cluster
        self.num_blocks = int(num_blocks)
        self.block_size = int(block_size)
        self.code = MDSCode(n, k)
        self.quorum = quorum
        self.placement = placement
        self.num_stripes = -(-num_blocks // k)
        self.stripes: list[TrapErcProtocol] = [
            TrapErcProtocol(
                cluster,
                self.code,
                quorum,
                layout=placement.layout_for(s) if placement is not None else None,
                stripe_id=f"vd-{s}",
            )
            for s in range(self.num_stripes)
        ]
        self.repair_services = [RepairService(p) for p in self.stripes]
        self._formatted = False

    # ------------------------------------------------------------------ #

    def _locate(self, block: int) -> tuple[TrapErcProtocol, int]:
        if not 0 <= block < self.num_blocks:
            raise ConfigurationError(
                f"block must be in [0, {self.num_blocks}), got {block}"
            )
        return self.stripes[block // self.code.k], block % self.code.k

    def format(self) -> None:
        """Zero-fill every stripe (requires the full cluster up)."""
        zeros = np.zeros((self.code.k, self.block_size), dtype=np.uint8)
        for stripe in self.stripes:
            stripe.initialize(zeros)
        self._formatted = True

    def _check_formatted(self) -> None:
        if not self._formatted:
            raise ConfigurationError("disk not formatted: call format() first")

    # ------------------------------------------------------------------ #

    def write(self, block: int, data: bytes) -> bool:
        """Write one logical block; pads/truncates to ``block_size``.

        Returns True iff the quorum write was acknowledged. A False return
        means the write MUST be retried (it may or may not become visible,
        like any failed quorum write).
        """
        self._check_formatted()
        stripe, i = self._locate(block)
        if len(data) > self.block_size:
            raise ConfigurationError(
                f"payload of {len(data)} bytes exceeds block size {self.block_size}"
            )
        buf = np.zeros(self.block_size, dtype=np.uint8)
        buf[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        return bool(stripe.write_block(i, buf).success)

    def read(self, block: int) -> bytes | None:
        """Read one logical block (None when no quorum is reachable)."""
        self._check_formatted()
        stripe, i = self._locate(block)
        result = stripe.read_block(i)
        if not result.success:
            return None
        return result.value.tobytes()

    def write_span(self, start_block: int, data: bytes) -> bool:
        """Write a multi-block span; True iff every block write acked."""
        self._check_formatted()
        ok = True
        for offset in range(0, max(1, len(data)), self.block_size):
            chunk = data[offset : offset + self.block_size]
            ok &= self.write(start_block + offset // self.block_size, chunk)
        return ok

    def read_span(self, start_block: int, num_blocks: int) -> bytes | None:
        """Read ``num_blocks`` consecutive blocks (None if any read fails)."""
        self._check_formatted()
        parts = []
        for b in range(start_block, start_block + num_blocks):
            data = self.read(b)
            if data is None:
                return None
            parts.append(data)
        return b"".join(parts)

    # ------------------------------------------------------------------ #

    def repair_all(self) -> int:
        """Run anti-entropy across every stripe; returns repairs done."""
        return sum(svc.sync_all() for svc in self.repair_services)

    def capacity_bytes(self) -> int:
        """Logical capacity in bytes."""
        return self.num_blocks * self.block_size

    def raw_storage_bytes(self) -> float:
        """Physical bytes consumed across the cluster (eq. 15 per stripe)."""
        return self.num_stripes * self.code.n * self.block_size

    def storage_efficiency(self) -> float:
        """Logical / physical bytes = k/n for full stripes."""
        return self.capacity_bytes() / self.raw_storage_bytes()
