"""Storage middleware (DESIGN.md S8): the virtual-disk use case.

The paper motivates TRAP-ERC with virtual-machine disk storage; this
package provides that application: a strongly consistent logical block
device (:class:`VirtualDisk`) striped over TRAP-ERC, plus the retrying
:class:`DiskClient` a guest would use.
"""

from repro.storage.client import ClientStats, DiskClient
from repro.storage.placement import (
    IdentityPlacement,
    PlacementPolicy,
    RotatingPlacement,
)
from repro.storage.volume import VirtualDisk

__all__ = [
    "VirtualDisk",
    "DiskClient",
    "ClientStats",
    "PlacementPolicy",
    "IdentityPlacement",
    "RotatingPlacement",
]
