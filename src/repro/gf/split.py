"""Split-table (nibble) multiplication for GF(2^8).

The technique behind SIMD erasure coders (PSHUFB / vgf2p8affine eras):
decompose each byte x = hi·16 ^ lo and use linearity of the field action,

    c * x = c * (hi·16) ^ c * lo,

so multiplying a whole block by a constant c needs only two 16-entry
lookup tables and one XOR per byte — 32 bytes of tables instead of a
256-byte row, which is what lets hardware keep the tables in vector
registers. In numpy the gathers are fancy-indexing; the point here is a
third independent implementation of the hot kernel (full-table, exp/log
and split-table must all agree) plus the table-size/throughput trade-off
the benchmarks report.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError
from repro.gf.field import GF2m

__all__ = ["SplitTableMultiplier", "split_tables"]


def split_tables(field: GF2m, c: int) -> tuple[np.ndarray, np.ndarray]:
    """The two 16-entry tables for multiplication by ``c`` in GF(2^8).

    ``lo[x] = c * x`` for x in 0..15, ``hi[x] = c * (x << 4)``.
    """
    if field.width != 8:
        raise FieldError("split tables are defined for GF(2^8) only")
    c = int(c)
    if not 0 <= c < field.order:
        raise FieldError(f"scalar {c} out of range for GF(2^8)")
    nibbles = np.arange(16, dtype=field.dtype)
    lo = field.mul(np.full(16, c, dtype=field.dtype), nibbles)
    hi = field.mul(np.full(16, c, dtype=field.dtype), nibbles << 4)
    return lo, hi


class SplitTableMultiplier:
    """Caches split tables per scalar; applies them to byte blocks."""

    def __init__(self, field: GF2m) -> None:
        if field.width != 8:
            raise FieldError("split tables are defined for GF(2^8) only")
        self.field = field
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def tables_for(self, c: int) -> tuple[np.ndarray, np.ndarray]:
        tables = self._cache.get(int(c))
        if tables is None:
            tables = split_tables(self.field, c)
            self._cache[int(c)] = tables
        return tables

    def scalar_mul(self, c: int, vec: np.ndarray) -> np.ndarray:
        """``c * vec`` using the two nibble tables."""
        vec = np.asarray(vec, dtype=self.field.dtype)
        c = int(c)
        if c == 0:
            return np.zeros_like(vec)
        if c == 1:
            return vec.copy()
        lo, hi = self.tables_for(c)
        return lo[vec & 0x0F] ^ hi[vec >> 4]

    def addmul_into(self, dst: np.ndarray, c: int, src: np.ndarray) -> None:
        """In-place ``dst ^= c * src`` via the nibble tables."""
        if int(c) == 0:
            return
        np.bitwise_xor(dst, self.scalar_mul(c, src), out=dst)

    def table_bytes(self) -> int:
        """Resident table footprint (32 bytes per cached scalar)."""
        return 32 * len(self._cache)
