"""Binary-polynomial utilities and primitive polynomials for GF(2^w).

Polynomials over GF(2) are represented as Python integers whose bits are the
coefficients: ``x^4 + x + 1`` is ``0b10011 = 0x13``. This module provides

* carry-less polynomial arithmetic (multiply, mod, gcd, powmod),
* irreducibility (Rabin's test) and primitivity tests,
* a registry of default primitive polynomials for widths 2..16, backed by a
  deterministic search so that *any* width in range works even if it is not
  in the seeded table.

These are exactly the tools needed to construct the GF(2^h) arithmetic the
paper's equation (1) relies on ("arithmetic is over some finite field,
usually GF(2^h)").
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import FieldError

__all__ = [
    "poly_degree",
    "poly_mul",
    "poly_mod",
    "poly_mulmod",
    "poly_powmod",
    "poly_gcd",
    "is_irreducible",
    "is_primitive",
    "find_primitive_poly",
    "default_primitive_poly",
    "SEED_PRIMITIVE_POLYS",
]

#: Well-known primitive polynomials (Plank's coding tables / CCSDS usage).
#: Every entry is verified primitive by the test suite; unlisted widths are
#: found by :func:`find_primitive_poly`.
SEED_PRIMITIVE_POLYS: dict[int, int] = {
    2: 0x7,  # x^2 + x + 1
    3: 0xB,  # x^3 + x + 1
    4: 0x13,  # x^4 + x + 1
    8: 0x11D,  # x^8 + x^4 + x^3 + x^2 + 1 (the Reed-Solomon classic)
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}

MIN_WIDTH = 2
MAX_WIDTH = 16


def poly_degree(f: int) -> int:
    """Degree of the binary polynomial ``f`` (-1 for the zero polynomial)."""
    return f.bit_length() - 1


def poly_mul(f: int, g: int) -> int:
    """Carry-less product of two binary polynomials."""
    result = 0
    while g:
        if g & 1:
            result ^= f
        f <<= 1
        g >>= 1
    return result


def poly_mod(f: int, m: int) -> int:
    """Remainder of ``f`` modulo ``m`` over GF(2)."""
    if m == 0:
        raise FieldError("polynomial modulus must be nonzero")
    dm = poly_degree(m)
    while poly_degree(f) >= dm:
        f ^= m << (poly_degree(f) - dm)
    return f


def poly_mulmod(f: int, g: int, m: int) -> int:
    """``f * g mod m`` over GF(2)."""
    return poly_mod(poly_mul(f, g), m)


def poly_powmod(f: int, e: int, m: int) -> int:
    """``f ** e mod m`` over GF(2) via square-and-multiply."""
    result = 1
    f = poly_mod(f, m)
    while e:
        if e & 1:
            result = poly_mulmod(result, f, m)
        f = poly_mulmod(f, f, m)
        e >>= 1
    return result


def poly_gcd(f: int, g: int) -> int:
    """Greatest common divisor of two binary polynomials."""
    while g:
        f, g = g, poly_mod(f, g)
    return f


def _prime_factors(n: int) -> list[int]:
    """Distinct prime factors of ``n`` by trial division (n <= 2^16 here)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(f: int) -> bool:
    """Rabin's irreducibility test for a binary polynomial ``f``.

    ``f`` of degree w is irreducible over GF(2) iff ``x^(2^w) == x (mod f)``
    and, for every prime divisor p of w, ``gcd(x^(2^(w/p)) - x, f) == 1``.
    """
    w = poly_degree(f)
    if w <= 0:
        return False
    if w == 1:
        return True
    x = 0b10
    # x^(2^w) mod f via repeated squaring of x.
    t = x
    for _ in range(w):
        t = poly_mulmod(t, t, f)
    if t != x:
        return False
    for p in _prime_factors(w):
        t = x
        for _ in range(w // p):
            t = poly_mulmod(t, t, f)
        if poly_gcd(t ^ x, f) != 1:
            return False
    return True


def is_primitive(f: int) -> bool:
    """True iff ``f`` is primitive: irreducible and ``x`` generates the
    multiplicative group of GF(2)[x]/(f), i.e. ord(x) = 2^w - 1."""
    w = poly_degree(f)
    if w < 1 or not is_irreducible(f):
        return False
    order = (1 << w) - 1
    for p in _prime_factors(order):
        if poly_powmod(0b10, order // p, f) == 1:
            return False
    return True


@lru_cache(maxsize=None)
def find_primitive_poly(width: int) -> int:
    """Smallest primitive polynomial of the given degree.

    Deterministic: scans candidates ``2^width + c`` for odd ``c`` (a
    polynomial with zero constant term is divisible by x, hence reducible).
    """
    if not MIN_WIDTH <= width <= MAX_WIDTH:
        raise FieldError(
            f"field width must be in [{MIN_WIDTH}, {MAX_WIDTH}], got {width}"
        )
    base = 1 << width
    for c in range(1, base, 2):
        candidate = base | c
        if is_primitive(candidate):
            return candidate
    raise FieldError(f"no primitive polynomial of degree {width} found")


def default_primitive_poly(width: int) -> int:
    """Default primitive polynomial for ``GF(2^width)``.

    Uses the seeded literature values when available, otherwise the smallest
    primitive polynomial of that degree.
    """
    if not MIN_WIDTH <= width <= MAX_WIDTH:
        raise FieldError(
            f"field width must be in [{MIN_WIDTH}, {MAX_WIDTH}], got {width}"
        )
    return SEED_PRIMITIVE_POLYS.get(width) or find_primitive_poly(width)
