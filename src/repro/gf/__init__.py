"""Finite-field substrate: GF(2^w) arithmetic and linear algebra.

This package is substrate S1 of the reproduction (see DESIGN.md): the
arithmetic over GF(2^h) that the paper's equation (1) requires for
computing parity blocks ``b_j = sum_i alpha_ji * b_i``.
"""

from repro.gf.bitmatrix import (
    bitmatrix_matvec,
    bitmatrix_to_element,
    element_to_bitmatrix,
    expand_matrix,
    xor_count,
)
from repro.gf.field import GF256, GF2m
from repro.gf.kernels import (
    gf_matmul,
    gf_matvec,
    gf_scaled_rows,
    xor_blocks,
    xor_into,
)
from repro.gf.split import SplitTableMultiplier, split_tables
from repro.gf.linalg import (
    cauchy,
    identity,
    inverse,
    is_invertible,
    matmul,
    matmul_reference,
    matvec,
    matvec_reference,
    rank,
    solve,
    vandermonde,
)
from repro.gf.polynomials import (
    SEED_PRIMITIVE_POLYS,
    default_primitive_poly,
    find_primitive_poly,
    is_irreducible,
    is_primitive,
)

__all__ = [
    "GF2m",
    "GF256",
    "element_to_bitmatrix",
    "bitmatrix_to_element",
    "expand_matrix",
    "bitmatrix_matvec",
    "xor_count",
    "SplitTableMultiplier",
    "split_tables",
    "gf_matmul",
    "gf_matvec",
    "gf_scaled_rows",
    "xor_into",
    "xor_blocks",
    "identity",
    "matmul",
    "matmul_reference",
    "matvec",
    "matvec_reference",
    "inverse",
    "rank",
    "solve",
    "is_invertible",
    "vandermonde",
    "cauchy",
    "SEED_PRIMITIVE_POLYS",
    "default_primitive_poly",
    "find_primitive_poly",
    "is_irreducible",
    "is_primitive",
]
