"""Batched GF(2^w) kernels: the throughput layer under the erasure stack.

The reference implementations in :mod:`repro.gf.linalg` are written for
clarity: :func:`~repro.gf.linalg.matmul_reference` XOR-accumulates one
outer product per inner index, and every outer product pays the full
exp/log + zero-masking cost of :meth:`GF2m.mul`. That is fine for the
small matrices of the analysis layer but leaves an order of magnitude on
the table for the storage hot paths, where one operand is a short
coefficient matrix (k or n - k rows) and the other a wide block matrix
(L = tens of KiB columns, possibly many stripes side by side).

This module holds the production kernels (all bit-identical to the
reference paths; the property tests in ``tests/gf/test_kernels.py``
enforce that):

* :func:`gf_matmul` / :func:`gf_matvec` — for w <= 8 each inner index
  contributes one fancy-index gather (``np.take``) out of an (m, 256)
  slice of the field's full multiplication table — the slice lives in L1,
  so the gather runs at memory speed — XOR-folded into the accumulator:
  no int64 temporaries, no zero masking, one uint8 pass per inner index.
  (A single 3-D ``table[a[:, :, None], b[None, :, :]]`` gather +
  ``bitwise_xor.reduce`` computes the same thing in one expression but
  measures ~4x slower: broadcasting the index arrays dominates.) For
  w > 8 the full table would be gigabytes, so the kernel falls back to a
  per-inner-index exp/log gather that still avoids the elementwise
  ``mul`` overhead where it can.
* :func:`xor_into` / :func:`xor_blocks` — the parity-delta fold
  ``dst ^= src`` re-viewed as machine words (uint64) when alignment
  allows, which is how production RS codecs fold deltas.
* :func:`gf_scaled_rows` — row-wise scalar multiple gather used by the
  batched encoders.

All kernels take the field object explicitly (no global state), matching
the conventions of :mod:`repro.gf.linalg`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError
from repro.gf.field import GF2m

__all__ = [
    "gf_matmul",
    "gf_matvec",
    "gf_scaled_rows",
    "xor_into",
    "xor_blocks",
]


def _as_field_matrix(field: GF2m, a, name: str) -> np.ndarray:
    a = np.asarray(a, dtype=field.dtype)
    if a.ndim != 2:
        raise FieldError(f"{name} must be 2-D, got shape {a.shape}")
    return a


def _matmul_small(field: GF2m, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """w <= 8 kernel: one table-row gather per inner index, XOR-folded.

    ``table[a[:, t]]`` selects the m multiplication-table rows for inner
    index t (m x 256 bytes, L1-resident); ``np.take(..., b[t], axis=1)``
    then gathers all m partial-product rows in one call. No zero-masking
    is needed: the table already encodes ``0 * x = 0``. The Python loop
    length is only the shared dimension (k or n - k in the paper's
    regime), never the block length.
    """
    table = field.mul_table()
    out = np.take(table[a[:, 0]], b[0], axis=1)
    for t in range(1, a.shape[1]):
        contrib = np.take(table[a[:, t]], b[t], axis=1)
        np.bitwise_xor(out, contrib, out=out)
    return out


def _matmul_wide_field(field: GF2m, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """w > 8 fallback: per-inner-index exp/log gather (no full table).

    The loop length is the shared dimension (k or n - k in the paper's
    regime); each iteration is a single-pass gather ``exp[log a + log b]``
    with the zero rows/columns handled up front instead of per element.
    """
    m, t = a.shape
    cols = b.shape[1]
    out = np.zeros((m, cols), dtype=field.dtype)
    log = field._log
    exp = field._exp
    for idx in range(t):
        a_col = a[:, idx]
        nz_rows = np.nonzero(a_col)[0]
        if nz_rows.size == 0:
            continue
        b_row = b[idx]
        la = log[a_col[nz_rows]][:, None]
        contrib = exp[la + log[b_row][None, :]]
        # exp/log is only valid for nonzero operands; zero the columns
        # where b is 0 (a is already filtered to nonzero rows).
        contrib[:, b_row == 0] = 0
        out[nz_rows] = np.bitwise_xor(out[nz_rows], contrib)
    return out


def gf_matmul(field: GF2m, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^w), bit-identical to the reference matmul.

    Fast path (w <= 8): fancy-index gather into the full multiplication
    table + ``bitwise_xor.reduce`` over the shared dimension. Fallback
    (w > 8): exp/log gathers per inner index.
    """
    a = _as_field_matrix(field, a, "a")
    b = _as_field_matrix(field, b, "b")
    if a.shape[1] != b.shape[0]:
        raise FieldError(f"shape mismatch for matmul: {a.shape} x {b.shape}")
    if a.shape[1] == 0:
        return np.zeros((a.shape[0], b.shape[1]), dtype=field.dtype)
    if field.width <= 8:
        return _matmul_small(field, a, b)
    return _matmul_wide_field(field, a, b)


def gf_matvec(field: GF2m, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2^w) through the batched kernel."""
    a = _as_field_matrix(field, a, "a")
    x = np.asarray(x, dtype=field.dtype)
    if x.ndim != 1 or a.shape[1] != x.shape[0]:
        raise FieldError(f"shape mismatch for matvec: {a.shape} x {x.shape}")
    return gf_matmul(field, a, x[:, None])[:, 0]


def gf_scaled_rows(field: GF2m, coeffs, vec) -> np.ndarray:
    """Rows ``coeffs[i] * vec`` for a coefficient vector and one block.

    Shape: coeffs (m,) x vec (L,) -> (m, L). For w <= 8 this is a single
    2-D gather (each output row is one row-slice of the multiplication
    table indexed by the block); the parity-delta fan-out of Algorithm 1
    is exactly this shape.
    """
    coeffs = np.asarray(coeffs, dtype=field.dtype)
    vec = np.asarray(vec, dtype=field.dtype)
    if coeffs.ndim != 1 or vec.ndim != 1:
        raise FieldError("gf_scaled_rows expects coeffs (m,) and vec (L,)")
    if field.width <= 8:
        return field.mul_table()[coeffs[:, None], vec[None, :]]
    return field.mul(coeffs[:, None], vec[None, :])


# --------------------------------------------------------------------- #
# word-view XOR folds
# --------------------------------------------------------------------- #


def _word_view(arr: np.ndarray) -> np.ndarray | None:
    """uint64 view of a byte-sized contiguous array, or None if not viewable."""
    if arr.dtype.itemsize != 1 or not arr.flags.c_contiguous:
        return None
    if (arr.size % 8) or (arr.ctypes.data % 8):
        return None
    # Flatten first: viewing uint64 directly requires the *last axis* to be
    # word-divisible, while a flat view only needs the total size to be.
    return arr.reshape(-1).view(np.uint64)


def xor_into(dst: np.ndarray, src: np.ndarray) -> None:
    """In-place ``dst ^= src`` folding 8 bytes per XOR when alignment allows.

    This is the parity-delta fold of Algorithm 1 (``b_j ^= alpha_ji * delta``)
    once the scaled delta buffer exists; for uint8 blocks whose length is a
    multiple of 8 the fold runs over a uint64 word view.
    """
    if dst.shape != src.shape:
        raise FieldError(f"xor_into shape mismatch: {dst.shape} vs {src.shape}")
    if dst.dtype != src.dtype:
        src = np.asarray(src, dtype=dst.dtype)
    dw = _word_view(dst)
    sw = _word_view(src)
    if dw is not None and sw is not None:
        np.bitwise_xor(dw, sw, out=dw)
        return
    np.bitwise_xor(dst, src, out=dst)


def xor_blocks(blocks: np.ndarray) -> np.ndarray:
    """XOR-fold the rows of a (m, L) array into one (L,) block.

    Uses the uint64 word view when the row stride allows; the pure-XOR
    aggregation path of flat (replication-style) parity and of the
    coefficient-1 rows in batched encodes.
    """
    blocks = np.ascontiguousarray(blocks)
    if blocks.ndim != 2:
        raise FieldError(f"xor_blocks expects a 2-D array, got {blocks.shape}")
    if blocks.dtype.itemsize == 1 and blocks.shape[1] % 8 == 0:
        wide = _word_view(blocks.reshape(-1))
        if wide is not None:
            words = wide.reshape(blocks.shape[0], -1)
            return np.bitwise_xor.reduce(words, axis=0).view(blocks.dtype)
    return np.bitwise_xor.reduce(blocks, axis=0)
