"""Bit-matrix representation of GF(2^w): XOR-only erasure coding.

Classic Cauchy-Reed-Solomon technique (Blaum et al.): every element a of
GF(2^w) acts on the field as a linear map over GF(2)^w, representable as
a w x w binary matrix M(a) with

    M(a) @ bits(x) = bits(a * x)        (all arithmetic mod 2)
    M(a ^ b) = M(a) ^ M(b),  M(a * b) = M(a) @ M(b)

Expanding a generator matrix entrywise into these blocks turns the whole
codec into pure XORs of word-sized lanes — no table lookups — which is
how production erasure coders (Jerasure's bitmatrix mode, EC libraries
on CPUs without GF-NI) hit memory bandwidth. Here it serves two purposes:

* an **independent third implementation** of the field action (tables,
  Lagrange, and now bit matrices must all agree — the tests enforce it),
* the substrate for the XOR-count cost model: the number of 1-bits in
  the expanded matrix is the XOR cost of an encode, the metric Cauchy-RS
  constructions are optimized for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError
from repro.gf.field import GF2m

__all__ = [
    "element_to_bitmatrix",
    "bitmatrix_to_element",
    "expand_matrix",
    "bitmatrix_matvec",
    "xor_count",
]


def element_to_bitmatrix(field: GF2m, a: int) -> np.ndarray:
    """The w x w GF(2) matrix of "multiply by a" in the standard basis.

    Column j holds bits(a * x^j): the image of basis vector x^j.
    """
    a = int(a)
    if not 0 <= a < field.order:
        raise FieldError(f"element {a} out of range for GF(2^{field.width})")
    w = field.width
    out = np.zeros((w, w), dtype=np.uint8)
    for j in range(w):
        col = int(field.mul(a, 1 << j))
        for i in range(w):
            out[i, j] = (col >> i) & 1
    return out


def bitmatrix_to_element(field: GF2m, m: np.ndarray) -> int:
    """Inverse of :func:`element_to_bitmatrix` (first column = bits(a)).

    Raises FieldError if ``m`` is not the matrix of a field element.
    """
    m = np.asarray(m, dtype=np.uint8)
    w = field.width
    if m.shape != (w, w):
        raise FieldError(f"bit matrix must be {w}x{w}, got {m.shape}")
    a = 0
    for i in range(w):
        a |= int(m[i, 0]) << i
    if not np.array_equal(element_to_bitmatrix(field, a), m % 2):
        raise FieldError("matrix is not a multiplication matrix of the field")
    return a


def expand_matrix(field: GF2m, matrix: np.ndarray) -> np.ndarray:
    """Expand an (r, c) GF(2^w) matrix into an (r*w, c*w) GF(2) matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise FieldError(f"matrix must be 2-D, got shape {matrix.shape}")
    r, c = matrix.shape
    w = field.width
    out = np.zeros((r * w, c * w), dtype=np.uint8)
    for i in range(r):
        for j in range(c):
            out[i * w : (i + 1) * w, j * w : (j + 1) * w] = element_to_bitmatrix(
                field, int(matrix[i, j])
            )
    return out


def _bits_from_symbols(field: GF2m, symbols: np.ndarray) -> np.ndarray:
    """(m, L) symbols -> (m*w, L) bit rows (bit i of symbol row r at
    expanded row r*w + i)."""
    symbols = np.asarray(symbols, dtype=np.int64)
    m, L = symbols.shape
    w = field.width
    out = np.zeros((m * w, L), dtype=np.uint8)
    for r in range(m):
        for i in range(w):
            out[r * w + i] = (symbols[r] >> i) & 1
    return out


def _symbols_from_bits(field: GF2m, bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_bits_from_symbols`."""
    bits = np.asarray(bits, dtype=np.int64)
    w = field.width
    if bits.shape[0] % w:
        raise FieldError("bit-row count must be a multiple of the width")
    m = bits.shape[0] // w
    out = np.zeros((m, bits.shape[1]), dtype=np.int64)
    for r in range(m):
        for i in range(w):
            out[r] |= bits[r * w + i] << i
    return out.astype(field.dtype)


def bitmatrix_matvec(field: GF2m, matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Evaluate ``matrix @ data`` over GF(2^w) using only XORs.

    ``matrix`` is (r, c) over the field; ``data`` is (c, L) symbols.
    The product is computed in the expanded GF(2) domain: each output bit
    row is the XOR of the input bit rows selected by the expanded
    matrix — the literal XOR schedule a hardware/SIMD coder would run.
    """
    data = np.asarray(data, dtype=field.dtype)
    matrix = np.asarray(matrix)
    if data.ndim != 2 or matrix.ndim != 2 or matrix.shape[1] != data.shape[0]:
        raise FieldError(
            f"shape mismatch: matrix {matrix.shape} vs data {data.shape}"
        )
    expanded = expand_matrix(field, matrix)
    bits = _bits_from_symbols(field, data)
    # GF(2) matmul: XOR of selected rows == parity of the integer product.
    product = (expanded.astype(np.int64) @ bits.astype(np.int64)) & 1
    return _symbols_from_bits(field, product)


def xor_count(field: GF2m, matrix: np.ndarray) -> int:
    """XOR cost of the expanded schedule: ones(expanded) - output rows.

    Each expanded output row with z contributing input rows costs z - 1
    XORs (z >= 1); rows with no contributions cost 0.
    """
    expanded = expand_matrix(field, matrix)
    ones_per_row = expanded.sum(axis=1, dtype=np.int64)
    return int(np.maximum(ones_per_row - 1, 0).sum())
