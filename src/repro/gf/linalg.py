"""Dense linear algebra over GF(2^w).

Provides the matrix tools the erasure layer is built from: multiplication,
Gauss-Jordan inversion, rank, solving, and the structured matrices used to
build MDS generator matrices (Vandermonde, Cauchy).

All matrices are plain numpy arrays with the field's dtype; the field object
is passed explicitly (no global state), which keeps the functions pure and
trivially parallelizable across independent stripes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError, SingularMatrixError
from repro.gf.field import GF2m
from repro.gf.kernels import gf_matmul, gf_matvec

__all__ = [
    "identity",
    "matmul",
    "matmul_reference",
    "matvec",
    "matvec_reference",
    "inverse",
    "rank",
    "solve",
    "is_invertible",
    "vandermonde",
    "cauchy",
]


def identity(field: GF2m, n: int) -> np.ndarray:
    """The n x n identity matrix over the field."""
    return np.eye(n, dtype=field.dtype)


def _check_matrix(field: GF2m, a: np.ndarray, name: str) -> np.ndarray:
    a = np.asarray(a, dtype=field.dtype)
    if a.ndim != 2:
        raise FieldError(f"{name} must be 2-D, got shape {a.shape}")
    return a


def matmul_reference(field: GF2m, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference matrix product over GF(2^w).

    Implemented as an XOR-accumulated sequence of outer products over the
    shared dimension; each outer product is fully vectorized, so the Python
    loop length is only the inner dimension. This is the ground truth the
    batched kernels in :mod:`repro.gf.kernels` are property-tested against;
    hot paths go through :func:`matmul`, which dispatches to those kernels.
    """
    a = _check_matrix(field, a, "a")
    b = _check_matrix(field, b, "b")
    if a.shape[1] != b.shape[0]:
        raise FieldError(f"shape mismatch for matmul: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=field.dtype)
    for t in range(a.shape[1]):
        contrib = field.mul(a[:, t][:, None], b[t, :][None, :])
        np.bitwise_xor(out, contrib, out=out)
    return out


def matmul(field: GF2m, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^w) (batched table-gather kernel)."""
    return gf_matmul(field, a, b)


def matvec_reference(field: GF2m, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Reference matrix-vector product over GF(2^w) (see matmul_reference)."""
    a = _check_matrix(field, a, "a")
    x = np.asarray(x, dtype=field.dtype)
    if x.ndim != 1 or a.shape[1] != x.shape[0]:
        raise FieldError(f"shape mismatch for matvec: {a.shape} x {x.shape}")
    prod = field.mul(a, x[None, :])
    out = np.zeros(a.shape[0], dtype=field.dtype)
    for t in range(a.shape[1]):
        np.bitwise_xor(out, prod[:, t], out=out)
    return out


def matvec(field: GF2m, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2^w) (batched kernel)."""
    return gf_matvec(field, a, x)


def _eliminate(field: GF2m, work: np.ndarray) -> int:
    """Forward-eliminate ``work`` in place; returns the rank.

    Row-reduces with arbitrary nonzero pivots (no magnitude concerns in a
    finite field).
    """
    rows, cols = work.shape
    r = 0
    for c in range(cols):
        if r == rows:
            break
        pivot_rows = np.nonzero(work[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        p = r + int(pivot_rows[0])
        if p != r:
            work[[r, p]] = work[[p, r]]
        inv_p = int(field.inv(work[r, c]))
        work[r] = field.scalar_mul(inv_p, work[r])
        # Zero the column everywhere else in a single vectorized pass.
        col = work[:, c].copy()
        col[r] = 0
        nz = np.nonzero(col)[0]
        if nz.size:
            scaled = field.mul(col[nz][:, None], work[r][None, :])
            work[nz] = np.bitwise_xor(work[nz], scaled)
        r += 1
    return r


def rank(field: GF2m, a: np.ndarray) -> int:
    """Rank of a matrix over GF(2^w)."""
    work = _check_matrix(field, a, "a").copy()
    return _eliminate(field, work)


def inverse(field: GF2m, a: np.ndarray) -> np.ndarray:
    """Inverse of a square matrix over GF(2^w) by Gauss-Jordan.

    Raises
    ------
    SingularMatrixError
        If the matrix is singular.
    """
    a = _check_matrix(field, a, "a")
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise FieldError(f"inverse requires a square matrix, got {a.shape}")
    work = np.concatenate([a.copy(), identity(field, n)], axis=1)
    r = _eliminate(field, work)
    if r < n or np.any(work[:, :n] != identity(field, n)):
        raise SingularMatrixError(f"matrix of shape {a.shape} is singular")
    return work[:, n:].copy()


def is_invertible(field: GF2m, a: np.ndarray) -> bool:
    """True iff the square matrix is invertible over the field."""
    a = _check_matrix(field, a, "a")
    if a.shape[0] != a.shape[1]:
        return False
    return rank(field, a) == a.shape[0]


def solve(field: GF2m, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` over GF(2^w) for square invertible ``a``.

    ``b`` may be a vector (n,) or a matrix (n, L) of right-hand sides; the
    multi-RHS form is what decode uses (one column per byte position).
    """
    a_inv = inverse(field, a)
    b = np.asarray(b, dtype=field.dtype)
    if b.ndim == 1:
        return matvec(field, a_inv, b)
    return matmul(field, a_inv, b)


def vandermonde(field: GF2m, rows: int, cols: int, points=None) -> np.ndarray:
    """Vandermonde matrix V[i, j] = points[i]^j over GF(2^w).

    Any ``cols`` rows built on distinct points are linearly independent,
    which is the classical route to an MDS generator matrix.
    """
    if points is None:
        if rows > field.order:
            raise FieldError(
                f"need {rows} distinct points but field has {field.order} elements"
            )
        points = np.arange(rows, dtype=field.dtype)
    points = np.asarray(points, dtype=field.dtype)
    if points.shape != (rows,):
        raise FieldError(f"points must have shape ({rows},)")
    if len(np.unique(points)) != rows:
        raise FieldError("Vandermonde points must be distinct")
    out = np.empty((rows, cols), dtype=field.dtype)
    out[:, 0] = 1
    for j in range(1, cols):
        out[:, j] = field.mul(out[:, j - 1], points)
    return out


def cauchy(field: GF2m, xs, ys) -> np.ndarray:
    """Cauchy matrix C[i, j] = 1 / (xs[i] + ys[j]) over GF(2^w).

    Requires all xs distinct, all ys distinct, and xs disjoint from ys;
    every square submatrix of a Cauchy matrix is invertible, which makes
    ``[I ; C]`` an MDS generator.
    """
    xs = np.asarray(xs, dtype=field.dtype)
    ys = np.asarray(ys, dtype=field.dtype)
    if len(np.unique(xs)) != xs.size or len(np.unique(ys)) != ys.size:
        raise FieldError("Cauchy points must be distinct within xs and ys")
    if np.intersect1d(xs, ys).size:
        raise FieldError("Cauchy xs and ys must be disjoint")
    denom = np.bitwise_xor(xs[:, None], ys[None, :])
    return field.inv(denom)
