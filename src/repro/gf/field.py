"""Vectorized GF(2^w) arithmetic on numpy arrays.

The field is realized with classic exp/log tables built from a primitive
polynomial: every nonzero element is a power of the generator ``x``, so

    a * b = exp[log a + log b]          (a, b != 0)
    a^-1  = exp[(2^w - 1) - log a]

Addition and subtraction are both XOR, which is what lets the paper's
Algorithm 1 express a parity update as ``b_j <- b_j + alpha_ji * (x - chunk)``
with a single operation.

Design notes (hpc-parallel idioms):

* All operations accept scalars or numpy arrays and broadcast like numpy
  ufuncs; hot paths never loop in Python over array elements.
* For w <= 8 a full 256x256 multiplication table (64 KiB) is built lazily;
  scalar-times-vector multiplication (the erasure-coding hot loop) is then a
  single fancy-index gather, matching the strategy of production RS codecs.
* Tables are cached per (width, polynomial) so repeated ``GF2m(8)``
  constructions are free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError
from repro.gf.polynomials import (
    MAX_WIDTH,
    MIN_WIDTH,
    default_primitive_poly,
    poly_degree,
)

__all__ = ["GF2m", "GF256"]

_TABLE_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _build_tables(width: int, poly: int) -> tuple[np.ndarray, np.ndarray]:
    """Build (exp, log) tables; raises FieldError if poly is not primitive.

    ``exp`` has length 2*(2^w - 1) so products of logs never need a modulo.
    ``log[0]`` is set to 0 but is meaningless; callers mask zeros.
    """
    key = (width, poly)
    cached = _TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    order = 1 << width
    q1 = order - 1
    dtype = np.uint8 if width <= 8 else np.uint16 if width <= 16 else np.uint32
    exp = np.zeros(2 * q1, dtype=dtype)
    log = np.zeros(order, dtype=np.int64)
    seen = 0
    value = 1
    for i in range(q1):
        if value >= order or (i > 0 and value == 1):
            raise FieldError(
                f"polynomial {poly:#x} is not primitive for width {width}"
            )
        exp[i] = value
        log[value] = i
        seen += 1
        value <<= 1
        if value & order:
            value ^= poly
    if value != 1 or seen != q1:
        raise FieldError(f"polynomial {poly:#x} is not primitive for width {width}")
    exp[q1:] = exp[:q1]
    exp.setflags(write=False)
    log.setflags(write=False)
    _TABLE_CACHE[key] = (exp, log)
    return exp, log


class GF2m:
    """The finite field GF(2^w) with vectorized numpy arithmetic.

    Parameters
    ----------
    width:
        Field width w, ``2 <= w <= 16``. The paper's storage context uses
        GF(2^8) (one byte per symbol), which is the default.
    poly:
        Primitive polynomial as an integer bit-vector of degree ``width``.
        Defaults to the literature-standard polynomial for the width.

    Examples
    --------
    >>> gf = GF2m(8)
    >>> int(gf.mul(2, 3))
    6
    >>> int(gf.mul(gf.inv(7), 7))
    1
    """

    __slots__ = ("width", "poly", "order", "q1", "dtype", "_exp", "_log", "_mul_table")

    def __init__(self, width: int = 8, poly: int | None = None) -> None:
        if not MIN_WIDTH <= width <= MAX_WIDTH:
            raise FieldError(
                f"field width must be in [{MIN_WIDTH}, {MAX_WIDTH}], got {width}"
            )
        if poly is None:
            poly = default_primitive_poly(width)
        if poly_degree(poly) != width:
            raise FieldError(
                f"polynomial {poly:#x} has degree {poly_degree(poly)}, "
                f"expected {width}"
            )
        self.width = width
        self.poly = poly
        self.order = 1 << width
        self.q1 = self.order - 1
        self.dtype = (
            np.uint8 if width <= 8 else np.uint16 if width <= 16 else np.uint32
        )
        self._exp, self._log = _build_tables(width, poly)
        self._mul_table: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF2m(width={self.width}, poly={self.poly:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and other.width == self.width
            and other.poly == self.poly
        )

    def __hash__(self) -> int:
        return hash((self.width, self.poly))

    @property
    def generator(self) -> int:
        """The multiplicative generator used to build the tables (x = 2)."""
        return 2

    def elements(self) -> np.ndarray:
        """All field elements ``0..2^w-1`` in natural order."""
        return np.arange(self.order, dtype=self.dtype)

    def _coerce(self, a) -> np.ndarray:
        arr = np.asarray(a)
        if arr.dtype == self.dtype:
            # Already carrying the field dtype: every representable value is
            # a field element, so no range check (and no int64 copies).
            return arr
        as_int = np.asarray(arr, dtype=np.int64)
        if np.any((as_int < 0) | (as_int >= self.order)):
            raise FieldError(f"value out of range for GF(2^{self.width})")
        return as_int.astype(self.dtype)

    # ------------------------------------------------------------------ #
    # scalar / elementwise arithmetic
    # ------------------------------------------------------------------ #

    def add(self, a, b) -> np.ndarray:
        """Elementwise field addition (XOR)."""
        return np.bitwise_xor(self._coerce(a), self._coerce(b))

    # In characteristic 2 subtraction is addition; kept for readability at
    # call sites that mirror the paper's ``x - chunk``.
    sub = add

    def mul(self, a, b) -> np.ndarray:
        """Elementwise field multiplication via exp/log tables."""
        a = self._coerce(a)
        b = self._coerce(b)
        la = self._log[a]
        lb = self._log[b]
        out = self._exp[la + lb]
        zero = (a == 0) | (b == 0)
        if zero.ndim == 0:
            return out * self.dtype(0) if zero else out
        return np.where(zero, self.dtype(0), out)

    def inv(self, a) -> np.ndarray:
        """Elementwise multiplicative inverse; raises on zero."""
        a = self._coerce(a)
        if np.any(a == 0):
            raise FieldError("zero has no multiplicative inverse")
        return self._exp[self.q1 - self._log[a]]

    def div(self, a, b) -> np.ndarray:
        """Elementwise ``a / b``; raises if any ``b`` is zero."""
        b = self._coerce(b)
        if np.any(b == 0):
            raise FieldError("division by zero in GF(2^w)")
        a = self._coerce(a)
        la = self._log[a]
        lb = self._log[b]
        out = self._exp[la - lb + self.q1]
        zero = a == 0
        if zero.ndim == 0:
            return out * self.dtype(0) if zero else out
        return np.where(zero, self.dtype(0), out)

    def pow(self, a, e: int) -> np.ndarray:
        """Elementwise ``a ** e`` for a non-negative integer exponent."""
        if e < 0:
            raise FieldError("negative exponents: use inv() first")
        a = self._coerce(a)
        if e == 0:
            return np.ones_like(a)
        la = self._log[a].astype(np.int64)
        out = self._exp[(la * e) % self.q1]
        zero = a == 0
        if zero.ndim == 0:
            return out * self.dtype(0) if zero else out
        return np.where(zero, self.dtype(0), out)

    # ------------------------------------------------------------------ #
    # hot paths for erasure coding
    # ------------------------------------------------------------------ #

    def _full_mul_table(self) -> np.ndarray:
        """Lazily built (order x order) multiplication table for w <= 8."""
        if self._mul_table is None:
            e = self.elements()
            self._mul_table = self.mul(e[:, None], e[None, :])
            self._mul_table.setflags(write=False)
        return self._mul_table

    def mul_table(self) -> np.ndarray:
        """The full (order x order) multiplication table (w <= 8 only).

        This is the substrate of the batched kernels in
        :mod:`repro.gf.kernels`: a product array is one fancy-index gather
        ``table[a, b]``. Read-only; 64 KiB for the default GF(2^8).
        """
        if self.width > 8:
            raise FieldError(
                f"full multiplication table is only built for w <= 8, "
                f"got w = {self.width}"
            )
        return self._full_mul_table()

    def scalar_mul(self, c: int, vec) -> np.ndarray:
        """``c * vec`` for a scalar c and an array vec.

        This is the inner operation of erasure encode/decode/update; for
        w <= 8 it compiles to a single table gather.
        """
        vec = self._coerce(vec)
        c = int(c)
        if not 0 <= c < self.order:
            raise FieldError(f"scalar {c} out of range for GF(2^{self.width})")
        if c == 0:
            return np.zeros_like(vec)
        if c == 1:
            return vec.copy()
        if self.width <= 8:
            return self._full_mul_table()[c][vec]
        out = self._exp[self._log[vec] + self._log[c]]
        return np.where(vec == 0, self.dtype(0), out)

    def addmul_into(self, dst: np.ndarray, c: int, src) -> None:
        """In-place ``dst ^= c * src`` (the parity-delta application).

        Matches Algorithm 1's ``N_j.add(alpha_ji * (x - chunk))`` where the
        node folds the scaled delta into its stored parity block.
        """
        if dst.dtype != self.dtype:
            raise FieldError("dst dtype does not match field dtype")
        c = int(c)
        if c == 0:
            return
        from repro.gf.kernels import xor_into  # lazy: kernels imports field

        xor_into(dst, self.scalar_mul(c, src))

    def dot(self, coeffs, vectors) -> np.ndarray:
        """GF linear combination ``XOR_i coeffs[i] * vectors[i]``.

        ``coeffs`` has shape (m,), ``vectors`` shape (m, L); returns (L,).
        """
        coeffs = self._coerce(coeffs)
        vectors = self._coerce(vectors)
        if vectors.ndim != 2 or coeffs.shape[0] != vectors.shape[0]:
            raise FieldError("dot expects coeffs (m,) and vectors (m, L)")
        out = np.zeros(vectors.shape[1], dtype=self.dtype)
        for i in range(coeffs.shape[0]):
            self.addmul_into(out, int(coeffs[i]), vectors[i])
        return out

    def outer(self, a, b) -> np.ndarray:
        """GF outer product of vectors a (m,) and b (n,) -> (m, n)."""
        a = self._coerce(np.atleast_1d(a))
        b = self._coerce(np.atleast_1d(b))
        return self.mul(a[:, None], b[None, :])

    # ------------------------------------------------------------------ #
    # randomness helpers (used by property tests and generators)
    # ------------------------------------------------------------------ #

    def random_elements(
        self, rng: np.random.Generator, shape, nonzero: bool = False
    ) -> np.ndarray:
        """Uniform random field elements; ``nonzero`` excludes 0."""
        low = 1 if nonzero else 0
        return rng.integers(low, self.order, size=shape, dtype=np.int64).astype(
            self.dtype
        )


#: Shared default field instance (GF(2^8), polynomial 0x11D).
GF256 = GF2m(8)
