"""repro: reproduction of the TRAP-ERC trapezoid quorum protocol.

Library implementing and evaluating the protocol from

    Relaza, Jorda, M'zoughi. "Trapezoid Quorum Protocol Dedicated to
    Erasure Resilient Coding Based Schemes." IPDPSW 2015 (DPDNS), pp.
    1082-1088.

Subpackages
-----------
``repro.api``
    The unified facade: declarative ``SystemSpec`` (JSON round-trip),
    quorum/protocol registries, ``build_system`` and ``ScenarioRunner``.
    The canonical way to construct and run everything below.
``repro.gf``
    GF(2^w) arithmetic and linear algebra (substrate for erasure coding).
``repro.erasure``
    Systematic (n, k) MDS erasure codes with incremental delta updates.
``repro.quorum``
    Quorum-system geometry: the trapezoid layout plus ROWA / Majority /
    Grid / Tree baselines.
``repro.analysis``
    Closed-form availability and storage analysis (the paper's section IV)
    plus exact enumeration ground truth.
``repro.cluster``
    Simulated fail-stop storage cluster (nodes, network, failure models,
    discrete-event engine).
``repro.core``
    The protocol engines: TRAP-ERC (Algorithms 1-2) and TRAP-FR.
``repro.sim``
    Monte-Carlo and trace-driven evaluation, workload generators, metrics.
``repro.storage``
    Virtual-disk middleware on top of the protocol (the paper's motivating
    VM-storage use case).
``repro.bench``
    Data-series generators regenerating each figure of the paper.
"""

from repro._version import __version__
from repro.errors import (
    CodeError,
    ConfigurationError,
    ConsistencyError,
    DecodeError,
    FieldError,
    NodeUnavailableError,
    ParallelExecutionError,
    QuorumError,
    ReadQuorumError,
    ReproError,
    SimulationError,
    SingularMatrixError,
    StaleNodeError,
    WorkerCrashError,
    WriteQuorumError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "FieldError",
    "SingularMatrixError",
    "CodeError",
    "DecodeError",
    "QuorumError",
    "WriteQuorumError",
    "ReadQuorumError",
    "NodeUnavailableError",
    "StaleNodeError",
    "ConsistencyError",
    "SimulationError",
    "ParallelExecutionError",
    "WorkerCrashError",
]
