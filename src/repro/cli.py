"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``run``
    Execute a JSON scenario file through the ``repro.api`` facade.
``figures``
    Regenerate every paper figure (tables to stdout, CSVs to results/).
``calibrate``
    Show the top configurations matching the paper's Figure-3 anchors.
``availability``
    Evaluate one configuration: closed forms, exact, optional MC.
``optimize``
    Search the (shape, w) space for a deployment target.
``layout``
    Render a trapezoid layout.
``perf``
    Run the perf harness and write BENCH_perf.json.
``saturate``
    Sweep closed-loop client counts over the sharded runtime and print
    the ops/s saturation curve (and its knee).
``serve``
    Bring up a standalone TCP fleet of storage node services
    (``repro.services``) and block until interrupted.
``wallclock``
    Run a ``wallclock`` SystemSpec: predicted (simulated) vs measured
    (live services) latency side by side. ``--connect HOST:PORT``
    targets an already-running ``repro serve`` fleet instead of
    spawning services in-process.

``availability``, ``optimize`` and ``saturate`` accept ``--dump-config
PATH``: they write the equivalent declarative
:class:`repro.api.SystemSpec` JSON so the run can be reproduced (and
extended) with ``repro run --config``.
"""

from __future__ import annotations

import argparse
import sys


__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TRAP-ERC reproduction toolkit (Relaza et al., IPDPSW 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a JSON scenario via repro.api")
    run.add_argument("--config", required=True, help="SystemSpec JSON file")
    run.add_argument("--out", default=None, help="results JSON path (default stdout)")
    run.add_argument("--quiet", action="store_true", help="suppress the summary line")
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the parallelizable scenario kinds "
        "(0/1 = inline; overrides the config's advisory execution.jobs; "
        "results are byte-identical at any value)",
    )

    fig = sub.add_parser("figures", help="regenerate every paper figure")
    fig.add_argument("--out", default=None, help="results directory")
    fig.add_argument("--quiet", action="store_true", help="suppress tables")

    cal = sub.add_parser("calibrate", help="scan configs against Fig.3 anchors")
    cal.add_argument("--n", type=int, default=15)
    cal.add_argument("--top", type=int, default=5)

    av = sub.add_parser("availability", help="evaluate one configuration")
    av.add_argument("--n", type=int, required=True)
    av.add_argument("--k", type=int, required=True)
    av.add_argument("--a", type=int, required=True)
    av.add_argument("--b", type=int, required=True)
    av.add_argument("--height", type=int, required=True)
    av.add_argument("--w", type=int, default=None, help="eq.16 uniform parameter")
    av.add_argument("--p", type=float, nargs="+", default=[0.5, 0.7, 0.9])
    av.add_argument("--mc-trials", type=int, default=0)
    av.add_argument(
        "--seed", type=int, default=None,
        help="MC column seed (default: fresh OS entropy per run)",
    )
    av.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for the MC columns (0/1 = inline)",
    )
    av.add_argument(
        "--dump-config",
        metavar="PATH",
        default=None,
        help="also write the equivalent SystemSpec JSON for `repro run`",
    )

    opt = sub.add_parser("optimize", help="search shapes and quorum vectors")
    opt.add_argument("--n", type=int, required=True)
    opt.add_argument("--k", type=int, required=True)
    opt.add_argument(
        "--p", type=float, nargs="+", required=True,
        help="one or more availabilities (occupancy tables are shared)",
    )
    opt.add_argument("--max-h", type=int, default=3)
    opt.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for the shape families (0/1 = inline)",
    )
    opt.add_argument(
        "--dump-config",
        metavar="PATH",
        default=None,
        help="write the search as an 'optimize' SystemSpec JSON for `repro run`",
    )

    lay = sub.add_parser("layout", help="render a trapezoid layout")
    lay.add_argument("--a", type=int, required=True)
    lay.add_argument("--b", type=int, required=True)
    lay.add_argument("--height", type=int, required=True)

    perf = sub.add_parser("perf", help="run the perf harness (BENCH_perf.json)")
    perf.add_argument("--json", default="BENCH_perf.json", help="output path")
    perf.add_argument("--tiny", action="store_true", help="sub-second smoke sizes")
    perf.add_argument("--quiet", action="store_true", help="suppress the table")
    perf.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each section's warmup call (top-15 cumulative)",
    )
    perf.add_argument(
        "--sections", nargs="+", default=None, metavar="NAME",
        help="run only these sections (unknown names fail with the valid list)",
    )
    perf.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes fanning the sections out (0/1 = inline)",
    )

    sat = sub.add_parser(
        "saturate", help="ops/s-vs-clients sweep on the sharded runtime"
    )
    sat.add_argument("--n", type=int, default=9)
    sat.add_argument("--k", type=int, default=6)
    sat.add_argument("--a", type=int, default=2)
    sat.add_argument("--b", type=int, default=1)
    sat.add_argument("--height", type=int, default=1)
    sat.add_argument("--w", type=int, default=2, help="eq.16 uniform parameter")
    sat.add_argument("--shards", type=int, default=4, help="stripe families")
    sat.add_argument(
        "--clients", type=int, nargs="+", default=[1, 2, 4, 8, 16],
        help="closed-loop client counts to sweep",
    )
    sat.add_argument(
        "--service", type=float, default=0.0005,
        help="per-request node service time (virtual seconds)",
    )
    sat.add_argument(
        "--service-kind", choices=("fixed", "exponential"), default="fixed",
    )
    sat.add_argument("--ops", type=int, default=400, help="workload operations")
    sat.add_argument("--horizon", type=float, default=1000.0)
    sat.add_argument("--seed", type=int, default=0)
    sat.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for the saturation points (0/1 = inline)",
    )
    sat.add_argument(
        "--dump-config",
        metavar="PATH",
        default=None,
        help="also write the equivalent SystemSpec JSON for `repro run`",
    )

    srv = sub.add_parser(
        "serve", help="run TCP storage node services until interrupted"
    )
    srv.add_argument("--nodes", type=int, default=9, help="number of node services")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port-base", type=int, default=9300,
        help="node i listens on port-base + i",
    )
    srv.add_argument(
        "--serialization", choices=("json", "msgpack"), default="json"
    )
    srv.add_argument(
        "--max-seconds", type=float, default=None,
        help="stop after this many seconds (default: run until ctrl-C)",
    )

    wc = sub.add_parser(
        "wallclock", help="predicted-vs-measured run against live services"
    )
    wc.add_argument("--config", required=True, help="SystemSpec JSON file")
    wc.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="drive an already-running `repro serve` fleet at HOST:PORT "
        "(PORT is the fleet's port base) instead of in-process services",
    )
    wc.add_argument("--out", default=None, help="results JSON path")
    return parser


def _cmd_run(args) -> int:
    import json
    from pathlib import Path

    from repro.api import ScenarioRunner, SystemSpec, execution_options
    from repro.errors import ConfigurationError

    text = Path(args.config).read_text()
    spec = SystemSpec.from_json(text)
    if args.jobs is not None:
        jobs = args.jobs
    else:
        # The config's advisory execution block (stripped from the spec:
        # jobs never enters spec identity or the result file).
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid spec JSON: {exc}") from exc
        jobs = execution_options(raw.get("execution"))["jobs"]
    result = ScenarioRunner(spec, jobs=jobs).run()
    payload = result.to_json()
    if args.out:
        Path(args.out).write_text(payload + "\n")
        if not args.quiet:
            print(f"Wrote: {args.out}")
    else:
        print(payload)
    if not args.quiet:
        print(
            f"# scenario={result.kind} protocol={result.protocol} "
            f"seed={spec.seed}",
            file=sys.stderr,
        )
    return 0


def _dump_spec(spec, path: str) -> None:
    from pathlib import Path

    Path(path).write_text(spec.to_json() + "\n")
    print(f"Wrote config: {path}")


def _cmd_figures(args) -> int:
    from repro.bench.runner import run_all

    paths = run_all(args.out, quiet=args.quiet)
    print("Wrote:")
    for path in paths:
        print(f"  {path}")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.bench.calibrate import scan_fig3_configs

    print(f"Best matches for the Fig.3 anchors (FR~0.75, ERC~0.63 at p=0.5), n={args.n}:")
    for res in scan_fig3_configs(n=args.n, top=args.top):
        print(
            f"  k={res.k:2d} shape=(a={res.a},b={res.b},h={res.h}) w={res.w} "
            f"-> FR={res.fr_at_anchor:.4f} ERC={res.erc_at_anchor:.4f} "
            f"(score {res.score:.4f})"
        )
    return 0


def _cmd_availability(args) -> int:
    from repro.quorum import TrapezoidQuorum, TrapezoidShape
    from repro.sim import availability_sweep, records_to_csv

    shape = TrapezoidShape(args.a, args.b, args.height)
    quorum = TrapezoidQuorum.uniform(shape, args.w)
    if args.dump_config:
        from repro.api import ScenarioSpec, SystemSpec

        _dump_spec(
            SystemSpec.trapezoid(
                args.n, args.k, args.a, args.b, args.height, quorum.w,
                scenario=ScenarioSpec(
                    kind="availability", ps=tuple(args.p), trials=args.mc_trials
                ),
            ),
            args.dump_config,
        )
    print(
        f"(n={args.n}, k={args.k}), levels {shape.level_sizes}, w={quorum.w}, "
        f"r={quorum.read_thresholds}"
    )
    records = availability_sweep(
        quorum, args.n, args.k, args.p,
        mc_trials=args.mc_trials, rng=args.seed, jobs=args.jobs,
    )
    sys.stdout.write(records_to_csv(records))
    return 0


def _cmd_optimize(args) -> int:
    from repro.analysis import optimize_config_sweep

    ps = tuple(args.p)
    results = optimize_config_sweep(
        args.n, args.k, ps, max_h=args.max_h, jobs=args.jobs
    )

    def fmt(pt) -> str:
        return (
            f"shape=(a={pt.shape.a},b={pt.shape.b},h={pt.shape.h}) w={pt.w} "
            f"write={pt.write:.4f} read={pt.read:.4f}"
        )

    for p, result in zip(ps, results):
        print(f"p={p}: {result.evaluated} configurations evaluated")
        print("best for writes :", fmt(result.best_for_writes))
        print("best for reads  :", fmt(result.best_for_reads))
        print("best balanced   :", fmt(result.best_balanced))
        print(f"Pareto front ({len(result.pareto)}):")
        for pt in result.pareto:
            print("  ", fmt(pt))
    if args.dump_config:
        from repro.api import ScenarioSpec, SystemSpec

        # The dumped spec records the winning geometry and replays the
        # whole search through the vectorized 'optimize' scenario kind.
        best = results[0].best_balanced
        _dump_spec(
            SystemSpec.trapezoid(
                args.n, args.k, best.shape.a, best.shape.b, best.shape.h, best.w,
                scenario=ScenarioSpec(kind="optimize", ps=ps, max_h=args.max_h),
            ),
            args.dump_config,
        )
    return 0


def _cmd_perf(args) -> int:
    from repro.bench.perf import TINY_SIZES, write_perf_json

    path = write_perf_json(
        args.json,
        sizes=TINY_SIZES if args.tiny else None,
        quiet=args.quiet,
        profile=args.profile,
        sections=args.sections,
        jobs=args.jobs,
    )
    print(f"Wrote: {path}")
    return 0


def _cmd_saturate(args) -> int:
    from repro.api import (
        ScenarioRunner,
        ScenarioSpec,
        ServiceTimeSpec,
        ShardingSpec,
        SystemSpec,
        WorkloadSpec,
    )

    spec = SystemSpec.trapezoid(
        args.n, args.k, args.a, args.b, args.height, args.w,
        sharding=ShardingSpec(shards=args.shards),
        service=ServiceTimeSpec(kind=args.service_kind, time=args.service),
        workload=WorkloadSpec(num_ops=args.ops, block_length=32),
        scenario=ScenarioSpec(
            kind="saturation",
            client_counts=tuple(args.clients),
            horizon=args.horizon,
        ),
        seed=args.seed,
    )
    if args.dump_config:
        _dump_spec(spec, args.dump_config)
    data = ScenarioRunner(spec, jobs=args.jobs).run().data
    print(
        f"saturation: shards={data['shards']} routing={data['routing']} "
        f"service={data['service']['kind']}({data['service']['time']})"
    )
    print(f"{'clients':>8s} {'ops/s':>10s} {'p95':>10s} {'q-wait':>10s} {'util':>6s}")
    for point in data["points"]:
        p95 = point["aggregate"]["operation_latency"]["p95"]
        print(
            f"{point['clients']:8d} {point['throughput']:10.1f} "
            f"{p95:10.5f} {point['queues']['mean_wait']:10.6f} "
            f"{point['queues']['max_utilization']:6.2f}"
        )
    print(f"knee of the curve: {data['knee_clients']} clients")
    return 0


def _cmd_serve(args) -> int:
    from repro.services import serve_forever

    def announce(message: str) -> None:
        print(f"{message} — ctrl-C to stop", flush=True)

    serve_forever(
        args.nodes,
        host=args.host,
        port_base=args.port_base,
        serialization=args.serialization,
        max_seconds=args.max_seconds,
        announce=announce,
    )
    print("stopped", flush=True)
    return 0


def _cmd_wallclock(args) -> int:
    import json
    from pathlib import Path

    from repro.api import ScenarioRunner, ScenarioSpec, SystemSpec

    spec = SystemSpec.from_json(Path(args.config).read_text())
    scenario = spec.scenario or ScenarioSpec()
    if scenario.kind != "wallclock":
        spec = spec.replace(scenario=scenario.replace(kind="wallclock"))
    transports = None
    if args.connect:
        from repro.services import connect_transports

        host, _, port = args.connect.rpartition(":")
        transports = connect_transports(
            (spec.cluster.num_nodes if spec.cluster else spec.code.n),
            host=host or "127.0.0.1",
            port_base=int(port),
            serialization=(spec.transport.serialization if spec.transport else "json"),
        )
    result = ScenarioRunner(spec, transports=transports).run()
    data = result.data
    measured = data["measured"]
    print(
        f"wallclock: protocol={result.protocol} "
        f"transport={measured['transport']['kind']} "
        f"remote={measured['remote']} clients={measured['clients']} "
        f"ops={measured['ops_submitted']} "
        f"throughput={measured['throughput']:.1f} ops/s"
    )
    print(f"{'op':>6s} {'':>9s} {'count':>6s} {'p50':>10s} {'p95':>10s} {'p99':>10s}")
    for op in ("read", "write"):
        for column in ("predicted", "measured"):
            row = data["comparison"][column][op]
            print(
                f"{op:>6s} {column:>9s} {int(row['count']):6d} "
                f"{row['p50']:10.6f} {row['p95']:10.6f} {row['p99']:10.6f}"
            )
    if args.out:
        Path(args.out).write_text(result.to_json() + "\n")
        print(f"Wrote: {args.out}")
    else:
        sys.stderr.write(json.dumps(data["comparison"]) + "\n")
    return 0


def _cmd_layout(args) -> int:
    from repro.quorum import TrapezoidQuorum, TrapezoidShape

    shape = TrapezoidShape(args.a, args.b, args.height)
    quorum = TrapezoidQuorum.uniform(shape)
    print(shape.ascii_art())
    print(f"total nodes  : {shape.total_nodes}")
    print(f"write quorum : w={quorum.w} (|WQ|={quorum.min_write_size})")
    print(f"read check   : r={quorum.read_thresholds} (min |RQ|={quorum.min_read_size})")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "figures": _cmd_figures,
    "calibrate": _cmd_calibrate,
    "availability": _cmd_availability,
    "optimize": _cmd_optimize,
    "layout": _cmd_layout,
    "perf": _cmd_perf,
    "saturate": _cmd_saturate,
    "serve": _cmd_serve,
    "wallclock": _cmd_wallclock,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
