"""Live storage-node services: the wall-clock half of the runtime.

The simulators predict; this subsystem measures. A
:class:`StorageNodeService` puts a real :class:`~repro.cluster.node.
StorageNode`'s versioned RPC surface behind a length-prefixed wire
protocol (:mod:`repro.services.wire`), reachable through two
transports — in-process asyncio queue pairs and real TCP — and the
:class:`~repro.runtime.async_coord.AsyncCoordinator` runs the engines'
round plans against them unmodified. :func:`run_wallclock` drives a
whole ``SystemSpec`` through the live path and reports measured
p50/p95/p99 next to the simulator's prediction for the same spec (the
``wallclock`` scenario kind; see docs/RUNTIME.md, *Wall-clock
backend*).
"""

from repro.services.harness import ServiceGroup, mirror_state, serve_forever
from repro.services.service import RPC_METHODS, StorageNodeService
from repro.services.transport import (
    InprocTransport,
    TcpTransport,
    connect_transports,
)
from repro.services.wallclock import run_wallclock
from repro.services.wire import (
    MAX_FRAME,
    SERIALIZATIONS,
    Codec,
    RemoteCallError,
    WireError,
    decode_error,
    encode_error,
    frame,
    read_frame,
)

__all__ = [
    "MAX_FRAME",
    "RPC_METHODS",
    "SERIALIZATIONS",
    "Codec",
    "InprocTransport",
    "RemoteCallError",
    "ServiceGroup",
    "StorageNodeService",
    "TcpTransport",
    "WireError",
    "connect_transports",
    "decode_error",
    "encode_error",
    "frame",
    "mirror_state",
    "read_frame",
    "run_wallclock",
    "serve_forever",
]
