"""Service-fleet lifecycle: start/stop groups of node services.

:class:`ServiceGroup` owns one :class:`~repro.services.service.
StorageNodeService` per node. For the ``inproc`` kind there is nothing
to start — transports call the services through queue pairs on the
current loop. For the ``tcp`` kind :meth:`start` brings up one
``asyncio.start_server`` per node; ``port_base=0`` asks the OS for
ephemeral ports (read back from the listening sockets, so parallel CI
runs never collide), a non-zero base assigns ``port_base + node_id`` —
the fixed layout ``repro serve`` / :func:`connect_transports` agree on.

When the group wraps the nodes of a *built* cluster (``for_cluster``),
the services serve the very objects the instant-path ``initialize()``
seeded — data and metadata tier alike — so no state copy is needed.
:func:`mirror_state` covers the remote case instead: it replays a local
cluster's records into a separately-running fleet over the wire.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.cluster.node import StorageNode
from repro.errors import ConfigurationError

from .service import StorageNodeService
from .transport import InprocTransport, TcpTransport

__all__ = ["ServiceGroup", "mirror_state", "serve_forever"]


class ServiceGroup:
    """N node services plus matching client transports, one event loop."""

    def __init__(
        self,
        nodes,
        *,
        kind: str = "inproc",
        host: str = "127.0.0.1",
        port_base: int = 0,
        serialization: str = "json",
    ) -> None:
        if kind not in ("inproc", "tcp"):
            raise ConfigurationError(
                f"transport kind must be 'inproc' or 'tcp', got {kind!r}"
            )
        self.kind = kind
        self.host = host
        self.port_base = port_base
        self.serialization = serialization
        self.services = {
            node.node_id: StorageNodeService(node, serialization) for node in nodes
        }
        self.servers: dict[int, asyncio.base_events.Server] = {}
        self.ports: dict[int, int] = {}

    @classmethod
    def for_cluster(cls, cluster, spec=None, **overrides) -> "ServiceGroup":
        """Group over every node of a built cluster (data + metadata)."""
        kwargs = {}
        if spec is not None:
            kwargs = dict(
                kind=spec.kind,
                host=spec.host,
                port_base=spec.port_base,
                serialization=spec.serialization,
            )
        kwargs.update(overrides)
        return cls(list(cluster.nodes), **kwargs)

    # ------------------------------------------------------------------ #

    async def start(self) -> "ServiceGroup":
        """Bring up the TCP servers (no-op for the inproc kind)."""
        if self.kind != "tcp":
            return self
        for node_id, service in self.services.items():
            port = 0 if self.port_base == 0 else self.port_base + node_id
            server = await asyncio.start_server(
                service.serve_connection, self.host, port
            )
            self.servers[node_id] = server
            self.ports[node_id] = server.sockets[0].getsockname()[1]
        return self

    def make_transports(self) -> dict[int, object]:
        """One fresh client transport per service."""
        if self.kind == "inproc":
            return {
                node_id: InprocTransport(service)
                for node_id, service in self.services.items()
            }
        if not self.ports:
            raise ConfigurationError(
                "tcp ServiceGroup not started; call start() first"
            )
        return {
            node_id: TcpTransport(
                node_id, self.host, self.ports[node_id], self.serialization
            )
            for node_id in self.services
        }

    async def aclose(self) -> None:
        """Stop every TCP server and forget the port map."""
        servers, self.servers = list(self.servers.values()), {}
        for server in servers:
            server.close()
        for server in servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self.ports.clear()


async def mirror_state(transports: dict[int, object], cluster) -> int:
    """Replay a local cluster's node state into remote services.

    Pushes every data record via ``put_data`` and every parity record
    via ``put_parity`` — the same unconditional stores ``load_stripe``
    uses — so a fleet started by ``repro serve`` (fresh, empty nodes)
    ends up serving exactly the state a local ``initialize()`` produced.
    Returns the number of records pushed.
    """
    pushed = 0
    for node in cluster.nodes:
        transport = transports.get(node.node_id)
        if transport is None:
            continue
        for key, record in node._data.items():
            await transport.call("put_data", (key, record.payload, record.version))
            pushed += 1
        for key, record in node._parity.items():
            await transport.call(
                "put_parity", (key, record.payload, record.versions)
            )
            pushed += 1
    return pushed


def serve_forever(
    num_nodes: int,
    *,
    host: str = "127.0.0.1",
    port_base: int = 9300,
    serialization: str = "json",
    max_seconds: float | None = None,
    announce=None,
) -> None:
    """Run ``num_nodes`` TCP node services until interrupted.

    The ``repro serve`` entry point: fresh empty nodes on
    ``port_base + node_id`` (clients seed them via :func:`mirror_state`).
    ``max_seconds`` bounds the lifetime for scripted smoke tests; Ctrl-C
    always stops cleanly.
    """
    nodes = [StorageNode(i) for i in range(num_nodes)]
    group = ServiceGroup(
        nodes,
        kind="tcp",
        host=host,
        port_base=port_base,
        serialization=serialization,
    )
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(group.start())
        if announce is not None:
            ports = sorted(group.ports.values())
            announce(
                f"serving {num_nodes} node services on {host} "
                f"ports {ports[0]}-{ports[-1]} ({serialization})"
            )
        if max_seconds is not None:
            loop.run_until_complete(asyncio.sleep(max_seconds))
        else:
            loop.run_forever()
    except KeyboardInterrupt:
        pass
    finally:
        with contextlib.suppress(Exception):
            loop.run_until_complete(group.aclose())
        loop.close()
