"""Length-prefixed wire protocol for storage-node RPCs.

Every message on a transport — in-process queue pair or TCP stream — is
one *frame*: a 4-byte big-endian length followed by a serialized body.
Bodies are dicts (``{"id", "method", "args", "kwargs"}`` requests,
``{"id", "ok", "value"}`` / ``{"id", "ok": False, "error"}`` replies)
reduced to a JSON-compatible tree first, so both serializations share
one reduction:

* tuples become ``{"__t__": [...]}`` — storage keys are tuples like
  ``("erc-data", stripe_id, i)`` and must survive the round trip intact;
* ``numpy`` arrays become ``{"__nd__": [dtype, shape, base64]}``;
* ``bytes`` become ``{"__b__": base64}``;
* numpy scalars collapse to plain ints/floats.

``json`` is the default serialization and always available; ``msgpack``
is accepted only when the package is importable (it is an optional
accelerator, never a hard dependency).

Error replies carry ``{"type", "message", ...}``; :func:`decode_error`
rebuilds the matching :mod:`repro.errors` class on the client so round
plans catch remote failures exactly like local ones (a remote
``NodeUnavailableError`` *is* the dead-node fast-fail path). Unknown
types surface as :class:`RemoteCallError`, which no plan catches — a
server-side programming error stays loud.
"""

from __future__ import annotations

import asyncio
import base64
import json
import struct

import numpy as np

from repro import errors as _errors
from repro.errors import ConfigurationError, ReproError

__all__ = [
    "MAX_FRAME",
    "SERIALIZATIONS",
    "Codec",
    "RemoteCallError",
    "WireError",
    "decode_error",
    "encode_error",
    "frame",
    "read_frame",
]

#: hard cap on one frame body (a stripe block is a few KiB; 64 MiB is
#: far beyond any legitimate message and bounds a corrupted length word)
MAX_FRAME = 64 * 1024 * 1024

SERIALIZATIONS = ("json", "msgpack")

_LEN = struct.Struct(">I")

_TUPLE = "__t__"
_BYTES = "__b__"
_NDARRAY = "__nd__"
_MARKERS = frozenset((_TUPLE, _BYTES, _NDARRAY))


class WireError(ReproError):
    """Malformed frame or undecodable message on the wire."""


class RemoteCallError(ReproError):
    """A service replied with an error this client cannot rebuild."""


# --------------------------------------------------------------------- #
# value reduction


def _pack(obj):
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {
            _NDARRAY: [
                data.dtype.str,
                list(data.shape),
                base64.b64encode(data.tobytes()).decode("ascii"),
            ]
        }
    if isinstance(obj, (bytes, bytearray)):
        return {_BYTES: base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, tuple):
        return {_TUPLE: [_pack(item) for item in obj]}
    if isinstance(obj, list):
        return [_pack(item) for item in obj]
    if isinstance(obj, dict):
        packed = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise WireError(
                    f"mapping key {key!r} is not wire-encodable (string keys only)"
                )
            if key in _MARKERS:
                raise WireError(f"mapping key {key!r} collides with a wire marker")
            packed[key] = _pack(value)
        return packed
    raise WireError(f"{type(obj).__name__} value is not wire-encodable")


def _unpack(obj):
    if isinstance(obj, list):
        return [_unpack(item) for item in obj]
    if isinstance(obj, dict):
        if _NDARRAY in obj:
            dtype, shape, blob = obj[_NDARRAY]
            array = np.frombuffer(base64.b64decode(blob), dtype=np.dtype(dtype))
            return array.reshape([int(dim) for dim in shape]).copy()
        if _BYTES in obj:
            return base64.b64decode(obj[_BYTES])
        if _TUPLE in obj:
            return tuple(_unpack(item) for item in obj[_TUPLE])
        return {key: _unpack(value) for key, value in obj.items()}
    return obj


# --------------------------------------------------------------------- #
# serialization


def _load_msgpack():
    try:
        import msgpack  # an optional accelerator, never a dependency
    except ImportError as exc:
        raise ConfigurationError(
            "serialization 'msgpack' requested but the msgpack package "
            "is not installed; use serialization='json'"
        ) from exc
    return msgpack


class Codec:
    """Encode/decode wire message bodies for one serialization format."""

    def __init__(self, serialization: str = "json") -> None:
        if serialization not in SERIALIZATIONS:
            raise ConfigurationError(
                f"serialization must be one of {SERIALIZATIONS}, got {serialization!r}"
            )
        self.serialization = serialization
        self._msgpack = _load_msgpack() if serialization == "msgpack" else None

    def encode(self, message: dict) -> bytes:
        packed = _pack(message)
        if self._msgpack is not None:
            return self._msgpack.packb(packed, use_bin_type=True)
        return json.dumps(packed, separators=(",", ":")).encode("utf-8")

    def decode(self, body: bytes):
        try:
            if self._msgpack is not None:
                raw = self._msgpack.unpackb(body, raw=False)
            else:
                raw = json.loads(body.decode("utf-8"))
        except ValueError as exc:
            raise WireError(f"undecodable frame body: {exc}") from exc
        return _unpack(raw)


# --------------------------------------------------------------------- #
# framing


def frame(body: bytes) -> bytes:
    """Prefix one encoded body with its 4-byte big-endian length."""
    if len(body) > MAX_FRAME:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _LEN.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame body; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("connection closed mid-frame") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame of {length} bytes exceeds MAX_FRAME")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc


# --------------------------------------------------------------------- #
# error marshalling


def encode_error(exc: BaseException) -> dict:
    """Reduce an exception to its wire form (type name + message)."""
    payload = {"type": type(exc).__name__, "message": str(exc)}
    node_id = getattr(exc, "node_id", None)
    if node_id is not None:
        payload["node_id"] = int(node_id)
    return payload


def decode_error(payload: dict) -> Exception:
    """Rebuild a client-side exception from an error reply."""
    kind = payload.get("type", "Exception")
    message = payload.get("message", "")
    if kind == "NodeUnavailableError":
        return _errors.NodeUnavailableError(int(payload.get("node_id", -1)))
    if kind == "KeyError":
        return KeyError(message)
    cls = getattr(_errors, kind, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return RemoteCallError(f"{kind}: {message}")
