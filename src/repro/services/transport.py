"""Client transports: in-process queue pairs and real TCP.

A transport is one client's channel to one node service; the
:class:`~repro.runtime.async_coord.AsyncCoordinator` holds one per node
and duck-types against ``await call(method, args, kwargs)`` /
``await aclose()``. Both transports speak the full wire protocol —
every call is encoded, framed and decoded even in-process, so the
zero-latency path exercises exactly the bytes the TCP path ships.

Unreachability is normalized to :class:`~repro.errors.
NodeUnavailableError`: a closed transport, a refused TCP connection or
a connection lost mid-call all raise it, mirroring the dead-node RST
fast-fail of the simulated paths.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools

from repro.errors import NodeUnavailableError

from .wire import Codec, WireError, decode_error, frame, read_frame

__all__ = ["InprocTransport", "TcpTransport", "connect_transports"]


class _TransportBase:
    """Shared bookkeeping: message ids, reply finishing, call counter."""

    def __init__(self, node_id: int, serialization: str) -> None:
        self.node_id = node_id
        self.codec = Codec(serialization)
        self.calls = 0
        self.closed = False
        self._ids = itertools.count()

    def _request(self, method: str, args, kwargs) -> dict:
        return {
            "id": next(self._ids),
            "method": method,
            "args": list(args),
            "kwargs": dict(kwargs or {}),
        }

    def _finish(self, reply):
        if not isinstance(reply, dict) or "ok" not in reply:
            raise WireError(f"malformed reply: {reply!r}")
        if reply["ok"]:
            return reply.get("value")
        raise decode_error(reply.get("error") or {})

    async def call(self, method: str, args=(), kwargs=None):
        """Issue one RPC; returns the decoded value or raises the error."""
        if self.closed:
            raise NodeUnavailableError(self.node_id)
        self.calls += 1
        return await self._call(self._request(method, args, kwargs))


class InprocTransport(_TransportBase):
    """Zero-latency transport over an in-process ``asyncio.Queue`` pair.

    One lazily-started worker task drains the queue FIFO, so requests to
    one node resolve in issue order — the deterministic ordering the
    instant-path equivalence suite relies on. A call abandoned by a
    client timeout is still executed by the worker (at-least-once, like
    an event-path delivery after the sender gave up); the node's version
    guards make that safe.
    """

    def __init__(self, service, serialization: str | None = None) -> None:
        super().__init__(
            service.node_id, serialization or service.codec.serialization
        )
        self.service = service
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None

    async def _call(self, message: dict):
        loop = asyncio.get_running_loop()
        if self._queue is None:
            self._queue = asyncio.Queue()
        if self._worker is None or self._worker.done():
            self._worker = loop.create_task(self._run())
        future = loop.create_future()
        self._queue.put_nowait((self.codec.encode(message), future))
        reply_body = await future
        return self._finish(self.codec.decode(reply_body))

    async def _run(self) -> None:
        while True:
            body, future = await self._queue.get()
            reply = self.service.handle_frame(body)
            if not future.done():
                future.set_result(reply)

    async def aclose(self) -> None:
        self.closed = True
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await worker


class TcpTransport(_TransportBase):
    """One multiplexed TCP connection to a node service.

    Requests carry ids; a reader task resolves pending futures as framed
    replies arrive, so concurrent calls share the connection. The first
    call connects; a refused connection or a connection lost mid-call
    fails with :class:`NodeUnavailableError` (the RST path) and the next
    call reconnects.
    """

    def __init__(
        self, node_id: int, host: str, port: int, serialization: str = "json"
    ) -> None:
        super().__init__(node_id, serialization)
        self.host = host
        self.port = port
        self.refusals = 0
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._conn_lock: asyncio.Lock | None = None

    async def _call(self, message: dict):
        loop = asyncio.get_running_loop()
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        future = loop.create_future()
        msg_id = message["id"]
        async with self._conn_lock:
            if self.closed:
                raise NodeUnavailableError(self.node_id)
            if self._writer is None:
                await self._connect(loop)
            self._pending[msg_id] = future
            try:
                self._writer.write(frame(self.codec.encode(message)))
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                self._pending.pop(msg_id, None)
                self._drop_connection()
                self.refusals += 1
                raise NodeUnavailableError(self.node_id) from exc
        try:
            reply = await future
        finally:
            self._pending.pop(msg_id, None)
        return self._finish(reply)

    async def _connect(self, loop) -> None:
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except (ConnectionError, OSError) as exc:
            self.refusals += 1
            raise NodeUnavailableError(self.node_id) from exc
        self._writer = writer
        self._reader_task = loop.create_task(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                body = await read_frame(reader)
                if body is None:
                    break
                reply = self.codec.decode(body)
                if not isinstance(reply, dict):
                    continue
                future = self._pending.get(reply.get("id"))
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionError, WireError, OSError):
            pass
        finally:
            self._drop_connection()

    def _drop_connection(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(NodeUnavailableError(self.node_id))
        self._pending.clear()

    async def aclose(self) -> None:
        self.closed = True
        task, self._reader_task = self._reader_task, None
        self._drop_connection()
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task


def connect_transports(
    num_nodes: int,
    host: str = "127.0.0.1",
    port_base: int = 9300,
    serialization: str = "json",
) -> dict[int, TcpTransport]:
    """Transports to a running ``repro serve`` fleet (port_base + id)."""
    return {
        node_id: TcpTransport(node_id, host, port_base + node_id, serialization)
        for node_id in range(num_nodes)
    }
