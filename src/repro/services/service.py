"""Storage-node RPC service: real block state behind the wire protocol.

A :class:`StorageNodeService` owns one :class:`~repro.cluster.node.
StorageNode` — the *same* versioned data/parity stores the simulators
use — and exposes its RPC surface (the eight methods the protocol
engines issue, plus ``ping``) through :mod:`repro.services.wire`
messages. The service is transport-agnostic: the in-process transport
hands it decoded frames directly, ``asyncio.start_server`` plugs
:meth:`serve_connection` in as the TCP connection callback.

Failure semantics mirror the simulated paths: a dead node's
``NodeUnavailableError`` (and any other :class:`~repro.errors.
ReproError` or ``KeyError`` the node raises) travels back as an error
reply the client rebuilds and the round plans catch; anything else is a
server-side programming error and is surfaced as an uncatchable
:class:`~repro.services.wire.RemoteCallError` on the client. Nodes armed
with a :class:`~repro.cluster.node.ByzantineBehavior` corrupt read-type
replies exactly like ``Network.rpc`` does.
"""

from __future__ import annotations

import contextlib

from repro.cluster.node import StorageNode
from repro.errors import ReproError

from .wire import Codec, WireError, encode_error, frame, read_frame

__all__ = ["RPC_METHODS", "StorageNodeService"]

#: the node methods a service will dispatch — the engines' RPC surface
RPC_METHODS = frozenset(
    {
        "put_data",
        "write_data",
        "read_data",
        "data_version",
        "put_parity",
        "apply_delta",
        "read_parity",
        "parity_versions",
    }
)


class StorageNodeService:
    """One storage node's RPC surface behind the wire protocol."""

    def __init__(self, node: StorageNode, serialization: str = "json") -> None:
        self.node = node
        self.codec = Codec(serialization)
        #: replies sent, split by outcome
        self.served = 0
        self.faults = 0

    @property
    def node_id(self) -> int:
        return self.node.node_id

    # ------------------------------------------------------------------ #

    def dispatch(self, message: dict) -> dict:
        """Execute one decoded request message; returns the reply dict."""
        msg_id = message.get("id") if isinstance(message, dict) else None
        method = message.get("method") if isinstance(message, dict) else None
        if method == "ping":
            self.served += 1
            return {"id": msg_id, "ok": True, "value": self.node.node_id}
        if method not in RPC_METHODS:
            self.faults += 1
            return {
                "id": msg_id,
                "ok": False,
                "error": {
                    "type": "ConfigurationError",
                    "message": f"unknown RPC method {method!r}",
                },
            }
        node = self.node
        args = message.get("args") or []
        kwargs = message.get("kwargs") or {}
        try:
            value = getattr(node, method)(*args, **kwargs)
            if node.byzantine is not None:
                value = node.byzantine.apply(node, method, value, tuple(args))
        except (ReproError, KeyError) as exc:
            self.faults += 1
            return {"id": msg_id, "ok": False, "error": encode_error(exc)}
        except Exception as exc:  # server-side bug: loud, uncatchable reply
            self.faults += 1
            return {"id": msg_id, "ok": False, "error": encode_error(exc)}
        self.served += 1
        return {"id": msg_id, "ok": True, "value": value}

    def handle_frame(self, body: bytes) -> bytes:
        """Decode → dispatch → encode one frame body."""
        try:
            message = self.codec.decode(body)
        except WireError as exc:
            self.faults += 1
            return self.codec.encode(
                {"id": None, "ok": False, "error": encode_error(exc)}
            )
        return self.codec.encode(self.dispatch(message))

    # ------------------------------------------------------------------ #

    async def serve_connection(self, reader, writer) -> None:
        """``asyncio.start_server`` callback: frame loop for one client."""
        try:
            while True:
                body = await read_frame(reader)
                if body is None:
                    break
                writer.write(frame(self.handle_frame(body)))
                await writer.drain()
        except (ConnectionError, WireError, OSError):
            pass  # client vanished or sent garbage: drop the connection
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
