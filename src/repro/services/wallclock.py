"""Wall-clock measurement: one SystemSpec against live services.

:func:`run_wallclock` is the measured half of the ``wallclock``
scenario. It builds the spec's system with an
:class:`~repro.runtime.async_coord.AsyncCoordinator` injected, brings
up a :class:`~repro.services.harness.ServiceGroup` over the built
cluster's nodes (or drives caller-supplied transports to a remote
fleet, mirroring the initialized state over the wire first), then
replays the *same* seeded workload tape the simulator consumes —
stream 1 of ``spec.seed`` — with closed-loop asyncio clients, recording
real elapsed seconds per operation into a
:class:`~repro.sim.metrics.LatencyTally`.

Caveats that keep the comparison honest: simulated latencies are
*virtual* seconds drawn from ``spec.latency``, measured ones are wall
seconds dominated by serialization and scheduling, so the two columns
share shape (ordering, tail ratios), not units; ``scenario.horizon``
acts here as a hard wall-clock guard (seconds of real time) after
which in-flight clients are cancelled and the partial tally reported.
"""

from __future__ import annotations

import asyncio
import contextlib
import time

import numpy as np

from repro.cluster.rng import make_rng, spawn_rngs
from repro.runtime.async_coord import AsyncCoordinator
from repro.runtime.rounds import RetryPolicy
from repro.sim.metrics import LatencyTally
from repro.sim.workloads import OpKind, write_payload

from .harness import ServiceGroup, mirror_state

__all__ = ["run_wallclock"]


async def _drive(
    engine,
    coordinator: AsyncCoordinator,
    ops,
    *,
    clients: int,
    think_time: float,
    block_length: int,
    horizon: float,
) -> LatencyTally:
    """Closed-loop clients pulling from one shared operation tape."""
    tally = LatencyTally()
    loop = asyncio.get_running_loop()
    cursor = iter(list(ops))

    async def client() -> None:
        for op in cursor:
            started = loop.time()
            if op.kind is OpKind.READ:
                tally.reads_attempted += 1
                result = await coordinator.execute_plan(engine.read_plan(op.block))
                elapsed = loop.time() - started
                if result.success:
                    tally.reads_succeeded += 1
                    tally.read_latencies.append(elapsed)
                else:
                    tally.failed_read_latencies.append(elapsed)
            else:
                tally.writes_attempted += 1
                value = write_payload(op.payload_seed, block_length)
                result = await coordinator.execute_plan(
                    engine.write_plan(op.block, value)
                )
                elapsed = loop.time() - started
                if result.success:
                    tally.writes_succeeded += 1
                    tally.write_latencies.append(elapsed)
                else:
                    tally.failed_write_latencies.append(elapsed)
            if think_time:
                await asyncio.sleep(think_time)

    workers = [asyncio.ensure_future(client()) for _ in range(clients)]
    try:
        await asyncio.wait_for(asyncio.gather(*workers), timeout=horizon)
    except asyncio.TimeoutError:
        for worker in workers:
            worker.cancel()
        await asyncio.gather(*workers, return_exceptions=True)
    return tally


def run_wallclock(spec, *, transports=None, ops=None) -> dict:
    """Measure one spec against live services; returns the report dict.

    With ``transports=None`` the run is self-contained: a
    :class:`ServiceGroup` of the spec's ``transport`` kind (default
    ``inproc``) serves the built cluster's own nodes. Passing a
    transport map instead drives an external fleet (e.g. TCP to a
    ``repro serve`` process); the locally initialized state is mirrored
    over the wire before the clients start.
    """
    # imported here: repro.api imports stay out of the services layer's
    # import time (the runner imports this module lazily and vice versa)
    from repro.api.build import build_system
    from repro.api.runner import _NUM_STREAMS, _make_workload
    from repro.api.spec import LatencySpec, ScenarioSpec, TransportSpec

    scenario = spec.scenario or ScenarioSpec()
    tspec = spec.transport or TransportSpec()
    latency_spec = spec.latency or LatencySpec()
    policy = RetryPolicy(timeout=latency_spec.timeout, retries=latency_spec.retries)
    loop = asyncio.new_event_loop()
    group = None
    holder: dict = {}

    def factory(cluster):
        coordinator = AsyncCoordinator({}, policy=policy, loop=loop)
        holder["coordinator"] = coordinator
        return coordinator

    try:
        built = build_system(spec, coordinator_factory=factory)
        built.initialize()
        coordinator: AsyncCoordinator = holder["coordinator"]
        if transports is None:
            group = ServiceGroup.for_cluster(built.cluster, tspec)
            loop.run_until_complete(group.start())
            transport_map = group.make_transports()
            mirrored = 0
        else:
            transport_map = dict(transports)
            mirrored = loop.run_until_complete(
                mirror_state(transport_map, built.cluster)
            )
        coordinator.transports.update(transport_map)
        if ops is None:
            streams = spawn_rngs(make_rng(spec.seed), _NUM_STREAMS)
            ops = _make_workload(spec, built.num_blocks, streams[1])
        started = time.perf_counter()
        tally = loop.run_until_complete(
            _drive(
                built.engine,
                coordinator,
                ops,
                clients=scenario.clients,
                think_time=scenario.think_time,
                block_length=spec.workload.block_length,
                horizon=scenario.horizon,
            )
        )
        loop.run_until_complete(coordinator.drain())
        duration = time.perf_counter() - started
        tally.messages = coordinator.messages
        tally.timeouts = coordinator.timeouts
        tally.retries = coordinator.retries
        tally.max_in_flight = coordinator.max_in_flight
        tally.round_messages = coordinator.round_messages.copy()
        attempted = tally.reads_attempted + tally.writes_attempted
        return {
            "transport": tspec.to_dict(),
            "remote": transports is not None,
            "mirrored_records": mirrored,
            "clients": scenario.clients,
            "think_time": scenario.think_time,
            "ops_submitted": attempted,
            "wall_duration": duration,
            "throughput": attempted / duration if duration > 0 else 0.0,
            "summary": tally.summary(),
            "operation_latency": tally.operation_percentiles(),
        }
    finally:
        coordinator = holder.get("coordinator")
        if coordinator is not None:
            with contextlib.suppress(Exception):
                loop.run_until_complete(coordinator.aclose())
        if group is not None:
            with contextlib.suppress(Exception):
                loop.run_until_complete(group.aclose())
        loop.close()
