"""(n, k) MDS erasure code with systematic layout and in-place delta updates.

This is the code of the paper's section III-A: k original data blocks
``b_1..b_k`` plus n-k parity blocks

    b_j = sum_{i=1..k} alpha_{j,i} b_i        (eq. 1)

with arithmetic over GF(2^w). Beyond the usual encode/decode/repair, the
class exposes the *delta update* used by Algorithm 1: when data block i
changes by ``delta = new ^ old``, each parity becomes

    b_j' = b_j + alpha_{j,i} * delta

which is exactly the ``N_j.add(alpha_ji . (x - chunk))`` RPC of the paper.

Indexing convention: blocks carry *global* indices 0..n-1; indices < k are
data blocks, indices >= k are parity blocks. (The paper numbers from 1; we
use 0-based throughout the code base.)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import ConfigurationError, DecodeError
from repro.gf.field import GF256, GF2m
from repro.gf.kernels import gf_matmul
from repro.gf.linalg import inverse
from repro.erasure.generator import build_generator, verify_mds

__all__ = ["DecodePlan", "MDSCode"]

#: Stripes with blocks up to this many symbols are fused into one kernel
#: dispatch by the batch APIs; beyond it the per-call dispatch is already
#: amortized and the fusion copy would only cost memory bandwidth.
FUSE_MAX_BLOCK = 1 << 13


@dataclass(frozen=True)
class DecodePlan:
    """A cached decode: everything derived from one survivor set.

    Repeated decodes against the same k survivors (common across stripes
    of one volume and across Monte-Carlo trials, where the same failure
    pattern recurs) skip Gauss-Jordan entirely. Beyond the inverted
    generator submatrix, the plan precomputes the systematic structure:
    survivor *data* rows pass through decode verbatim (``present``), so
    only the ``missing`` data rows pay for a kernel dispatch — against
    the (|missing|, k) slice ``solve_rows`` instead of the full inverse.
    Combined "re-encode" rows (``generator[target] @ inverse``) are
    cached lazily so single-block repair never materializes the full
    data matrix.
    """

    indices: tuple[int, ...]  # sorted survivor rows the plan solves from
    matrix: np.ndarray  # (k, k) inverse of generator[indices]
    present: tuple[tuple[int, int], ...]  # (data index, row position) pairs
    missing: tuple[int, ...]  # data indices absent from the survivors
    solve_rows: np.ndarray  # matrix[missing], the only rows decode multiplies
    _recode_rows: dict = dataclass_field(default_factory=dict, repr=False)

    def recode_row(self, code: "MDSCode", target: int) -> np.ndarray:
        """(k,) row r with ``block[target] = r @ fragments`` (cached)."""
        row = self._recode_rows.get(target)
        if row is None:
            row = gf_matmul(
                code.field, code.generator[target][None, :], self.matrix
            )[0]
            row.setflags(write=False)
            self._recode_rows[target] = row
        return row


class MDSCode:
    """Systematic (n, k) MDS erasure code over GF(2^w).

    Parameters
    ----------
    n:
        Total number of blocks in a stripe (data + parity).
    k:
        Number of data blocks. Any k of the n blocks reconstruct the stripe;
        the code tolerates n - k erasures.
    field:
        The GF(2^w) instance; defaults to the shared GF(2^8).
    construction:
        ``"vandermonde"`` (default) or ``"cauchy"``.

    Examples
    --------
    >>> import numpy as np
    >>> code = MDSCode(6, 4)
    >>> data = np.arange(4 * 16, dtype=np.uint8).reshape(4, 16)
    >>> stripe = code.encode(data)
    >>> lost = [0, 5]                      # lose a data and a parity block
    >>> keep = [i for i in range(6) if i not in lost]
    >>> rec = code.decode(keep, stripe[keep])
    >>> bool(np.array_equal(rec, data))
    True
    """

    def __init__(
        self,
        n: int,
        k: int,
        field: GF2m | None = None,
        construction: str = "vandermonde",
        plan_cache_size: int = 128,
    ) -> None:
        self.field = field if field is not None else GF256
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if n < k:
            raise ConfigurationError(f"need n >= k, got n={n}, k={k}")
        if plan_cache_size < 0:
            raise ConfigurationError(
                f"plan_cache_size must be >= 0, got {plan_cache_size}"
            )
        self.n = n
        self.k = k
        self.m = n - k
        self.construction = construction
        self.generator = build_generator(self.field, n, k, construction)
        self.generator.setflags(write=False)
        self.plan_cache_size = plan_cache_size
        self._plan_cache: OrderedDict[tuple[int, ...], DecodePlan] = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MDSCode(n={self.n}, k={self.k}, "
            f"field=GF(2^{self.field.width}), construction={self.construction!r})"
        )

    @property
    def parity_matrix(self) -> np.ndarray:
        """The (n-k, k) matrix of coefficients alpha_{j,i} from eq. (1)."""
        return self.generator[self.k :]

    def coefficient(self, j: int, i: int) -> int:
        """alpha_{j,i}: weight of data block i inside parity block j.

        ``j`` is a global parity index (k <= j < n); ``i`` a data index.
        """
        if not self.k <= j < self.n:
            raise ConfigurationError(
                f"parity index must be in [{self.k}, {self.n}), got {j}"
            )
        if not 0 <= i < self.k:
            raise ConfigurationError(f"data index must be in [0, {self.k}), got {i}")
        return int(self.generator[j, i])

    def is_data(self, index: int) -> bool:
        """True iff the global block index designates an original data block."""
        if not 0 <= index < self.n:
            raise ConfigurationError(f"block index must be in [0, {self.n}), got {index}")
        return index < self.k

    # ------------------------------------------------------------------ #
    # encode
    # ------------------------------------------------------------------ #

    def _coerce_data(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=self.field.dtype)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ConfigurationError(
                f"data must have shape (k={self.k}, L), got {data.shape}"
            )
        return data

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode (k, L) data into the full (n, L) stripe.

        Rows 0..k-1 are the data verbatim (systematic); rows k..n-1 the
        parity blocks of eq. (1).
        """
        data = self._coerce_data(data)
        stripe = np.empty((self.n, data.shape[1]), dtype=self.field.dtype)
        stripe[: self.k] = data
        if self.m:
            stripe[self.k :] = gf_matmul(self.field, self.parity_matrix, data)
        return stripe

    def encode_parity(self, data: np.ndarray) -> np.ndarray:
        """Only the (n-k, L) parity rows for the given (k, L) data."""
        data = self._coerce_data(data)
        if not self.m:
            return np.empty((0, data.shape[1]), dtype=self.field.dtype)
        return gf_matmul(self.field, self.parity_matrix, data)

    def _coerce_batch(self, data: np.ndarray, rows: int, name: str) -> np.ndarray:
        data = np.asarray(data, dtype=self.field.dtype)
        if data.ndim != 3 or data.shape[1] != rows:
            raise ConfigurationError(
                f"{name} must have shape (S, {rows}, L), got {data.shape}"
            )
        return data

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        """Encode S stripes at once: (S, k, L) data -> (S, n, L) stripes.

        For small blocks (L <= ``FUSE_MAX_BLOCK``) the S stripes are
        fused into one (k, S*L) operand so the parity computation is a
        single kernel dispatch regardless of S — the per-call overhead
        that dominates small-stripe encodes is paid once per batch. For
        large blocks the kernel is already bandwidth-bound, so the batch
        loops per stripe and skips the fusion copy.
        """
        data = self._coerce_batch(data, self.k, "data")
        s, _, length = data.shape
        stripes = np.empty((s, self.n, length), dtype=self.field.dtype)
        stripes[:, : self.k] = data
        if self.m and s:
            if length <= FUSE_MAX_BLOCK:
                fused = np.ascontiguousarray(data.transpose(1, 0, 2)).reshape(
                    self.k, s * length
                )
                parity = gf_matmul(self.field, self.parity_matrix, fused)
                stripes[:, self.k :] = (
                    parity.reshape(self.m, s, length).transpose(1, 0, 2)
                )
            else:
                for idx in range(s):
                    stripes[idx, self.k :] = gf_matmul(
                        self.field, self.parity_matrix, data[idx]
                    )
        return stripes

    def encode_block(self, index: int, data: np.ndarray) -> np.ndarray:
        """The single stripe row with global ``index`` for the given data."""
        data = self._coerce_data(data)
        if not 0 <= index < self.n:
            raise ConfigurationError(f"block index must be in [0, {self.n}), got {index}")
        if index < self.k:
            return data[index].copy()
        return self.field.dot(self.generator[index], data)

    # ------------------------------------------------------------------ #
    # decode / repair
    # ------------------------------------------------------------------ #

    def _gather(self, indices, fragments) -> tuple[list[int], np.ndarray]:
        indices = [int(i) for i in indices]
        if len(set(indices)) != len(indices):
            raise DecodeError(f"duplicate fragment indices: {indices}")
        for i in indices:
            if not 0 <= i < self.n:
                raise DecodeError(f"fragment index {i} out of range [0, {self.n})")
        fragments = np.asarray(fragments, dtype=self.field.dtype)
        if fragments.ndim != 2 or fragments.shape[0] != len(indices):
            raise DecodeError(
                f"fragments must have shape ({len(indices)}, L), got {fragments.shape}"
            )
        if len(indices) < self.k:
            raise DecodeError(
                f"need at least k={self.k} fragments, got {len(indices)}"
            )
        return indices, fragments

    def decode_plan(self, indices) -> DecodePlan:
        """The cached :class:`DecodePlan` for a survivor set (>= k indices).

        Only the first k indices are used (matching :meth:`decode`); the
        key is the *sorted* survivor tuple, so every ordering of the same
        set shares one Gauss-Jordan inversion. An LRU of
        ``plan_cache_size`` plans is kept (a volume with rotating
        placements or a Monte-Carlo sweep cycles through a handful of
        failure patterns, so hit rates are near 1 after warmup).
        """
        use = sorted(int(i) for i in indices[: self.k])
        if len(use) != self.k:
            raise DecodeError(f"need at least k={self.k} fragments, got {len(use)}")
        for i in use:
            if not 0 <= i < self.n:
                raise DecodeError(f"fragment index {i} out of range [0, {self.n})")
        if len(set(use)) != self.k:
            raise DecodeError(f"duplicate fragment indices: {use}")
        key = tuple(use)
        plan = self._plan_cache.get(key)
        if plan is not None:
            self.plan_cache_hits += 1
            self._plan_cache.move_to_end(key)
            return plan
        self.plan_cache_misses += 1
        matrix = inverse(self.field, self.generator[use])
        matrix.setflags(write=False)
        present = tuple((i, pos) for pos, i in enumerate(use) if i < self.k)
        missing = tuple(sorted(set(range(self.k)) - {i for i, _ in present}))
        solve_rows = np.ascontiguousarray(matrix[list(missing)])
        solve_rows.setflags(write=False)
        plan = DecodePlan(
            indices=key,
            matrix=matrix,
            present=present,
            missing=missing,
            solve_rows=solve_rows,
        )
        if self.plan_cache_size:
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan

    def plan_cache_info(self) -> dict[str, int]:
        """Cache counters: hits / misses / current size / capacity."""
        return {
            "hits": self.plan_cache_hits,
            "misses": self.plan_cache_misses,
            "size": len(self._plan_cache),
            "maxsize": self.plan_cache_size,
        }

    def clear_plan_cache(self) -> None:
        """Drop every cached plan and reset the counters."""
        self._plan_cache.clear()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    @staticmethod
    def _sort_rows(use: list[int], frag: np.ndarray) -> tuple[list[int], np.ndarray]:
        """Reorder fragment rows to the sorted-index order plans expect."""
        order = sorted(range(len(use)), key=use.__getitem__)
        if order == list(range(len(use))):
            return use, frag
        return [use[pos] for pos in order], frag[order]

    def decode(self, indices, fragments) -> np.ndarray:
        """Reconstruct the (k, L) data from any >= k fragments.

        ``indices`` are global block indices; ``fragments`` the matching
        rows. Exactly k of them are used (the first k given); the MDS
        property guarantees that any such square system is solvable. The
        inverted system comes from the :meth:`decode_plan` cache, so only
        the first decode of a given survivor set pays for Gauss-Jordan.
        """
        indices, fragments = self._gather(indices, fragments)
        use, frag = self._sort_rows(indices[: self.k], fragments[: self.k])
        # Fast path: all k data blocks present among the chosen rows.
        if use == list(range(self.k)):
            return frag.copy()
        plan = self.decode_plan(use)
        return self._apply_plan(plan, frag)

    def _apply_plan(self, plan: DecodePlan, frag: np.ndarray) -> np.ndarray:
        """Systematic decode: copy survivor data rows, solve the missing.

        ``frag`` rows are in plan (sorted-index) order; output is (k, L).
        Only the |missing| absent data rows touch the kernel — for the
        common partial-loss survivor sets that is a fraction of the full
        (k, k) x (k, L) product the naive solve performs.
        """
        out = np.empty((self.k, frag.shape[1]), dtype=self.field.dtype)
        for i, pos in plan.present:
            out[i] = frag[pos]
        if plan.missing:
            out[list(plan.missing)] = gf_matmul(self.field, plan.solve_rows, frag)
        return out

    def decode_batch(self, indices, fragments) -> np.ndarray:
        """Decode S stripes that share one survivor set: (S, >=k, L) -> (S, k, L).

        ``indices`` are the global block indices of the fragment rows,
        identical for every stripe in the batch (the common case: one
        failure pattern across a whole volume). All stripes are fused
        into a single (k, S*L) solve against the cached plan.
        """
        idx_list = [int(i) for i in indices]
        fragments = self._coerce_batch(fragments, len(idx_list), "fragments")
        if len(set(idx_list)) != len(idx_list):
            raise DecodeError(f"duplicate fragment indices: {idx_list}")
        for i in idx_list:
            if not 0 <= i < self.n:
                raise DecodeError(f"fragment index {i} out of range [0, {self.n})")
        if len(idx_list) < self.k:
            raise DecodeError(
                f"need at least k={self.k} fragments, got {len(idx_list)}"
            )
        s, _, length = fragments.shape
        use = idx_list[: self.k]
        frag = fragments[:, : self.k]
        order = sorted(range(self.k), key=use.__getitem__)
        if order != list(range(self.k)):
            use = [use[pos] for pos in order]
            frag = frag[:, order]
        if use == list(range(self.k)):
            return frag.copy()
        if not s:
            return np.empty((0, self.k, length), dtype=self.field.dtype)
        plan = self.decode_plan(use)
        if length <= FUSE_MAX_BLOCK:
            # Fuse the batch into one (k, S*L) operand: a single kernel
            # dispatch (and one plan lookup) regardless of the stripe count.
            fused = np.ascontiguousarray(frag.transpose(1, 0, 2)).reshape(
                self.k, s * length
            )
            data = self._apply_plan(plan, fused)
            return np.ascontiguousarray(
                data.reshape(self.k, s, length).transpose(1, 0, 2)
            )
        out = np.empty((s, self.k, length), dtype=self.field.dtype)
        for idx in range(s):
            out[idx] = self._apply_plan(plan, frag[idx])
        return out

    def reconstruct_block(self, index: int, indices, fragments) -> np.ndarray:
        """Reconstruct the single block with global ``index``.

        Uses the fragment directly when present; otherwise combines the
        cached plan with the target's generator row into one (1, k) x
        (k, L) product — the full data matrix is never materialized.
        This is the ``decode(i, id, V)`` step of Algorithm 2 (Case 2).
        """
        if not 0 <= index < self.n:
            raise ConfigurationError(f"block index must be in [0, {self.n}), got {index}")
        idx_list = [int(i) for i in indices]
        if index in idx_list:
            fragments = np.asarray(fragments, dtype=self.field.dtype)
            return fragments[idx_list.index(index)].copy()
        indices, fragments = self._gather(idx_list, fragments)
        use, frag = self._sort_rows(indices[: self.k], fragments[: self.k])
        if use == list(range(self.k)):
            if index < self.k:
                return frag[index].copy()
            row = self.generator[index][None, :]
        else:
            row = self.decode_plan(use).recode_row(self, index)[None, :]
        return gf_matmul(self.field, row, frag)[0]

    def repair(self, lost, indices, fragments) -> np.ndarray:
        """Exact repair: recompute the rows in ``lost`` from >= k survivors.

        Returns an array of shape (len(lost), L) with the original contents
        of the lost blocks (exact repair in the paper's taxonomy). All lost
        rows are rebuilt in one stacked-recode-row product against the
        cached plan.
        """
        lost = [int(i) for i in lost]
        for index in lost:
            if not 0 <= index < self.n:
                raise ConfigurationError(
                    f"block index must be in [0, {self.n}), got {index}"
                )
        indices, fragments = self._gather(indices, fragments)
        use, frag = self._sort_rows(indices[: self.k], fragments[: self.k])
        if not lost:
            return np.empty((0, frag.shape[1]), dtype=self.field.dtype)
        if use == list(range(self.k)):
            rows = self.generator[lost]
        else:
            plan = self.decode_plan(use)
            rows = np.stack([plan.recode_row(self, index) for index in lost])
        return gf_matmul(self.field, rows, frag)

    # ------------------------------------------------------------------ #
    # in-place delta updates (Algorithm 1 support)
    # ------------------------------------------------------------------ #

    def delta(self, old_block: np.ndarray, new_block: np.ndarray) -> np.ndarray:
        """``new - old`` over the field (XOR); the paper's ``x - chunk``."""
        old_block = np.asarray(old_block, dtype=self.field.dtype)
        new_block = np.asarray(new_block, dtype=self.field.dtype)
        if old_block.shape != new_block.shape:
            raise ConfigurationError("old and new blocks must have equal shape")
        return np.bitwise_xor(new_block, old_block)

    def parity_delta(self, j: int, i: int, delta: np.ndarray) -> np.ndarray:
        """The buffer ``alpha_{j,i} * delta`` a parity node must XOR in."""
        coeff = self.coefficient(j, i)
        return self.field.scalar_mul(coeff, np.asarray(delta, dtype=self.field.dtype))

    def apply_parity_delta(
        self, parity_block: np.ndarray, j: int, i: int, delta: np.ndarray
    ) -> None:
        """In-place parity update ``b_j ^= alpha_{j,i} * delta``."""
        self.field.addmul_into(
            parity_block, self.coefficient(j, i), np.asarray(delta, dtype=self.field.dtype)
        )

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #

    def verify_mds(self, **kwargs) -> bool:
        """Check that every k-row submatrix of the generator is invertible."""
        return verify_mds(self.field, self.generator, **kwargs)

    def storage_overhead(self) -> float:
        """Stored bytes per byte of data: n / k (the paper's eq. 15 ratio)."""
        return self.n / self.k
