"""(n, k) MDS erasure code with systematic layout and in-place delta updates.

This is the code of the paper's section III-A: k original data blocks
``b_1..b_k`` plus n-k parity blocks

    b_j = sum_{i=1..k} alpha_{j,i} b_i        (eq. 1)

with arithmetic over GF(2^w). Beyond the usual encode/decode/repair, the
class exposes the *delta update* used by Algorithm 1: when data block i
changes by ``delta = new ^ old``, each parity becomes

    b_j' = b_j + alpha_{j,i} * delta

which is exactly the ``N_j.add(alpha_ji . (x - chunk))`` RPC of the paper.

Indexing convention: blocks carry *global* indices 0..n-1; indices < k are
data blocks, indices >= k are parity blocks. (The paper numbers from 1; we
use 0-based throughout the code base.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DecodeError
from repro.gf.field import GF256, GF2m
from repro.gf.linalg import matmul, solve
from repro.erasure.generator import build_generator, verify_mds

__all__ = ["MDSCode"]


class MDSCode:
    """Systematic (n, k) MDS erasure code over GF(2^w).

    Parameters
    ----------
    n:
        Total number of blocks in a stripe (data + parity).
    k:
        Number of data blocks. Any k of the n blocks reconstruct the stripe;
        the code tolerates n - k erasures.
    field:
        The GF(2^w) instance; defaults to the shared GF(2^8).
    construction:
        ``"vandermonde"`` (default) or ``"cauchy"``.

    Examples
    --------
    >>> import numpy as np
    >>> code = MDSCode(6, 4)
    >>> data = np.arange(4 * 16, dtype=np.uint8).reshape(4, 16)
    >>> stripe = code.encode(data)
    >>> lost = [0, 5]                      # lose a data and a parity block
    >>> keep = [i for i in range(6) if i not in lost]
    >>> rec = code.decode(keep, stripe[keep])
    >>> bool(np.array_equal(rec, data))
    True
    """

    def __init__(
        self,
        n: int,
        k: int,
        field: GF2m | None = None,
        construction: str = "vandermonde",
    ) -> None:
        self.field = field if field is not None else GF256
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if n < k:
            raise ConfigurationError(f"need n >= k, got n={n}, k={k}")
        self.n = n
        self.k = k
        self.m = n - k
        self.construction = construction
        self.generator = build_generator(self.field, n, k, construction)
        self.generator.setflags(write=False)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MDSCode(n={self.n}, k={self.k}, "
            f"field=GF(2^{self.field.width}), construction={self.construction!r})"
        )

    @property
    def parity_matrix(self) -> np.ndarray:
        """The (n-k, k) matrix of coefficients alpha_{j,i} from eq. (1)."""
        return self.generator[self.k :]

    def coefficient(self, j: int, i: int) -> int:
        """alpha_{j,i}: weight of data block i inside parity block j.

        ``j`` is a global parity index (k <= j < n); ``i`` a data index.
        """
        if not self.k <= j < self.n:
            raise ConfigurationError(
                f"parity index must be in [{self.k}, {self.n}), got {j}"
            )
        if not 0 <= i < self.k:
            raise ConfigurationError(f"data index must be in [0, {self.k}), got {i}")
        return int(self.generator[j, i])

    def is_data(self, index: int) -> bool:
        """True iff the global block index designates an original data block."""
        if not 0 <= index < self.n:
            raise ConfigurationError(f"block index must be in [0, {self.n}), got {index}")
        return index < self.k

    # ------------------------------------------------------------------ #
    # encode
    # ------------------------------------------------------------------ #

    def _coerce_data(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=self.field.dtype)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ConfigurationError(
                f"data must have shape (k={self.k}, L), got {data.shape}"
            )
        return data

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode (k, L) data into the full (n, L) stripe.

        Rows 0..k-1 are the data verbatim (systematic); rows k..n-1 the
        parity blocks of eq. (1).
        """
        data = self._coerce_data(data)
        stripe = np.empty((self.n, data.shape[1]), dtype=self.field.dtype)
        stripe[: self.k] = data
        if self.m:
            stripe[self.k :] = matmul(self.field, self.parity_matrix, data)
        return stripe

    def encode_parity(self, data: np.ndarray) -> np.ndarray:
        """Only the (n-k, L) parity rows for the given (k, L) data."""
        data = self._coerce_data(data)
        if not self.m:
            return np.empty((0, data.shape[1]), dtype=self.field.dtype)
        return matmul(self.field, self.parity_matrix, data)

    def encode_block(self, index: int, data: np.ndarray) -> np.ndarray:
        """The single stripe row with global ``index`` for the given data."""
        data = self._coerce_data(data)
        if not 0 <= index < self.n:
            raise ConfigurationError(f"block index must be in [0, {self.n}), got {index}")
        if index < self.k:
            return data[index].copy()
        return self.field.dot(self.generator[index], data)

    # ------------------------------------------------------------------ #
    # decode / repair
    # ------------------------------------------------------------------ #

    def _gather(self, indices, fragments) -> tuple[list[int], np.ndarray]:
        indices = [int(i) for i in indices]
        if len(set(indices)) != len(indices):
            raise DecodeError(f"duplicate fragment indices: {indices}")
        for i in indices:
            if not 0 <= i < self.n:
                raise DecodeError(f"fragment index {i} out of range [0, {self.n})")
        fragments = np.asarray(fragments, dtype=self.field.dtype)
        if fragments.ndim != 2 or fragments.shape[0] != len(indices):
            raise DecodeError(
                f"fragments must have shape ({len(indices)}, L), got {fragments.shape}"
            )
        if len(indices) < self.k:
            raise DecodeError(
                f"need at least k={self.k} fragments, got {len(indices)}"
            )
        return indices, fragments

    def decode(self, indices, fragments) -> np.ndarray:
        """Reconstruct the (k, L) data from any >= k fragments.

        ``indices`` are global block indices; ``fragments`` the matching
        rows. Exactly k of them are used (the first k given); the MDS
        property guarantees that any such square system is solvable.
        """
        indices, fragments = self._gather(indices, fragments)
        use = indices[: self.k]
        frag = fragments[: self.k]
        # Fast path: all k data blocks present among the chosen rows.
        if all(i < self.k for i in use) and sorted(use) == list(range(self.k)):
            out = np.empty_like(frag)
            for pos, i in enumerate(use):
                out[i] = frag[pos]
            return out
        sub = self.generator[use]
        return solve(self.field, sub, frag)

    def reconstruct_block(self, index: int, indices, fragments) -> np.ndarray:
        """Reconstruct the single block with global ``index``.

        Uses the fragment directly when present; otherwise decodes from k
        fragments and re-encodes the target row. This is the ``decode(i, id,
        V)`` step of Algorithm 2 (Case 2).
        """
        if not 0 <= index < self.n:
            raise ConfigurationError(f"block index must be in [0, {self.n}), got {index}")
        idx_list = [int(i) for i in indices]
        if index in idx_list:
            fragments = np.asarray(fragments, dtype=self.field.dtype)
            return fragments[idx_list.index(index)].copy()
        data = self.decode(indices, fragments)
        if index < self.k:
            return data[index]
        return self.field.dot(self.generator[index], data)

    def repair(self, lost, indices, fragments) -> np.ndarray:
        """Exact repair: recompute the rows in ``lost`` from >= k survivors.

        Returns an array of shape (len(lost), L) with the original contents
        of the lost blocks (exact repair in the paper's taxonomy).
        """
        lost = [int(i) for i in lost]
        data = self.decode(indices, fragments)
        out = np.empty((len(lost), data.shape[1]), dtype=self.field.dtype)
        for pos, index in enumerate(lost):
            if index < self.k:
                out[pos] = data[index]
            else:
                out[pos] = self.field.dot(self.generator[index], data)
        return out

    # ------------------------------------------------------------------ #
    # in-place delta updates (Algorithm 1 support)
    # ------------------------------------------------------------------ #

    def delta(self, old_block: np.ndarray, new_block: np.ndarray) -> np.ndarray:
        """``new - old`` over the field (XOR); the paper's ``x - chunk``."""
        old_block = np.asarray(old_block, dtype=self.field.dtype)
        new_block = np.asarray(new_block, dtype=self.field.dtype)
        if old_block.shape != new_block.shape:
            raise ConfigurationError("old and new blocks must have equal shape")
        return np.bitwise_xor(new_block, old_block)

    def parity_delta(self, j: int, i: int, delta: np.ndarray) -> np.ndarray:
        """The buffer ``alpha_{j,i} * delta`` a parity node must XOR in."""
        coeff = self.coefficient(j, i)
        return self.field.scalar_mul(coeff, np.asarray(delta, dtype=self.field.dtype))

    def apply_parity_delta(
        self, parity_block: np.ndarray, j: int, i: int, delta: np.ndarray
    ) -> None:
        """In-place parity update ``b_j ^= alpha_{j,i} * delta``."""
        self.field.addmul_into(
            parity_block, self.coefficient(j, i), np.asarray(delta, dtype=self.field.dtype)
        )

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #

    def verify_mds(self, **kwargs) -> bool:
        """Check that every k-row submatrix of the generator is invertible."""
        return verify_mds(self.field, self.generator, **kwargs)

    def storage_overhead(self) -> float:
        """Stored bytes per byte of data: n / k (the paper's eq. 15 ratio)."""
        return self.n / self.k
