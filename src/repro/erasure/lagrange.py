"""Polynomial (Lagrange) view of the systematic Vandermonde code.

The systematic-Vandermonde generator G = V V_top^{-1} makes every stripe
a Reed-Solomon codeword in the evaluation view: with evaluation points
x_0..x_{n-1} (the Vandermonde points), the stripe is

    c_j = f(x_j),   f = the unique degree-< k polynomial with
                    f(x_i) = data_i for i < k.

Reconstruction from any k fragments is therefore Lagrange interpolation —
an *independent* decode algorithm from the Gauss-Jordan matrix path in
:class:`~repro.erasure.code.MDSCode`. The test suite cross-checks the two
on random stripes, which guards both implementations at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodeError, DecodeError
from repro.gf.field import GF2m

__all__ = ["lagrange_coefficients", "lagrange_reconstruct"]


def lagrange_coefficients(field: GF2m, xs, target: int) -> np.ndarray:
    """Weights L_i(target) for interpolation points ``xs``.

    ``sum_i L_i(target) * f(xs[i]) = f(target)`` for every polynomial f of
    degree < len(xs).
    """
    xs = [int(x) for x in xs]
    if len(set(xs)) != len(xs):
        raise CodeError(f"interpolation points must be distinct, got {xs}")
    if any(not 0 <= x < field.order for x in xs):
        raise CodeError("interpolation points must be field elements")
    if not 0 <= target < field.order:
        raise CodeError("target must be a field element")
    coeffs = np.zeros(len(xs), dtype=field.dtype)
    for i, xi in enumerate(xs):
        num = 1
        den = 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            num = int(field.mul(num, target ^ xj))  # (target - x_j)
            den = int(field.mul(den, xi ^ xj))  # (x_i - x_j)
        coeffs[i] = field.mul(num, field.inv(den))
    return coeffs


def lagrange_reconstruct(
    field: GF2m, points, fragments, target: int
) -> np.ndarray:
    """Reconstruct the fragment at evaluation point ``target``.

    Parameters
    ----------
    points:
        Evaluation points of the known fragments (k distinct elements).
    fragments:
        (k, L) array of fragment payloads, one row per point.
    target:
        Evaluation point of the block to rebuild.

    Notes
    -----
    Valid for the ``"vandermonde"`` construction of :class:`MDSCode`,
    whose evaluation point for global block index j is simply j.
    """
    fragments = np.asarray(fragments, dtype=field.dtype)
    points = [int(x) for x in points]
    if fragments.ndim != 2 or fragments.shape[0] != len(points):
        raise DecodeError(
            f"fragments must have shape ({len(points)}, L), got {fragments.shape}"
        )
    if target in points:
        return fragments[points.index(target)].copy()
    coeffs = lagrange_coefficients(field, points, target)
    return field.dot(coeffs, fragments)
