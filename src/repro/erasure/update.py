"""Update planning for in-place erasure-coded writes.

Algorithm 1 updates data block i to value x by computing
``delta = x - chunk`` once and shipping ``alpha_{j,i} * delta`` to every
parity node. :class:`UpdatePlan` packages exactly that: the per-node
buffers of one logical write, so protocol engines and the virtual disk
share one implementation (and tests can check the plan against a full
re-encode).

The plan also exposes the paper's update-cost accounting: a basic (n, k)
scheme touches ``n - k + 1`` blocks per single-block update (one read +
write on the target, one read + write per parity), the figure the paper's
introduction quotes for a (9,6) code (8 operations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.erasure.code import MDSCode
from repro.errors import ConfigurationError

__all__ = ["UpdatePlan", "plan_update", "update_io_cost"]


@dataclass(frozen=True)
class UpdatePlan:
    """All buffers needed to apply one data-block update in place.

    Attributes
    ----------
    block_index:
        Data block being written (0-based, < k).
    new_block:
        The full new content for the data node.
    delta:
        ``new ^ old`` over GF(2^w).
    parity_deltas:
        Mapping global parity index j -> ``alpha_{j,i} * delta``, the exact
        buffer the parity node XORs into its stored block (Alg. 1 line 27).
    """

    block_index: int
    new_block: np.ndarray
    delta: np.ndarray
    parity_deltas: dict[int, np.ndarray]

    @property
    def is_noop(self) -> bool:
        """True when new == old (all deltas vanish)."""
        return not self.delta.any()

    def touched_blocks(self) -> int:
        """Number of stripe blocks the update writes (target + parities)."""
        return 1 + len(self.parity_deltas)


def plan_update(
    code: MDSCode, block_index: int, old_block: np.ndarray, new_block: np.ndarray
) -> UpdatePlan:
    """Build the :class:`UpdatePlan` for writing ``new_block`` over ``old_block``."""
    if not 0 <= block_index < code.k:
        raise ConfigurationError(
            f"data block index must be in [0, {code.k}), got {block_index}"
        )
    old_block = np.asarray(old_block, dtype=code.field.dtype)
    new_block = np.asarray(new_block, dtype=code.field.dtype)
    delta = code.delta(old_block, new_block)
    parity_deltas = {
        j: code.parity_delta(j, block_index, delta) for j in range(code.k, code.n)
    }
    return UpdatePlan(
        block_index=block_index,
        new_block=new_block.copy(),
        delta=delta,
        parity_deltas=parity_deltas,
    )


def update_io_cost(n: int, k: int) -> dict[str, int]:
    """IO operations of a basic single-block in-place update.

    The paper's introduction: "a (9,6)-MDS will require 8 read and write
    operations for a single block update: one read and one write for the
    target block, and one read and one write for each of the three
    redundant blocks" — i.e. n - k + 1 reads and n - k + 1 writes.
    """
    if k < 1 or n < k:
        raise ConfigurationError(f"invalid (n={n}, k={k})")
    touched = n - k + 1
    return {"reads": touched, "writes": touched, "total": 2 * touched}
