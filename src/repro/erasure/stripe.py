"""Stripe layout helpers: mapping bytes <-> blocks <-> nodes.

A *stripe* is one codeword of the (n, k) code: k data blocks plus n-k
parity blocks, one block per storage node. This module holds the pure
bookkeeping that both the protocol engines and the virtual-disk middleware
need:

* padding / splitting a byte payload into k equal blocks and back,
* the node-placement convention (data block i on node i, parity block j on
  node j, matching the paper's {N_1..N_k} data / {N_k+1..N_n} parity),
* the per-block trapezoid membership (block i's consistency group is
  {N_i} u {N_k+1..N_n}, the paper's section III-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "StripeLayout",
    "split_payload",
    "join_payload",
    "split_payload_batch",
    "join_payload_batch",
]


def split_payload(payload: bytes, k: int) -> tuple[np.ndarray, int]:
    """Split a byte payload into a (k, L) uint8 array, zero-padded.

    Returns the array and the original length (needed to strip the padding
    on the way back). L is ceil(len(payload) / k), minimum 1 so that empty
    payloads still produce well-formed stripes.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    raw = np.frombuffer(payload, dtype=np.uint8)
    block_len = max(1, -(-raw.size // k))
    padded = np.zeros(k * block_len, dtype=np.uint8)
    padded[: raw.size] = raw
    return padded.reshape(k, block_len), raw.size


def join_payload(blocks: np.ndarray, length: int) -> bytes:
    """Inverse of :func:`split_payload`."""
    blocks = np.asarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2:
        raise ConfigurationError(f"blocks must be 2-D, got shape {blocks.shape}")
    flat = blocks.reshape(-1)
    if not 0 <= length <= flat.size:
        raise ConfigurationError(
            f"length {length} out of range for {flat.size} stored bytes"
        )
    return flat[:length].tobytes()


def split_payload_batch(
    payloads: list[bytes] | tuple[bytes, ...], k: int
) -> tuple[np.ndarray, list[int]]:
    """Split S payloads into one (S, k, L) batch for ``encode_batch``.

    All payloads share a common block length L = ceil(max_len / k)
    (minimum 1), zero-padded — the layout production stripe writers use so
    a whole batch is encoded in one kernel dispatch. Returns the batch and
    the original lengths (for :func:`join_payload_batch`).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not payloads:
        return np.zeros((0, k, 1), dtype=np.uint8), []
    lengths = [len(p) for p in payloads]
    block_len = max(1, -(-max(lengths) // k))
    batch = np.zeros((len(payloads), k * block_len), dtype=np.uint8)
    for row, payload in zip(batch, payloads):
        row[: len(payload)] = np.frombuffer(payload, dtype=np.uint8)
    return batch.reshape(len(payloads), k, block_len), lengths


def join_payload_batch(blocks: np.ndarray, lengths: list[int]) -> list[bytes]:
    """Inverse of :func:`split_payload_batch` for a (S, k, L) batch."""
    blocks = np.asarray(blocks, dtype=np.uint8)
    if blocks.ndim != 3:
        raise ConfigurationError(f"blocks must be 3-D, got shape {blocks.shape}")
    if blocks.shape[0] != len(lengths):
        raise ConfigurationError(
            f"batch holds {blocks.shape[0]} stripes but {len(lengths)} lengths given"
        )
    return [join_payload(stripe, length) for stripe, length in zip(blocks, lengths)]


@dataclass(frozen=True)
class StripeLayout:
    """Placement of one stripe's blocks onto cluster nodes.

    Parameters
    ----------
    n, k:
        Code parameters.
    node_ids:
        The n node identifiers holding blocks 0..n-1, in block order.
        Defaults to ``0..n-1``.
    """

    n: int
    k: int
    node_ids: tuple[int, ...] = dataclass_field(default=())

    def __post_init__(self) -> None:
        if self.k < 1 or self.n < self.k:
            raise ConfigurationError(f"invalid (n={self.n}, k={self.k})")
        ids = self.node_ids or tuple(range(self.n))
        if len(ids) != self.n:
            raise ConfigurationError(
                f"need {self.n} node ids, got {len(ids)}"
            )
        if len(set(ids)) != len(ids):
            raise ConfigurationError("node ids must be distinct")
        object.__setattr__(self, "node_ids", tuple(int(i) for i in ids))

    # -- block/node mapping ------------------------------------------- #

    def node_of_block(self, index: int) -> int:
        """Node holding the block with global index ``index``."""
        if not 0 <= index < self.n:
            raise ConfigurationError(
                f"block index must be in [0, {self.n}), got {index}"
            )
        return self.node_ids[index]

    def block_of_node(self, node_id: int) -> int:
        """Global block index stored on ``node_id``."""
        try:
            return self.node_ids.index(node_id)
        except ValueError:
            raise ConfigurationError(
                f"node {node_id} holds no block of this stripe"
            ) from None

    @property
    def data_nodes(self) -> tuple[int, ...]:
        """Nodes holding original data blocks (the paper's N_1..N_k)."""
        return self.node_ids[: self.k]

    @property
    def parity_nodes(self) -> tuple[int, ...]:
        """Nodes holding parity blocks (the paper's N_k+1..N_n)."""
        return self.node_ids[self.k :]

    def consistency_group(self, i: int) -> tuple[int, ...]:
        """Nodes participating in block i's trapezoid: {N_i, N_k+1..N_n}.

        This is the Nbnode = n - k + 1 node set of the paper's eq. (5).
        """
        if not 0 <= i < self.k:
            raise ConfigurationError(
                f"data block index must be in [0, {self.k}), got {i}"
            )
        return (self.node_ids[i],) + self.parity_nodes

    @property
    def group_size(self) -> int:
        """n - k + 1, the paper's Nbnode (eq. 5)."""
        return self.n - self.k + 1
