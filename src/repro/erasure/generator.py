"""Systematic MDS generator-matrix constructions.

An (n, k) MDS code is represented by an n x k generator matrix G whose top
k x k block is the identity (systematic: the original data blocks are stored
verbatim, which the paper requires "for trivial performance reasons").
The MDS property is equivalent to *every* k x k row-submatrix of G being
invertible, which guarantees "any k blocks chosen over the n may be used to
reconstruct any of the k original blocks".

Two classical constructions are provided:

``systematic Vandermonde``
    Build the n x k Vandermonde matrix V on n distinct field points and
    post-multiply by the inverse of its top k x k block: G = V V_top^-1.
    Any k rows of V are invertible (nonzero Vandermonde determinant), and
    right-multiplication by a fixed invertible matrix preserves that.

``Cauchy``
    G = [I ; C] with C a Cauchy matrix. Every square submatrix of a Cauchy
    matrix is invertible, and a mixed selection of identity and Cauchy rows
    reduces (after column elimination) to a smaller Cauchy submatrix, so
    the stack is MDS.

Both are verified by :func:`verify_mds` (exhaustive for small parameters,
sampled otherwise); the test suite runs the exhaustive check.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.errors import ConfigurationError
from repro.gf.field import GF2m
from repro.gf.linalg import cauchy, identity, inverse, is_invertible, matmul, vandermonde

__all__ = [
    "systematic_vandermonde",
    "systematic_cauchy",
    "build_generator",
    "verify_mds",
    "CONSTRUCTIONS",
]


def _validate_nk(field: GF2m, n: int, k: int) -> None:
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if n < k:
        raise ConfigurationError(f"need n >= k, got n={n}, k={k}")
    if n > field.order:
        raise ConfigurationError(
            f"(n={n}, k={k}) needs {n} distinct points but GF(2^{field.width}) "
            f"has only {field.order} elements; use a wider field"
        )


def systematic_vandermonde(field: GF2m, n: int, k: int) -> np.ndarray:
    """Systematic Vandermonde generator matrix of shape (n, k)."""
    _validate_nk(field, n, k)
    v = vandermonde(field, n, k)
    g = matmul(field, v, inverse(field, v[:k]))
    return g


def systematic_cauchy(field: GF2m, n: int, k: int) -> np.ndarray:
    """Systematic Cauchy generator matrix [I ; C] of shape (n, k)."""
    _validate_nk(field, n, k)
    m = n - k
    g = np.zeros((n, k), dtype=field.dtype)
    g[:k] = identity(field, k)
    if m:
        xs = np.arange(k, k + m, dtype=field.dtype)
        ys = np.arange(k, dtype=field.dtype)
        g[k:] = cauchy(field, xs, ys)
    return g


CONSTRUCTIONS = {
    "vandermonde": systematic_vandermonde,
    "cauchy": systematic_cauchy,
}


def build_generator(field: GF2m, n: int, k: int, construction: str) -> np.ndarray:
    """Build a systematic generator matrix by construction name."""
    try:
        builder = CONSTRUCTIONS[construction]
    except KeyError:
        raise ConfigurationError(
            f"unknown construction {construction!r}; "
            f"choose from {sorted(CONSTRUCTIONS)}"
        ) from None
    g = builder(field, n, k)
    if not np.array_equal(g[:k], identity(field, k)):
        raise ConfigurationError(
            f"construction {construction!r} produced a non-systematic matrix"
        )
    return g


def verify_mds(
    field: GF2m,
    generator: np.ndarray,
    *,
    exhaustive_limit: int = 5000,
    samples: int = 500,
    rng: np.random.Generator | None = None,
) -> bool:
    """Check the MDS property: every k row-subset of G is invertible.

    Exhaustive when C(n, k) <= ``exhaustive_limit``; otherwise checks
    ``samples`` uniformly sampled subsets (a probabilistic certificate used
    only for large parameter spaces).
    """
    n, k = generator.shape
    total = comb(n, k)
    if total <= exhaustive_limit:
        subsets = combinations(range(n), k)
        for rows in subsets:
            if not is_invertible(field, generator[list(rows)]):
                return False
        return True
    rng = rng or np.random.default_rng(0)
    for _ in range(samples):
        rows = rng.choice(n, size=k, replace=False)
        if not is_invertible(field, generator[rows]):
            return False
    return True
