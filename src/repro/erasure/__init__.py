"""Erasure-coding substrate: systematic (n, k) MDS codes (DESIGN.md S2).

Implements the paper's section III-A storage model: data split into k
blocks, n - k parity blocks ``b_j = sum_i alpha_ji b_i`` over GF(2^w), any
k of n blocks sufficient to reconstruct, plus the in-place delta-update
path that Algorithm 1 relies on.
"""

from repro.erasure.code import DecodePlan, MDSCode
from repro.erasure.generator import (
    CONSTRUCTIONS,
    build_generator,
    systematic_cauchy,
    systematic_vandermonde,
    verify_mds,
)
from repro.erasure.lagrange import lagrange_coefficients, lagrange_reconstruct
from repro.erasure.stripe import (
    StripeLayout,
    join_payload,
    join_payload_batch,
    split_payload,
    split_payload_batch,
)
from repro.erasure.update import UpdatePlan, plan_update, update_io_cost

__all__ = [
    "DecodePlan",
    "MDSCode",
    "lagrange_coefficients",
    "lagrange_reconstruct",
    "CONSTRUCTIONS",
    "build_generator",
    "systematic_vandermonde",
    "systematic_cauchy",
    "verify_mds",
    "StripeLayout",
    "split_payload",
    "join_payload",
    "split_payload_batch",
    "join_payload_batch",
    "UpdatePlan",
    "plan_update",
    "update_io_cost",
]
