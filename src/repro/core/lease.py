"""Lease-based write serialization (the paper's "classical ways").

The paper assumes "some constraints like data concurrency can be solved
using classical ways" and leaves them out of scope. Without any
concurrency control, two coordinators writing the same block race on the
same base version: the node-level monotonicity and V-matrix guards keep
the stripe *uncorrupted* (one of the deltas is rejected everywhere), but
the losing writer burns a round trip and must retry.

:class:`LeaseManager` provides the classical fix: exclusive, expiring
per-block write leases handed out by a (logically centralized) service.
A coordinator acquires the lease, runs Algorithm 1, and releases; leases
auto-expire so a crashed coordinator cannot block a block forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Lease", "LeaseManager"]


@dataclass(frozen=True)
class Lease:
    """An exclusive write lease on one block."""

    block: int
    owner: str
    granted_at: float
    expires_at: float


class LeaseManager:
    """Expiring exclusive leases, one per block.

    Time is supplied by a caller-provided clock callable (e.g. the
    discrete-event simulator's ``now``), keeping the manager usable in
    both wall-clock and virtual-time settings.
    """

    def __init__(self, clock, duration: float = 10.0) -> None:
        if duration <= 0:
            raise ConfigurationError(f"lease duration must be positive, got {duration}")
        self._clock = clock
        self.duration = float(duration)
        self._leases: dict[int, Lease] = {}
        self.grants = 0
        self.rejections = 0
        self.expirations = 0

    def _active(self, block: int) -> Lease | None:
        lease = self._leases.get(block)
        if lease is None:
            return None
        if lease.expires_at <= self._clock():
            del self._leases[block]
            self.expirations += 1
            return None
        return lease

    def acquire(self, block: int, owner: str) -> Lease | None:
        """Try to take the lease; None if another owner holds it."""
        current = self._active(block)
        if current is not None and current.owner != owner:
            self.rejections += 1
            return None
        now = self._clock()
        lease = Lease(
            block=block,
            owner=owner,
            granted_at=now,
            expires_at=now + self.duration,
        )
        self._leases[block] = lease
        self.grants += 1
        return lease

    def release(self, block: int, owner: str) -> bool:
        """Release if held by ``owner``; True when a lease was removed."""
        current = self._active(block)
        if current is None or current.owner != owner:
            return False
        del self._leases[block]
        return True

    def holder(self, block: int) -> str | None:
        """Current lease owner, or None."""
        lease = self._active(block)
        return lease.owner if lease is not None else None
