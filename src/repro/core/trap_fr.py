"""TRAP-FR: the trapezoid protocol over full replication (the baseline).

The comparison system of the paper's section IV: each data block b_i is
fully replicated on the same n - k + 1 nodes that TRAP-ERC uses for its
trapezoid (N_i plus the parity-node set), so both systems tolerate the
same failures and differ only in what the nodes store.

Write: walk levels 0..h writing the full value with version v+1 to every
reachable node, requiring w_l acks per level. Read: version check exactly
as in Algorithm 2; any checked node holding the latest version can serve
the payload directly — the structural advantage over ERC that eq. (10)
vs eq. (13) quantifies.

Operations are expressed as fan-out round plans over the
:mod:`repro.runtime` coordinator abstraction, so the engine runs
unmodified on the instant or the event-driven execution path.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.placement import TrapezoidPlacement
from repro.core.results import ReadCase, ReadResult, WriteResult
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.runtime.coordinator import Coordinator, InstantCoordinator
from repro.runtime.rounds import (
    PAYLOAD_ROUND,
    VERSION_ROUND,
    WRITE_ROUND,
    Request,
    Response,
    Round,
)
from repro.runtime.verify import block_digest

__all__ = ["TrapFrProtocol"]


def _version_valid(response: Response) -> bool:
    """INVALID (absent) records answer but don't count toward the check."""
    return response.ok and response.value >= 0


class TrapFrProtocol:
    """Coordinator-side engine of the full-replication trapezoid protocol."""

    def __init__(
        self,
        cluster: Cluster,
        n: int,
        k: int,
        quorum: TrapezoidQuorum,
        layout: StripeLayout | None = None,
        stripe_id: str = "stripe-0",
        coordinator: Coordinator | None = None,
        verifier=None,
    ) -> None:
        self.cluster = cluster
        self.layout = layout if layout is not None else StripeLayout(n, k)
        if (self.layout.n, self.layout.k) != (n, k):
            raise ConfigurationError(
                f"layout is ({self.layout.n}, {self.layout.k}), expected ({n}, {k})"
            )
        for node_id in self.layout.node_ids:
            cluster.node(node_id)
        self.placement = TrapezoidPlacement(self.layout, quorum)
        self.quorum = quorum
        self.n = n
        self.k = k
        self.stripe_id = stripe_id
        self.coordinator = (
            coordinator if coordinator is not None else InstantCoordinator(cluster)
        )
        self.verifier = verifier

    def replica_key(self, i: int):
        """Key of block i's replica (same key on every group node)."""
        return ("fr-replica", self.stripe_id, i)

    def _check_block(self, i: int) -> None:
        if not 0 <= i < self.k:
            raise ConfigurationError(
                f"data block index must be in [0, {self.k}), got {i}"
            )

    # ------------------------------------------------------------------ #

    def initialize(self, data: np.ndarray) -> None:
        """Load version-0 replicas of every block on its whole group."""
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ConfigurationError(
                f"data must have shape (k={self.k}, L), got {data.shape}"
            )
        for i in range(self.k):
            for node_id in self.placement.group_nodes(i):
                self.cluster.rpc(node_id, "put_data", self.replica_key(i), data[i], 0)
            if self.verifier is not None:
                self.verifier.bootstrap(i, data[i])

    # ------------------------------------------------------------------ #

    def _version_round(self, i: int, level: int) -> Round:
        requests = [
            Request(node_id, "data_version", (self.replica_key(i),))
            for node_id in self.placement.level_nodes(i, level)
        ]
        return Round(
            requests,
            need=self.quorum.r(level),
            accept=_version_valid,
            kind=VERSION_ROUND,
        )

    def write_block(self, i: int, value: np.ndarray) -> WriteResult:
        """Full-replication trapezoid write."""
        return self.coordinator.execute(self.write_plan(i, value))

    def write_plan(self, i: int, value: np.ndarray):
        self._check_block(i)
        value = np.asarray(value)
        current, messages = yield from self._latest_version_plan(i)
        if current is None:
            return WriteResult(
                success=False,
                messages=messages,
                reason="version check before write failed",
            )
        if self.verifier is not None:
            # The metadata record is the trusted version floor: replicas
            # understating their versions cannot make the writer reuse a
            # committed version number.
            meta_outcome = yield self.verifier.read_round(i)
            messages += meta_outcome.messages
            meta = self.verifier.resolve(meta_outcome)
            if meta is None:
                return WriteResult(
                    success=False,
                    messages=messages,
                    reason="metadata quorum unreachable",
                )
            current = max(current, meta[0])
        new_version = current + 1
        acks: list[int] = []
        for level in self.quorum.shape.levels:
            requests = [
                Request(
                    node_id,
                    "write_data",
                    (self.replica_key(i), value, new_version),
                    catches=(NodeUnavailableError, StaleNodeError),
                )
                for node_id in self.placement.level_nodes(i, level)
            ]
            outcome = yield Round(
                requests,
                need=self.quorum.w[level],
                send_all=True,
                kind=WRITE_ROUND,
            )
            messages += outcome.messages
            counter = len(outcome.accepted)
            acks.append(counter)
            if counter < self.quorum.w[level]:
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=acks,
                    failed_level=level,
                    messages=messages,
                    reason=(
                        f"level {level} acknowledged {counter} < w_l = "
                        f"{self.quorum.w[level]}"
                    ),
                )
        if self.verifier is not None:
            meta_outcome = yield self.verifier.write_round(
                i, new_version, block_digest(value)
            )
            messages += meta_outcome.messages
            if not meta_outcome.satisfied:
                self.verifier.metadata_failures += 1
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=acks,
                    messages=messages,
                    reason="metadata quorum write failed",
                )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=acks,
            messages=messages,
        )

    # ------------------------------------------------------------------ #

    def read_block(self, i: int) -> ReadResult:
        """Full-replication trapezoid read."""
        return self.coordinator.execute(self.read_plan(i))

    def read_plan(self, i: int):
        self._check_block(i)
        messages = 0
        meta: tuple[int, bytes] | None = None
        if self.verifier is not None:
            # Version authority moves to the metadata quorum; the level
            # polls below still locate responsive replicas but cannot
            # redirect the read to a stale (or fabricated) version.
            meta_outcome = yield self.verifier.read_round(i)
            messages += meta_outcome.messages
            meta = self.verifier.resolve(meta_outcome)
            if meta is None:
                return ReadResult(
                    success=False,
                    messages=messages,
                    reason="metadata quorum unreachable",
                )
        for level in self.quorum.shape.levels:
            outcome = yield Round(
                [
                    Request(node_id, "data_version", (self.replica_key(i),))
                    for node_id in self.placement.level_nodes(i, level)
                ],
                need=self.quorum.r(level),
                accept=_version_valid,
                kind=VERSION_ROUND,
            )
            messages += outcome.messages
            if not outcome.satisfied:
                continue
            if meta is not None:
                best, digest = meta
                accept = self.verifier.payload_accept(best, digest)
            else:
                best = max(int(response.value) for response in outcome.accepted)
                accept = (
                    lambda response, _b=best: response.ok
                    and response.value[1] == _b
                )
            holders = [
                response.request.node_id
                for response in outcome.accepted
                if int(response.value) == best
            ]
            if not holders:
                # Verified path only: every polled replica understates
                # the committed version — widen to the next level.
                continue
            # Any holder of the max version serves the payload directly.
            payload_outcome = yield Round(
                [
                    Request(
                        node_id,
                        "read_data",
                        (self.replica_key(i),),
                        catches=(NodeUnavailableError, KeyError),
                    )
                    for node_id in holders
                ],
                need=1,
                accept=accept,
                kind=PAYLOAD_ROUND,
            )
            messages += payload_outcome.messages
            if payload_outcome.satisfied:
                payload, _ = payload_outcome.accepted[0].value
                return ReadResult(
                    success=True,
                    value=payload,
                    version=best,
                    case=ReadCase.DIRECT,
                    check_level=level,
                    messages=messages,
                )
            if meta is not None:
                # Verified widening: every holder at this level served a
                # reply the digest check rejected (or vanished). Other
                # levels hold more replicas — keep scanning; only a full
                # sweep with no verifiable copy fails the read.
                continue
            return ReadResult(
                success=False,
                version=best,
                check_level=level,
                messages=messages,
                reason="latest-version holders vanished mid-read",
            )
        return ReadResult(
            success=False,
            messages=messages,
            reason="no level reached its version-check quorum",
        )

    def latest_version(self, i: int) -> int | None:
        """Version check only (None when no level reaches r_l)."""
        version, _ = self.coordinator.execute(self._latest_version_plan(i))
        return version

    def _latest_version_plan(self, i: int):
        """Yields the version rounds; returns ``(version | None, messages)``."""
        messages = 0
        for level in self.quorum.shape.levels:
            outcome = yield self._version_round(i, level)
            messages += outcome.messages
            if outcome.satisfied:
                best = max(int(response.value) for response in outcome.accepted)
                return best, messages
        return None, messages
