"""TRAP-FR: the trapezoid protocol over full replication (the baseline).

The comparison system of the paper's section IV: each data block b_i is
fully replicated on the same n - k + 1 nodes that TRAP-ERC uses for its
trapezoid (N_i plus the parity-node set), so both systems tolerate the
same failures and differ only in what the nodes store.

Write: walk levels 0..h writing the full value with version v+1 to every
reachable node, requiring w_l acks per level. Read: version check exactly
as in Algorithm 2; any checked node holding the latest version can serve
the payload directly — the structural advantage over ERC that eq. (10)
vs eq. (13) quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.placement import TrapezoidPlacement
from repro.core.results import ReadCase, ReadResult, WriteResult
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError
from repro.quorum.trapezoid import TrapezoidQuorum

__all__ = ["TrapFrProtocol"]


class TrapFrProtocol:
    """Coordinator-side engine of the full-replication trapezoid protocol."""

    def __init__(
        self,
        cluster: Cluster,
        n: int,
        k: int,
        quorum: TrapezoidQuorum,
        layout: StripeLayout | None = None,
        stripe_id: str = "stripe-0",
    ) -> None:
        self.cluster = cluster
        self.layout = layout if layout is not None else StripeLayout(n, k)
        if (self.layout.n, self.layout.k) != (n, k):
            raise ConfigurationError(
                f"layout is ({self.layout.n}, {self.layout.k}), expected ({n}, {k})"
            )
        for node_id in self.layout.node_ids:
            cluster.node(node_id)
        self.placement = TrapezoidPlacement(self.layout, quorum)
        self.quorum = quorum
        self.n = n
        self.k = k
        self.stripe_id = stripe_id

    def replica_key(self, i: int):
        """Key of block i's replica (same key on every group node)."""
        return ("fr-replica", self.stripe_id, i)

    # ------------------------------------------------------------------ #

    def initialize(self, data: np.ndarray) -> None:
        """Load version-0 replicas of every block on its whole group."""
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ConfigurationError(
                f"data must have shape (k={self.k}, L), got {data.shape}"
            )
        for i in range(self.k):
            for node_id in self.placement.group_nodes(i):
                self.cluster.rpc(node_id, "put_data", self.replica_key(i), data[i], 0)

    # ------------------------------------------------------------------ #

    def write_block(self, i: int, value: np.ndarray) -> WriteResult:
        """Full-replication trapezoid write."""
        if not 0 <= i < self.k:
            raise ConfigurationError(
                f"data block index must be in [0, {self.k}), got {i}"
            )
        value = np.asarray(value)
        msg_before = self.cluster.network.stats.messages
        current = self.latest_version(i)
        if current is None:
            return WriteResult(
                success=False,
                messages=self.cluster.network.stats.messages - msg_before,
                reason="version check before write failed",
            )
        new_version = current + 1
        acks: list[int] = []
        for level in self.quorum.shape.levels:
            counter = 0
            for node_id in self.placement.level_nodes(i, level):
                try:
                    self.cluster.rpc(
                        node_id, "write_data", self.replica_key(i), value, new_version
                    )
                    counter += 1
                except (NodeUnavailableError, StaleNodeError):
                    continue
            acks.append(counter)
            if counter < self.quorum.w[level]:
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=acks,
                    failed_level=level,
                    messages=self.cluster.network.stats.messages - msg_before,
                    reason=(
                        f"level {level} acknowledged {counter} < w_l = "
                        f"{self.quorum.w[level]}"
                    ),
                )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=acks,
            messages=self.cluster.network.stats.messages - msg_before,
        )

    # ------------------------------------------------------------------ #

    def read_block(self, i: int) -> ReadResult:
        """Full-replication trapezoid read."""
        if not 0 <= i < self.k:
            raise ConfigurationError(
                f"data block index must be in [0, {self.k}), got {i}"
            )
        msg_before = self.cluster.network.stats.messages
        for level in self.quorum.shape.levels:
            counter = 0
            best = -1
            holders: list[int] = []
            needed = self.quorum.r(level)
            for node_id in self.placement.level_nodes(i, level):
                try:
                    v = self.cluster.rpc(node_id, "data_version", self.replica_key(i))
                except NodeUnavailableError:
                    continue
                if v < 0:
                    continue
                counter += 1
                if v > best:
                    best = v
                    holders = [node_id]
                elif v == best:
                    holders.append(node_id)
                if counter == needed:
                    break
            if counter < needed:
                continue
            # Any holder of the max version serves the payload directly.
            for node_id in holders:
                try:
                    payload, v = self.cluster.rpc(node_id, "read_data", self.replica_key(i))
                except (NodeUnavailableError, KeyError):
                    continue
                if v == best:
                    return ReadResult(
                        success=True,
                        value=payload,
                        version=best,
                        case=ReadCase.DIRECT,
                        check_level=level,
                        messages=self.cluster.network.stats.messages - msg_before,
                    )
            return ReadResult(
                success=False,
                version=best,
                check_level=level,
                messages=self.cluster.network.stats.messages - msg_before,
                reason="latest-version holders vanished mid-read",
            )
        return ReadResult(
            success=False,
            messages=self.cluster.network.stats.messages - msg_before,
            reason="no level reached its version-check quorum",
        )

    def latest_version(self, i: int) -> int | None:
        """Version check only (None when no level reaches r_l)."""
        for level in self.quorum.shape.levels:
            counter = 0
            best = -1
            for node_id in self.placement.level_nodes(i, level):
                try:
                    v = self.cluster.rpc(node_id, "data_version", self.replica_key(i))
                except NodeUnavailableError:
                    continue
                if v < 0:
                    continue
                counter += 1
                best = max(best, v)
                if counter == self.quorum.r(level):
                    return best
        return None
