"""TRAP-ERC: the paper's trapezoid quorum protocol over an (n, k) MDS code.

Faithful executable implementation of Algorithms 1 (write) and 2 (read):

* data block b_i lives on node N_i with a scalar version;
* every parity node N_j holds one parity record per stripe: the payload
  b_j = sum_i alpha_ji b_i and the contribution-version column V[:, j-k];
* a write of block i reads the old value (Alg. 1 line 15), then walks the
  trapezoid levels 0..h writing x to N_i and shipping
  ``alpha_ji * (x - chunk)`` deltas to the parity nodes, each guarded by
  the V version check (line 26); the write fails as soon as a level
  acknowledges fewer than w_l nodes (lines 35-37);
* a read of block i walks the levels polling versions until some level
  yields r_l = s_l - w_l + 1 valid answers (lines 11-30); the largest
  version seen among them is the latest; then Case 1 reads N_i directly
  or Case 2 decodes from k version-consistent fragments (lines 30-36).

Beyond the paper, decode handles *per-contribution* staleness correctly:
a parity that missed an update to block m but not to block i is usable
for block i only together with rows agreeing on m's version, so fragments
are grouped by their full version vectors before solving (see DESIGN.md
"Decode freshness rule").
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.placement import TrapezoidPlacement
from repro.core.results import ReadCase, ReadResult, WriteResult
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import (
    ConfigurationError,
    NodeUnavailableError,
    StaleNodeError,
)
from repro.quorum.trapezoid import TrapezoidQuorum

__all__ = ["TrapErcProtocol"]


class TrapErcProtocol:
    """Coordinator-side engine of the TRAP-ERC protocol for one stripe.

    Parameters
    ----------
    cluster:
        The storage cluster; must contain every node of ``layout``.
    code:
        The (n, k) MDS code.
    quorum:
        Trapezoid quorum specification with n - k + 1 positions.
    layout:
        Block -> node placement; defaults to nodes 0..n-1 in order.
    stripe_id:
        Identifier namespacing this stripe's records on the nodes.
    read_repair:
        When True, a decode-path read (Case 2) writes the reconstructed
        value back to a reachable stale N_i, restoring the cheap direct
        path for future reads. Classic quorum-system read repair — an
        extension beyond the paper, off by default for fidelity.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster import Cluster
    >>> from repro.erasure import MDSCode
    >>> from repro.quorum import TrapezoidQuorum, default_shape_for_nbnode
    >>> code = MDSCode(6, 4)
    >>> quorum = TrapezoidQuorum.uniform(default_shape_for_nbnode(3))
    >>> proto = TrapErcProtocol(Cluster(6), code, quorum)
    >>> proto.initialize(np.zeros((4, 8), dtype=np.uint8))
    >>> bool(proto.write_block(1, np.ones(8, dtype=np.uint8)))
    True
    >>> r = proto.read_block(1)
    >>> bool(r.success), int(r.version)
    (True, 1)
    """

    def __init__(
        self,
        cluster: Cluster,
        code: MDSCode,
        quorum: TrapezoidQuorum,
        layout: StripeLayout | None = None,
        stripe_id: str = "stripe-0",
        read_repair: bool = False,
    ) -> None:
        self.cluster = cluster
        self.code = code
        self.layout = layout if layout is not None else StripeLayout(code.n, code.k)
        if (self.layout.n, self.layout.k) != (code.n, code.k):
            raise ConfigurationError(
                f"layout is ({self.layout.n}, {self.layout.k}) but code is "
                f"({code.n}, {code.k})"
            )
        for node_id in self.layout.node_ids:
            cluster.node(node_id)  # validates existence
        self.placement = TrapezoidPlacement(self.layout, quorum)
        self.quorum = quorum
        self.stripe_id = stripe_id
        self.read_repair = bool(read_repair)
        self.read_repairs_performed = 0

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #

    def data_key(self, i: int):
        """Storage key of data block i on node N_i."""
        return ("erc-data", self.stripe_id, i)

    def parity_key(self):
        """Storage key of this stripe's parity record on each parity node."""
        return ("erc-parity", self.stripe_id)

    # ------------------------------------------------------------------ #
    # bootstrap
    # ------------------------------------------------------------------ #

    def initialize(self, data: np.ndarray) -> None:
        """Load the initial stripe at version 0 on every node.

        Bootstrap path (not a quorum write): requires all n nodes up, like
        a volume-creation step in a real deployment.
        """
        self.load_stripe(self.code.encode(data))

    def load_stripe(self, stripe: np.ndarray) -> None:
        """Load an already-encoded (n, L) stripe at version 0.

        Lets callers that encode many stripes in one batch (``MDSCode.
        encode_batch``) or reload a cached stripe (Monte-Carlo trial
        resets) skip the per-call encode entirely.
        """
        stripe = np.asarray(stripe, dtype=self.code.field.dtype)
        if stripe.ndim != 2 or stripe.shape[0] != self.code.n:
            raise ConfigurationError(
                f"stripe must have shape (n={self.code.n}, L), got {stripe.shape}"
            )
        zero_versions = np.zeros(self.code.k, dtype=np.int64)
        for i in range(self.code.k):
            node_id = self.layout.node_of_block(i)
            self.cluster.rpc(node_id, "put_data", self.data_key(i), stripe[i], 0)
        for j in range(self.code.k, self.code.n):
            node_id = self.layout.node_of_block(j)
            self.cluster.rpc(
                node_id, "put_parity", self.parity_key(), stripe[j], zero_versions
            )

    # ------------------------------------------------------------------ #
    # Algorithm 1: write
    # ------------------------------------------------------------------ #

    def write_block(self, i: int, value: np.ndarray) -> WriteResult:
        """Write ``value`` into data block i (Algorithm 1)."""
        if not 0 <= i < self.code.k:
            raise ConfigurationError(
                f"data block index must be in [0, {self.code.k}), got {i}"
            )
        value = np.asarray(value, dtype=self.code.field.dtype)
        msg_before = self.cluster.network.stats.messages

        # Line 15: [chunk, version] <- ReadBlock(i).
        pre = self.read_block(i)
        if not pre.success:
            return WriteResult(
                success=False,
                messages=self.cluster.network.stats.messages - msg_before,
                reason=f"read-before-write failed: {pre.reason}",
            )
        chunk, version = pre.value, pre.version
        if value.shape != chunk.shape:
            raise ConfigurationError(
                f"value shape {value.shape} != block shape {chunk.shape}"
            )
        delta = self.code.delta(chunk, value)
        new_version = version + 1
        ni = self.layout.node_of_block(i)

        acks: list[int] = []
        for level in self.quorum.shape.levels:
            counter = 0
            for node_id in self.placement.level_nodes(i, level):
                try:
                    if node_id == ni:
                        # Line 20: write x in node N_i.
                        self.cluster.rpc(
                            node_id, "write_data", self.data_key(i), value, new_version
                        )
                    else:
                        # Lines 25-31: guarded parity delta.
                        j = self.layout.block_of_node(node_id)
                        buf = self.code.parity_delta(j, i, delta)
                        self.cluster.rpc(
                            node_id,
                            "apply_delta",
                            self.parity_key(),
                            i,
                            buf,
                            expected_version=version,
                            new_version=new_version,
                        )
                    counter += 1
                except (NodeUnavailableError, StaleNodeError):
                    continue
            acks.append(counter)
            if counter < self.quorum.w[level]:
                # Lines 35-37: quorum missed at this level -> FAIL.
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=acks,
                    failed_level=level,
                    messages=self.cluster.network.stats.messages - msg_before,
                    reason=(
                        f"level {level} acknowledged {counter} < w_l = "
                        f"{self.quorum.w[level]}"
                    ),
                )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=acks,
            messages=self.cluster.network.stats.messages - msg_before,
        )

    # ------------------------------------------------------------------ #
    # Algorithm 2: read
    # ------------------------------------------------------------------ #

    def read_block(self, i: int) -> ReadResult:
        """Read data block i (Algorithm 2)."""
        if not 0 <= i < self.code.k:
            raise ConfigurationError(
                f"data block index must be in [0, {self.code.k}), got {i}"
            )
        msg_before = self.cluster.network.stats.messages
        ni = self.layout.node_of_block(i)

        for level in self.quorum.shape.levels:
            counter = 0
            best = -1
            needed = self.quorum.r(level)
            for node_id in self.placement.level_nodes(i, level):
                try:
                    if node_id == ni:
                        v = self.cluster.rpc(node_id, "data_version", self.data_key(i))
                        if v < 0:
                            continue  # INVALID: no record (wiped disk)
                        best = max(best, v)
                    else:
                        vv = self.cluster.rpc(
                            node_id, "parity_versions", self.parity_key()
                        )
                        if vv is None:
                            continue  # INVALID
                        best = max(best, int(vv[i]))
                    counter += 1
                except NodeUnavailableError:
                    continue
                if counter == needed:
                    break
            if counter < needed:
                continue  # try the next level (Alg. 2 outer loop)

            # Check complete: ``best`` is the latest committed version.
            return self._retrieve(i, best, level, msg_before)

        return ReadResult(
            success=False,
            messages=self.cluster.network.stats.messages - msg_before,
            reason="no level reached its version-check quorum",
        )

    def _retrieve(
        self, i: int, target: int, check_level: int, msg_before: int
    ) -> ReadResult:
        """Cases 1-2 of Algorithm 2 once the latest version is known."""
        ni = self.layout.node_of_block(i)
        # Case 1: N_i holds the latest version -> direct read.
        try:
            v = self.cluster.rpc(ni, "data_version", self.data_key(i))
            if v == target:
                payload, _ = self.cluster.rpc(ni, "read_data", self.data_key(i))
                return ReadResult(
                    success=True,
                    value=payload,
                    version=target,
                    case=ReadCase.DIRECT,
                    check_level=check_level,
                    messages=self.cluster.network.stats.messages - msg_before,
                )
        except (NodeUnavailableError, KeyError):
            pass
        # Case 2: decode from k version-consistent fragments.
        payload = self._decode(i, target)
        if payload is None:
            return ReadResult(
                success=False,
                version=target,
                check_level=check_level,
                messages=self.cluster.network.stats.messages - msg_before,
                reason="decode failed: fewer than k version-consistent fragments",
            )
        if self.read_repair:
            self._write_back(i, payload, target)
        return ReadResult(
            success=True,
            value=payload,
            version=target,
            case=ReadCase.DECODE,
            check_level=check_level,
            messages=self.cluster.network.stats.messages - msg_before,
        )

    def _write_back(self, i: int, payload: np.ndarray, version: int) -> None:
        """Read repair: freshen a reachable stale N_i with the decoded
        value. ``put_data`` is version-exact (no bump), so the repair is
        idempotent and never races ahead of real writes."""
        ni = self.layout.node_of_block(i)
        try:
            current = self.cluster.rpc(ni, "data_version", self.data_key(i))
            if current < version:
                self.cluster.rpc(ni, "put_data", self.data_key(i), payload, version)
                self.read_repairs_performed += 1
        except (NodeUnavailableError, KeyError):
            return

    def _decode(self, i: int, target: int) -> np.ndarray | None:
        """Reconstruct b_i at version ``target`` from k consistent rows.

        Fragments are usable only under a consistent snapshot: parity rows
        must share the *same* full version vector vv with vv[i] == target,
        and a data row m is compatible with that vector iff its version
        equals vv[m]. Any k such rows are solvable (MDS property).
        """
        # Gather parity fragments fresh for block i, grouped by full vector.
        groups: dict[tuple, list[tuple[int, np.ndarray]]] = {}
        for node_id in self.layout.parity_nodes:
            try:
                payload, vv = self.cluster.rpc(node_id, "read_parity", self.parity_key())
            except (NodeUnavailableError, KeyError):
                continue
            if int(vv[i]) != target:
                continue
            groups.setdefault(tuple(int(x) for x in vv), []).append(
                (self.layout.block_of_node(node_id), payload)
            )
        if not groups:
            return None
        # Gather data fragments (other blocks) once.
        data_rows: dict[int, tuple[np.ndarray, int]] = {}
        for m in range(self.code.k):
            if m == i:
                continue  # N_i is stale or down here (Case 2)
            node_id = self.layout.node_of_block(m)
            try:
                payload, v = self.cluster.rpc(node_id, "read_data", self.data_key(m))
            except (NodeUnavailableError, KeyError):
                continue
            data_rows[m] = (payload, v)
        # Try snapshot groups, largest first.
        for vv, parity_rows in sorted(groups.items(), key=lambda kv: -len(kv[1])):
            rows = list(parity_rows)
            for m, (payload, v) in data_rows.items():
                if v == vv[m]:
                    rows.append((m, payload))
            if len(rows) >= self.code.k:
                # reconstruct_block rides the decode-plan cache: trials and
                # stripes that see the same survivor set skip Gauss-Jordan.
                indices = [idx for idx, _ in rows[: self.code.k]]
                frags = np.stack([buf for _, buf in rows[: self.code.k]])
                return self.code.reconstruct_block(i, indices, frags)
        return None

    # ------------------------------------------------------------------ #
    # introspection helpers used by repair and experiments
    # ------------------------------------------------------------------ #

    def latest_version(self, i: int) -> int | None:
        """Run only the version check of Algorithm 2; None if no quorum."""
        ni = self.layout.node_of_block(i)
        for level in self.quorum.shape.levels:
            counter = 0
            best = -1
            for node_id in self.placement.level_nodes(i, level):
                try:
                    if node_id == ni:
                        v = self.cluster.rpc(node_id, "data_version", self.data_key(i))
                        if v < 0:
                            continue
                        best = max(best, v)
                    else:
                        vv = self.cluster.rpc(node_id, "parity_versions", self.parity_key())
                        if vv is None:
                            continue
                        best = max(best, int(vv[i]))
                    counter += 1
                except NodeUnavailableError:
                    continue
                if counter == self.quorum.r(level):
                    return best
        return None
