"""TRAP-ERC: the paper's trapezoid quorum protocol over an (n, k) MDS code.

Faithful executable implementation of Algorithms 1 (write) and 2 (read):

* data block b_i lives on node N_i with a scalar version;
* every parity node N_j holds one parity record per stripe: the payload
  b_j = sum_i alpha_ji b_i and the contribution-version column V[:, j-k];
* a write of block i reads the old value (Alg. 1 line 15), then walks the
  trapezoid levels 0..h writing x to N_i and shipping
  ``alpha_ji * (x - chunk)`` deltas to the parity nodes, each guarded by
  the V version check (line 26); the write fails as soon as a level
  acknowledges fewer than w_l nodes (lines 35-37);
* a read of block i walks the levels polling versions until some level
  yields r_l = s_l - w_l + 1 valid answers (lines 11-30); the largest
  version seen among them is the latest; then Case 1 reads N_i directly
  or Case 2 decodes from k version-consistent fragments (lines 30-36).

The engine expresses each operation as explicit fan-out rounds
(version-query round, payload round, write round, write-back round) via
the :mod:`repro.runtime` coordinator abstraction: plans run unmodified on
the legacy instant path (bit-identical results and message counts) or on
the event-driven path where each round is a real message fan-out that
completes with the q-th fastest healthy response (see docs/RUNTIME.md).

Beyond the paper, decode handles *per-contribution* staleness correctly:
a parity that missed an update to block m but not to block i is usable
for block i only together with rows agreeing on m's version, so fragments
are grouped by their full version vectors before solving (see DESIGN.md
"Decode freshness rule").
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.placement import TrapezoidPlacement
from repro.core.results import ReadCase, ReadResult, WriteResult
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import (
    ConfigurationError,
    NodeUnavailableError,
    StaleNodeError,
)
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.runtime.coordinator import Coordinator, InstantCoordinator
from repro.runtime.rounds import (
    PAYLOAD_ROUND,
    VERSION_ROUND,
    WRITE_ROUND,
    WRITEBACK_ROUND,
    Request,
    Response,
    Round,
)
from repro.runtime.verify import block_digest

__all__ = ["TrapErcProtocol"]


class TrapErcProtocol:
    """Coordinator-side engine of the TRAP-ERC protocol for one stripe.

    Parameters
    ----------
    cluster:
        The storage cluster; must contain every node of ``layout``.
    code:
        The (n, k) MDS code.
    quorum:
        Trapezoid quorum specification with n - k + 1 positions.
    layout:
        Block -> node placement; defaults to nodes 0..n-1 in order.
    stripe_id:
        Identifier namespacing this stripe's records on the nodes.
    read_repair:
        When True, a decode-path read (Case 2) writes the reconstructed
        value back to a reachable stale N_i, restoring the cheap direct
        path for future reads. Classic quorum-system read repair — an
        extension beyond the paper, off by default for fidelity.
    coordinator:
        Execution path for the operation plans. Defaults to the instant
        path (:class:`~repro.runtime.coordinator.InstantCoordinator` on
        ``cluster``); inject an
        :class:`~repro.runtime.event.EventCoordinator` to run the same
        plans event-driven.
    verifier:
        Optional :class:`~repro.runtime.verify.BlockVerifier` enabling
        the Byzantine-tolerant verified path: writes commit a
        (version, digest) record to the separate metadata quorum, reads
        take the version authority from that record and cross-checksum
        every payload reply against it (payload nodes need not be
        trusted). ``None`` (the default) keeps the paper's fail-stop
        protocol byte for byte.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster import Cluster
    >>> from repro.erasure import MDSCode
    >>> from repro.quorum import TrapezoidQuorum, default_shape_for_nbnode
    >>> code = MDSCode(6, 4)
    >>> quorum = TrapezoidQuorum.uniform(default_shape_for_nbnode(3))
    >>> proto = TrapErcProtocol(Cluster(6), code, quorum)
    >>> proto.initialize(np.zeros((4, 8), dtype=np.uint8))
    >>> bool(proto.write_block(1, np.ones(8, dtype=np.uint8)))
    True
    >>> r = proto.read_block(1)
    >>> bool(r.success), int(r.version)
    (True, 1)
    """

    def __init__(
        self,
        cluster: Cluster,
        code: MDSCode,
        quorum: TrapezoidQuorum,
        layout: StripeLayout | None = None,
        stripe_id: str = "stripe-0",
        read_repair: bool = False,
        coordinator: Coordinator | None = None,
        verifier=None,
    ) -> None:
        self.cluster = cluster
        self.code = code
        self.layout = layout if layout is not None else StripeLayout(code.n, code.k)
        if (self.layout.n, self.layout.k) != (code.n, code.k):
            raise ConfigurationError(
                f"layout is ({self.layout.n}, {self.layout.k}) but code is "
                f"({code.n}, {code.k})"
            )
        for node_id in self.layout.node_ids:
            cluster.node(node_id)  # validates existence
        self.placement = TrapezoidPlacement(self.layout, quorum)
        self.quorum = quorum
        self.stripe_id = stripe_id
        self.read_repair = bool(read_repair)
        self.read_repairs_performed = 0
        self.coordinator = (
            coordinator if coordinator is not None else InstantCoordinator(cluster)
        )
        self.verifier = verifier
        #: cap on decode-then-verify attempts per read (k-subset search
        #: over candidate rows; 32 covers C(8, 6) = 28, i.e. exhaustive
        #: for the paper's default (9, 6) geometry)
        self.max_decode_attempts = 32

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #

    def data_key(self, i: int):
        """Storage key of data block i on node N_i."""
        return ("erc-data", self.stripe_id, i)

    def parity_key(self):
        """Storage key of this stripe's parity record on each parity node."""
        return ("erc-parity", self.stripe_id)

    # ------------------------------------------------------------------ #
    # bootstrap
    # ------------------------------------------------------------------ #

    def initialize(self, data: np.ndarray) -> None:
        """Load the initial stripe at version 0 on every node.

        Bootstrap path (not a quorum write): requires all n nodes up, like
        a volume-creation step in a real deployment.
        """
        self.load_stripe(self.code.encode(data))

    def load_stripe(self, stripe: np.ndarray) -> None:
        """Load an already-encoded (n, L) stripe at version 0.

        Lets callers that encode many stripes in one batch (``MDSCode.
        encode_batch``) or reload a cached stripe (Monte-Carlo trial
        resets) skip the per-call encode entirely.
        """
        stripe = np.asarray(stripe, dtype=self.code.field.dtype)
        if stripe.ndim != 2 or stripe.shape[0] != self.code.n:
            raise ConfigurationError(
                f"stripe must have shape (n={self.code.n}, L), got {stripe.shape}"
            )
        zero_versions = np.zeros(self.code.k, dtype=np.int64)
        for i in range(self.code.k):
            node_id = self.layout.node_of_block(i)
            self.cluster.rpc(node_id, "put_data", self.data_key(i), stripe[i], 0)
        for j in range(self.code.k, self.code.n):
            node_id = self.layout.node_of_block(j)
            self.cluster.rpc(
                node_id, "put_parity", self.parity_key(), stripe[j], zero_versions
            )
        if self.verifier is not None:
            for i in range(self.code.k):
                self.verifier.bootstrap(i, stripe[i])

    # ------------------------------------------------------------------ #
    # shared round builders
    # ------------------------------------------------------------------ #

    def _check_block(self, i: int) -> None:
        if not 0 <= i < self.code.k:
            raise ConfigurationError(
                f"data block index must be in [0, {self.code.k}), got {i}"
            )

    def _version_requests(self, i: int, level: int) -> list[Request]:
        """The ``u.version(id)`` polls of one trapezoid level (Alg. 2)."""
        ni = self.layout.node_of_block(i)
        requests = []
        for node_id in self.placement.level_nodes(i, level):
            if node_id == ni:
                requests.append(
                    Request(node_id, "data_version", (self.data_key(i),), tag="data")
                )
            else:
                requests.append(
                    Request(
                        node_id, "parity_versions", (self.parity_key(),), tag="parity"
                    )
                )
        return requests

    @staticmethod
    def _version_valid(response: Response) -> bool:
        """INVALID records (wiped disks) answer but don't count (Alg. 2)."""
        if not response.ok:
            return False
        if response.request.tag == "data":
            return response.value >= 0
        return response.value is not None

    def _best_version(self, i: int, accepted: list[Response]) -> int:
        best = -1
        for response in accepted:
            if response.request.tag == "data":
                best = max(best, int(response.value))
            else:
                best = max(best, int(response.value[i]))
        return best

    # ------------------------------------------------------------------ #
    # Algorithm 1: write
    # ------------------------------------------------------------------ #

    def write_block(self, i: int, value: np.ndarray) -> WriteResult:
        """Write ``value`` into data block i (Algorithm 1)."""
        return self.coordinator.execute(self.write_plan(i, value))

    def write_plan(self, i: int, value: np.ndarray):
        """Algorithm 1 as a round plan (see module docstring)."""
        self._check_block(i)
        value = np.asarray(value, dtype=self.code.field.dtype)

        # Line 15: [chunk, version] <- ReadBlock(i).
        pre = yield from self.read_plan(i)
        if not pre.success:
            return WriteResult(
                success=False,
                messages=pre.messages,
                reason=f"read-before-write failed: {pre.reason}",
            )
        chunk, version = pre.value, pre.version
        if value.shape != chunk.shape:
            raise ConfigurationError(
                f"value shape {value.shape} != block shape {chunk.shape}"
            )
        delta = self.code.delta(chunk, value)
        new_version = version + 1
        ni = self.layout.node_of_block(i)
        messages = pre.messages

        acks: list[int] = []
        for level in self.quorum.shape.levels:
            requests = []
            for node_id in self.placement.level_nodes(i, level):
                if node_id == ni:
                    # Line 20: write x in node N_i.
                    requests.append(
                        Request(
                            node_id,
                            "write_data",
                            (self.data_key(i), value, new_version),
                            catches=(NodeUnavailableError, StaleNodeError),
                        )
                    )
                else:
                    # Lines 25-31: guarded parity delta.
                    j = self.layout.block_of_node(node_id)
                    buf = self.code.parity_delta(j, i, delta)
                    requests.append(
                        Request(
                            node_id,
                            "apply_delta",
                            (self.parity_key(), i, buf),
                            {"expected_version": version, "new_version": new_version},
                            catches=(NodeUnavailableError, StaleNodeError),
                        )
                    )
            outcome = yield Round(
                requests,
                need=self.quorum.w[level],
                send_all=True,
                kind=WRITE_ROUND,
            )
            messages += outcome.messages
            counter = len(outcome.accepted)
            acks.append(counter)
            if counter < self.quorum.w[level]:
                # Lines 35-37: quorum missed at this level -> FAIL.
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=acks,
                    failed_level=level,
                    messages=messages,
                    reason=(
                        f"level {level} acknowledged {counter} < w_l = "
                        f"{self.quorum.w[level]}"
                    ),
                )
        if self.verifier is not None:
            # Commit point of the verified path: the write is visible to
            # verified readers only once (version, digest) reaches the
            # metadata quorum.
            meta_outcome = yield self.verifier.write_round(
                i, new_version, block_digest(value)
            )
            messages += meta_outcome.messages
            if not meta_outcome.satisfied:
                self.verifier.metadata_failures += 1
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=acks,
                    messages=messages,
                    reason="metadata quorum write failed",
                )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=acks,
            messages=messages,
        )

    # ------------------------------------------------------------------ #
    # Algorithm 2: read
    # ------------------------------------------------------------------ #

    def read_block(self, i: int) -> ReadResult:
        """Read data block i (Algorithm 2)."""
        return self.coordinator.execute(self.read_plan(i))

    def read_plan(self, i: int):
        """Algorithm 2 as a round plan.

        With a verifier, the metadata quorum is consulted first and
        becomes the *version authority*: the level polls still locate a
        responsive check quorum (and keep the fail-stop round structure,
        so a rate-0 Byzantine config adds only the metadata round), but
        the retrieved version/digest pair comes from the trusted tier —
        a payload node understating or overstating its version cannot
        redirect the read.
        """
        self._check_block(i)
        messages = 0
        meta: tuple[int, bytes] | None = None
        if self.verifier is not None:
            meta_outcome = yield self.verifier.read_round(i)
            messages += meta_outcome.messages
            meta = self.verifier.resolve(meta_outcome)
            if meta is None:
                return ReadResult(
                    success=False,
                    messages=messages,
                    reason="metadata quorum unreachable",
                )
        for level in self.quorum.shape.levels:
            outcome = yield Round(
                self._version_requests(i, level),
                need=self.quorum.r(level),
                accept=self._version_valid,
                kind=VERSION_ROUND,
            )
            messages += outcome.messages
            if not outcome.satisfied:
                continue  # try the next level (Alg. 2 outer loop)

            # Check complete: the max accepted version is the latest —
            # unless the metadata record overrules the untrusted claims.
            if meta is not None:
                target, digest = meta
            else:
                target, digest = self._best_version(i, outcome.accepted), None
            result = yield from self._retrieve_plan(i, target, level, digest)
            result.messages += messages
            return result

        return ReadResult(
            success=False,
            messages=messages,
            reason="no level reached its version-check quorum",
        )

    def _retrieve_plan(
        self, i: int, target: int, check_level: int, digest: bytes | None = None
    ):
        """Cases 1-2 of Algorithm 2 once the latest version is known.

        With a ``digest``, Case 1's payload round verifies the reply
        through the accept predicate — a corrupted reply is rejected
        (counted on the verifier) and the read widens into Case 2, the
        substitute-fragment path.
        """
        ni = self.layout.node_of_block(i)
        messages = 0
        # Case 1: N_i holds the latest version -> direct read.
        outcome = yield Round(
            [
                Request(
                    ni,
                    "data_version",
                    (self.data_key(i),),
                    catches=(NodeUnavailableError, KeyError),
                )
            ],
            kind=VERSION_ROUND,
        )
        messages += outcome.messages
        if outcome.accepted and outcome.accepted[0].value == target:
            payload_accept = (
                None
                if digest is None
                else self.verifier.payload_accept(target, digest)
            )
            payload_outcome = yield Round(
                [
                    Request(
                        ni,
                        "read_data",
                        (self.data_key(i),),
                        catches=(NodeUnavailableError, KeyError),
                    )
                ],
                accept=payload_accept,
                kind=PAYLOAD_ROUND,
            )
            messages += payload_outcome.messages
            if payload_outcome.accepted:
                payload, _ = payload_outcome.accepted[0].value
                return ReadResult(
                    success=True,
                    value=payload,
                    version=target,
                    case=ReadCase.DIRECT,
                    check_level=check_level,
                    messages=messages,
                )
        # Case 2: decode from k version-consistent fragments.
        payload, decode_messages = yield from self._decode_plan(i, target, digest)
        messages += decode_messages
        if payload is None:
            return ReadResult(
                success=False,
                version=target,
                check_level=check_level,
                messages=messages,
                reason="decode failed: fewer than k version-consistent fragments",
            )
        if self.read_repair:
            messages += yield from self._write_back_plan(i, payload, target)
        return ReadResult(
            success=True,
            value=payload,
            version=target,
            case=ReadCase.DECODE,
            check_level=check_level,
            messages=messages,
        )

    def _write_back_plan(self, i: int, payload: np.ndarray, version: int):
        """Read repair: freshen a reachable stale N_i with the decoded
        value. ``put_data`` is version-exact (no bump), so the repair is
        idempotent and never races ahead of real writes."""
        ni = self.layout.node_of_block(i)
        outcome = yield Round(
            [
                Request(
                    ni,
                    "data_version",
                    (self.data_key(i),),
                    catches=(NodeUnavailableError, KeyError),
                )
            ],
            kind=VERSION_ROUND,
        )
        messages = outcome.messages
        if not outcome.accepted or outcome.accepted[0].value >= version:
            return messages
        write_outcome = yield Round(
            [
                Request(
                    ni,
                    "put_data",
                    (self.data_key(i), payload, version),
                    catches=(NodeUnavailableError, KeyError),
                )
            ],
            kind=WRITEBACK_ROUND,
        )
        messages += write_outcome.messages
        if write_outcome.accepted:
            self.read_repairs_performed += 1
        return messages

    def _decode_plan(self, i: int, target: int, digest: bytes | None = None):
        """Reconstruct b_i at version ``target`` from k consistent rows.

        Fragments are usable only under a consistent snapshot: parity rows
        must share the *same* full version vector vv with vv[i] == target,
        and a data row m is compatible with that vector iff its version
        equals vv[m]. Any k such rows are solvable (MDS property).
        Returns ``(payload | None, messages)``.

        With a ``digest`` this becomes decode-then-verify: fragment
        content cannot be checked individually (only the data block has
        a metadata record), so candidate k-subsets are decoded in
        deterministic order and the result's cross-checksum is compared
        against the metadata record; garbage fragments surface as digest
        mismatches and the search moves to the next subset, up to
        ``max_decode_attempts`` decodes.
        """
        # Gather parity fragments fresh for block i, grouped by full vector.
        parity_requests = [
            Request(
                node_id,
                "read_parity",
                (self.parity_key(),),
                tag=self.layout.block_of_node(node_id),
                catches=(NodeUnavailableError, KeyError),
            )
            for node_id in self.layout.parity_nodes
        ]
        outcome = yield Round(parity_requests, kind=PAYLOAD_ROUND)
        messages = outcome.messages
        groups: dict[tuple, list[tuple[int, np.ndarray]]] = {}
        for response in outcome.accepted:
            payload, vv = response.value
            if int(vv[i]) != target:
                continue
            groups.setdefault(tuple(int(x) for x in vv), []).append(
                (response.request.tag, payload)
            )
        if not groups:
            return None, messages
        # Gather data fragments (other blocks) once.
        data_requests = [
            Request(
                self.layout.node_of_block(m),
                "read_data",
                (self.data_key(m),),
                tag=m,
                catches=(NodeUnavailableError, KeyError),
            )
            for m in range(self.code.k)
            if m != i  # N_i is stale or down here (Case 2)
        ]
        data_outcome = yield Round(data_requests, kind=PAYLOAD_ROUND)
        messages += data_outcome.messages
        data_rows: dict[int, tuple[np.ndarray, int]] = {
            response.request.tag: (response.value[0], response.value[1])
            for response in data_outcome.accepted
        }
        # Try snapshot groups, largest first.
        attempts = 0
        for vv, parity_rows in sorted(groups.items(), key=lambda kv: -len(kv[1])):
            rows = list(parity_rows)
            for m, (payload, v) in data_rows.items():
                if v == vv[m]:
                    rows.append((m, payload))
            if len(rows) < self.code.k:
                continue
            if digest is None:
                # reconstruct_block rides the decode-plan cache: trials and
                # stripes that see the same survivor set skip Gauss-Jordan.
                indices = [idx for idx, _ in rows[: self.code.k]]
                frags = np.stack([buf for _, buf in rows[: self.code.k]])
                return self.code.reconstruct_block(i, indices, frags), messages
            # Decode-then-verify: search k-subsets for one whose decode
            # matches the trusted cross-checksum. The first combination
            # is rows[:k], so a clean snapshot costs exactly one decode —
            # identical work to the fail-stop path.
            for combo in itertools.combinations(range(len(rows)), self.code.k):
                attempts += 1
                if attempts > self.max_decode_attempts:
                    return None, messages
                indices = [rows[c][0] for c in combo]
                frags = np.stack([rows[c][1] for c in combo])
                decoded = self.code.reconstruct_block(i, indices, frags)
                if self.verifier.check_decoded(decoded, digest):
                    return decoded, messages
        return None, messages

    # ------------------------------------------------------------------ #
    # introspection helpers used by repair and experiments
    # ------------------------------------------------------------------ #

    def latest_version(self, i: int) -> int | None:
        """Run only the version check of Algorithm 2; None if no quorum."""
        return self.coordinator.execute(self.latest_version_plan(i))

    def latest_version_plan(self, i: int):
        for level in self.quorum.shape.levels:
            outcome = yield Round(
                self._version_requests(i, level),
                need=self.quorum.r(level),
                accept=self._version_valid,
                kind=VERSION_ROUND,
            )
            if outcome.satisfied:
                return self._best_version(i, outcome.accepted)
        return None
