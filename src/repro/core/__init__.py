"""Protocol engines (DESIGN.md S6): the paper's primary contribution.

* :class:`TrapErcProtocol` — Algorithms 1-2 over an (n, k) MDS code,
* :class:`TrapFrProtocol` — the trapezoid protocol over full replication,
* :class:`RepairService` — anti-entropy extension for stale/wiped nodes,
* :class:`RowaProtocol` / :class:`MajorityProtocol` — classical
  full-replication engines for end-to-end comparisons.
"""

from repro.core.lease import Lease, LeaseManager
from repro.core.placement import TrapezoidPlacement
from repro.core.repair import RepairService
from repro.core.replication import MajorityProtocol, RowaProtocol
from repro.core.results import ReadCase, ReadResult, WriteResult
from repro.core.trap_erc import TrapErcProtocol
from repro.core.trap_fr import TrapFrProtocol

__all__ = [
    "Lease",
    "LeaseManager",
    "TrapezoidPlacement",
    "TrapErcProtocol",
    "TrapFrProtocol",
    "RepairService",
    "RowaProtocol",
    "MajorityProtocol",
    "ReadCase",
    "ReadResult",
    "WriteResult",
]
