"""Repair / anti-entropy service for TRAP-ERC (extension beyond the paper).

The paper's protocol tolerates transient failures, but a node that missed
updates while down becomes *stale*: the version-matrix guard (Algorithm 1
line 26) makes it reject all further deltas for the contributions it
missed, silently shrinking the effective quorum pool. The paper leaves
recovery unspecified ("the blocks it owned have to be reconstructed").

:class:`RepairService` fills that gap with exact repair:

* a stale or wiped *data* node is rebuilt from a quorum read of its block;
* a stale or wiped *parity* node is rebuilt by reading all k data blocks
  through the protocol and re-encoding its row, stamping the version
  vector with the versions those reads returned.

The history-model experiments (EXPERIMENTS.md) quantify how much read
availability this recovers.

Verified anti-entropy
---------------------

Without cross-checks, repair is a laundering channel: a quorum read that
was fooled by corrupt replicas gets written back onto a *healthy* node
with a fresh version stamp. When constructed with a
:class:`~repro.runtime.verify.BlockVerifier`, the service checks every
candidate block against the metadata tier's ``(version, digest)`` record
before any ``put_data`` / ``put_parity``, refuses to propagate state it
cannot verify, and counts the refusals (``repairs_blocked``) and the
individually rejected blocks (``records_rejected``).
"""

from __future__ import annotations

import numpy as np

from repro.core.trap_erc import TrapErcProtocol
from repro.errors import NodeUnavailableError
from repro.runtime.verify import BlockVerifier, block_digest

__all__ = ["RepairService"]


class RepairService:
    """Anti-entropy companion of one :class:`TrapErcProtocol` stripe."""

    def __init__(
        self, protocol: TrapErcProtocol, verifier: BlockVerifier | None = None
    ) -> None:
        self.protocol = protocol
        self.verifier = verifier
        self.repairs_performed = 0
        self.repairs_blocked = 0
        self.records_rejected = 0

    # ------------------------------------------------------------------ #

    def _verify_block(self, i: int, payload: np.ndarray, version: int) -> bool:
        """True when block ``i`` matches the metadata record (or no verifier)."""
        if self.verifier is None:
            return True
        record = self.verifier.lookup(i)
        if record is None:
            self.records_rejected += 1
            return False
        meta_version, meta_digest = record
        if int(version) != meta_version or block_digest(payload) != meta_digest:
            self.records_rejected += 1
            return False
        return True

    # ------------------------------------------------------------------ #

    def _read_all_blocks(self) -> tuple[np.ndarray, list[int]] | None:
        """Latest (data, versions) via protocol reads; None if any fails."""
        proto = self.protocol
        blocks = []
        versions = []
        for i in range(proto.code.k):
            result = proto.read_block(i)
            if not result.success:
                return None
            blocks.append(result.value)
            versions.append(result.version)
        return np.stack(blocks), versions

    def repair_data_node(self, i: int) -> bool:
        """Rebuild data block i's record on N_i from a quorum read."""
        proto = self.protocol
        node_id = proto.layout.node_of_block(i)
        result = proto.read_block(i)
        if not result.success:
            return False
        if not self._verify_block(i, result.value, result.version):
            self.repairs_blocked += 1
            return False
        try:
            proto.cluster.rpc(
                node_id, "put_data", proto.data_key(i), result.value, result.version
            )
        except NodeUnavailableError:
            return False
        self.repairs_performed += 1
        return True

    def repair_parity_node(self, node_id: int) -> bool:
        """Rebuild the parity record on ``node_id`` from quorum reads."""
        proto = self.protocol
        j = proto.layout.block_of_node(node_id)
        if j < proto.code.k:
            raise ValueError(f"node {node_id} holds data block {j}, not parity")
        snapshot = self._read_all_blocks()
        if snapshot is None:
            return False
        data, versions = snapshot
        ok = True
        for i in range(proto.code.k):
            if not self._verify_block(i, data[i], versions[i]):
                ok = False
        if not ok:
            self.repairs_blocked += 1
            return False
        payload = proto.code.encode_block(j, data)
        try:
            proto.cluster.rpc(
                node_id,
                "put_parity",
                proto.parity_key(),
                payload,
                np.asarray(versions, dtype=np.int64),
            )
        except NodeUnavailableError:
            return False
        self.repairs_performed += 1
        return True

    # ------------------------------------------------------------------ #

    def is_parity_stale(self, node_id: int) -> bool | None:
        """True if the node's version vector lags the committed versions.

        None when the node is unreachable or the committed versions cannot
        be determined (no quorum).
        """
        proto = self.protocol
        try:
            vv = proto.cluster.rpc(node_id, "parity_versions", proto.parity_key())
        except NodeUnavailableError:
            return None
        if vv is None:
            return True  # wiped: trivially stale
        for i in range(proto.code.k):
            latest = proto.latest_version(i)
            if latest is None:
                return None
            if int(vv[i]) < latest:
                return True
        return False

    def sync_parities(self) -> int:
        """Repair every reachable stale parity node; returns repair count."""
        proto = self.protocol
        repaired = 0
        for node_id in proto.layout.parity_nodes:
            stale = self.is_parity_stale(node_id)
            if stale:
                if self.repair_parity_node(node_id):
                    repaired += 1
        return repaired

    def sync_data(self) -> int:
        """Repair every reachable stale/wiped data node; returns count."""
        proto = self.protocol
        repaired = 0
        for i in range(proto.code.k):
            node_id = proto.layout.node_of_block(i)
            latest = proto.latest_version(i)
            if latest is None:
                continue
            try:
                v = proto.cluster.rpc(node_id, "data_version", proto.data_key(i))
            except NodeUnavailableError:
                continue
            if v < latest:
                if self.repair_data_node(i):
                    repaired += 1
        return repaired

    def sync_all(self) -> int:
        """Full anti-entropy pass (data first, then parity)."""
        return self.sync_data() + self.sync_parities()

    def counters(self) -> dict[str, int]:
        """Repair counters for scenario reporting."""
        return {
            "repairs_performed": self.repairs_performed,
            "repairs_blocked": self.repairs_blocked,
            "records_rejected": self.records_rejected,
        }
