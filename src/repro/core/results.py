"""Operation result types returned by the protocol engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["ReadCase", "WriteResult", "ReadResult"]


class ReadCase(str, Enum):
    """How a successful read obtained the block (Algorithm 2)."""

    DIRECT = "direct"  # Case 1: read from N_i
    DECODE = "decode"  # Case 2: reconstructed from k fragments


@dataclass
class WriteResult:
    """Outcome of Algorithm 1.

    Attributes
    ----------
    success:
        True iff every level acknowledged at least w_l writes.
    version:
        The version number assigned to the write (meaningful on success).
    acks_per_level:
        Successful per-level acknowledgement counts (up to the failing
        level, where the protocol stops).
    failed_level:
        The level that missed its quorum, or None.
    messages:
        RPC messages consumed by the operation (request+response pairs
        counted as 2), including the read-before-write of line 15.
    latency:
        Virtual seconds the operation took: the sum over its fan-out
        rounds of the max-of-parallel round delay (instant path), or the
        actual virtual time between submit and completion (event path).
    reason:
        Human-readable failure cause.
    """

    success: bool
    version: int = -1
    acks_per_level: list[int] = field(default_factory=list)
    failed_level: int | None = None
    messages: int = 0
    latency: float = 0.0
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.success


@dataclass
class ReadResult:
    """Outcome of Algorithm 2.

    Attributes
    ----------
    success:
        True iff a version-check quorum was found and the block was
        retrieved (directly or by decoding).
    value:
        The block payload (None on failure).
    version:
        The latest version determined by the check (-1 on failure).
    case:
        DIRECT or DECODE (None on failure).
    check_level:
        The level where the version check completed, or None.
    messages:
        RPC messages consumed.
    latency:
        Virtual seconds the operation took (see :class:`WriteResult`).
    reason:
        Human-readable failure cause.
    """

    success: bool
    value: np.ndarray | None = None
    version: int = -1
    case: ReadCase | None = None
    check_level: int | None = None
    messages: int = 0
    latency: float = 0.0
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.success
