"""Classical full-replication protocol engines: ROWA and Majority.

Protocol-level counterparts of the analysis baselines, for end-to-end
comparisons against TRAP-ERC/TRAP-FR on the same cluster substrate: same
versioned nodes, same network accounting, same failure injection.

Like the trapezoid engines, reads and writes are expressed as fan-out
round plans over :mod:`repro.runtime`, so both baselines run unmodified
on the instant and the event-driven execution paths.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.results import ReadCase, ReadResult, WriteResult
from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError
from repro.runtime.coordinator import Coordinator, InstantCoordinator
from repro.runtime.rounds import (
    PAYLOAD_ROUND,
    VERSION_ROUND,
    WRITE_ROUND,
    Request,
    Round,
)
from repro.runtime.verify import block_digest

__all__ = ["RowaProtocol", "MajorityProtocol"]


class _ReplicationBase:
    """Shared replica bookkeeping for flat replication protocols."""

    def __init__(
        self,
        cluster: Cluster,
        node_ids,
        stripe_id: str,
        coordinator: Coordinator | None = None,
        verifier=None,
    ) -> None:
        self.cluster = cluster
        self.node_ids = [int(i) for i in node_ids]
        if len(self.node_ids) < 1:
            raise ConfigurationError("need at least one replica node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigurationError("replica node ids must be distinct")
        for nid in self.node_ids:
            cluster.node(nid)
        self.stripe_id = stripe_id
        self.coordinator = (
            coordinator if coordinator is not None else InstantCoordinator(cluster)
        )
        self.verifier = verifier

    def key(self, block: int):
        return (self._kind, self.stripe_id, block)

    def initialize(self, blocks: np.ndarray) -> None:
        """Load version-0 replicas of each row of ``blocks`` everywhere."""
        blocks = np.asarray(blocks)
        if blocks.ndim != 2:
            raise ConfigurationError("blocks must be (num_blocks, L)")
        for b in range(blocks.shape[0]):
            for nid in self.node_ids:
                self.cluster.rpc(nid, "put_data", self.key(b), blocks[b], 0)
            if self.verifier is not None:
                self.verifier.bootstrap(b, blocks[b])

    def _version_round(self, block: int) -> Round:
        """Gather-all version discovery across the replica set."""
        return Round(
            [
                Request(nid, "data_version", (self.key(block),))
                for nid in self.node_ids
            ],
            kind=VERSION_ROUND,
        )

    def _write_requests(self, block: int, value: np.ndarray, version: int):
        return [
            Request(
                nid,
                "write_data",
                (self.key(block), value, version),
                catches=(NodeUnavailableError, StaleNodeError),
            )
            for nid in self.node_ids
        ]

    def read_block(self, block: int) -> ReadResult:
        return self.coordinator.execute(self.read_plan(block))

    def write_block(self, block: int, value: np.ndarray) -> WriteResult:
        return self.coordinator.execute(self.write_plan(block, value))

    # -- verified-path helpers (no-ops when ``verifier`` is None) -------- #

    def _meta_lookup_plan(self, block: int):
        """Yield the metadata read round; returns ``(record | None, msgs)``."""
        outcome = yield self.verifier.read_round(block)
        return self.verifier.resolve(outcome), outcome.messages

    def _meta_commit_plan(self, block: int, version: int, value: np.ndarray):
        """Yield the commit round; returns ``(satisfied, messages)``."""
        outcome = yield self.verifier.write_round(
            block, version, block_digest(value)
        )
        if not outcome.satisfied:
            self.verifier.metadata_failures += 1
        return outcome.satisfied, outcome.messages


class RowaProtocol(_ReplicationBase):
    """Read One, Write All over n replicas."""

    _kind = "rowa"

    def write_plan(self, block: int, value: np.ndarray):
        # Learn the current version from every replica: Write-All needs
        # them all anyway, and a stale first answer would produce a
        # version that fresh replicas reject.
        outcome = yield self._version_round(block)
        messages = outcome.messages
        if len(outcome.accepted) < len(self.node_ids):
            return WriteResult(
                success=False,
                messages=messages,
                reason="replica unreachable during version lookup (ROWA requires all)",
            )
        new_version = max(r.value for r in outcome.accepted) + 1
        if self.verifier is not None:
            record, meta_messages = yield from self._meta_lookup_plan(block)
            messages += meta_messages
            if record is None:
                return WriteResult(
                    success=False,
                    messages=messages,
                    reason="metadata quorum unreachable",
                )
            new_version = max(new_version, record[0] + 1)
        # Write-All: any miss fails the operation.
        write_outcome = yield Round(
            self._write_requests(block, value, new_version),
            need=len(self.node_ids),
            send_all=True,
            abort_on_reject=True,
            kind=WRITE_ROUND,
        )
        messages += write_outcome.messages
        acks = len(write_outcome.accepted)
        if not write_outcome.satisfied:
            # abort_on_reject: the rejecting response completed the round.
            rejected = write_outcome.responses[-1]
            return WriteResult(
                success=False,
                version=new_version,
                acks_per_level=[acks],
                messages=messages,
                reason=(
                    f"replica {rejected.request.node_id} unavailable "
                    "(ROWA requires all)"
                ),
            )
        if self.verifier is not None:
            committed, meta_messages = yield from self._meta_commit_plan(
                block, new_version, value
            )
            messages += meta_messages
            if not committed:
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=[acks],
                    messages=messages,
                    reason="metadata quorum write failed",
                )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=[acks],
            messages=messages,
        )

    def read_plan(self, block: int):
        messages = 0
        accept = None
        if self.verifier is not None:
            # Read-one is safe under Byzantine replicas only with a
            # trusted check: accept the first reply matching the metadata
            # (version, digest) record; rejected replies widen the scan
            # across the replica set.
            record, meta_messages = yield from self._meta_lookup_plan(block)
            messages += meta_messages
            if record is None:
                return ReadResult(
                    success=False,
                    messages=messages,
                    reason="metadata quorum unreachable",
                )
            accept = self.verifier.payload_accept(record[0], record[1])
        outcome = yield Round(
            [
                Request(
                    nid,
                    "read_data",
                    (self.key(block),),
                    catches=(NodeUnavailableError, KeyError),
                )
                for nid in self.node_ids
            ],
            need=1,
            accept=accept,
            kind=PAYLOAD_ROUND,
        )
        messages += outcome.messages
        if outcome.satisfied:
            payload, version = outcome.accepted[0].value
            return ReadResult(
                success=True,
                value=payload,
                version=version,
                case=ReadCase.DIRECT,
                messages=messages,
            )
        return ReadResult(
            success=False,
            messages=messages,
            reason="no replica reachable"
            if self.verifier is None
            else "no replica served a verifiable copy",
        )


class MajorityProtocol(_ReplicationBase):
    """Thomas's majority consensus over n replicas."""

    _kind = "majority"

    @property
    def threshold(self) -> int:
        return len(self.node_ids) // 2 + 1

    def write_plan(self, block: int, value: np.ndarray):
        # Version discovery from a majority.
        outcome = yield self._version_round(block)
        messages = outcome.messages
        if len(outcome.accepted) < self.threshold:
            return WriteResult(
                success=False,
                messages=messages,
                reason="no majority reachable for version lookup",
            )
        new_version = max(r.value for r in outcome.accepted) + 1
        if self.verifier is not None:
            record, meta_messages = yield from self._meta_lookup_plan(block)
            messages += meta_messages
            if record is None:
                return WriteResult(
                    success=False,
                    messages=messages,
                    reason="metadata quorum unreachable",
                )
            new_version = max(new_version, record[0] + 1)
        write_outcome = yield Round(
            self._write_requests(block, value, new_version),
            need=self.threshold,
            send_all=True,
            kind=WRITE_ROUND,
        )
        messages += write_outcome.messages
        acks = len(write_outcome.accepted)
        if not write_outcome.satisfied:
            return WriteResult(
                success=False,
                version=new_version,
                acks_per_level=[acks],
                messages=messages,
                reason=f"{acks} acks < majority {self.threshold}",
            )
        if self.verifier is not None:
            committed, meta_messages = yield from self._meta_commit_plan(
                block, new_version, value
            )
            messages += meta_messages
            if not committed:
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=[acks],
                    messages=messages,
                    reason="metadata quorum write failed",
                )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=[acks],
            messages=messages,
        )

    def read_plan(self, block: int):
        messages = 0
        record = None
        if self.verifier is not None:
            record, meta_messages = yield from self._meta_lookup_plan(block)
            messages += meta_messages
            if record is None:
                return ReadResult(
                    success=False,
                    messages=messages,
                    reason="metadata quorum unreachable",
                )
        # The gather round is identical with or without verification: a
        # majority of replies (stale ones included) completes it; the
        # verified path then *selects* among them instead of trusting the
        # max version claim.
        outcome = yield Round(
            [
                Request(
                    nid,
                    "read_data",
                    (self.key(block),),
                    catches=(NodeUnavailableError, KeyError),
                )
                for nid in self.node_ids
            ],
            need=self.threshold,
            send_all=True,
            kind=PAYLOAD_ROUND,
        )
        messages += outcome.messages
        if not outcome.satisfied:
            return ReadResult(
                success=False,
                messages=messages,
                reason=(
                    f"{len(outcome.accepted)} responders < majority {self.threshold}"
                ),
            )
        if record is not None:
            target, digest = record
            for response in outcome.accepted:
                payload, version = response.value
                if self.verifier.check(payload, version, target, digest):
                    return ReadResult(
                        success=True,
                        value=payload,
                        version=target,
                        case=ReadCase.DIRECT,
                        messages=messages,
                    )
            return ReadResult(
                success=False,
                version=target,
                messages=messages,
                reason="no verified reply at the committed version",
            )
        best_payload = None
        best_version = -1
        for response in outcome.accepted:
            payload, version = response.value
            if version > best_version:
                best_version = version
                best_payload = payload
        return ReadResult(
            success=True,
            value=best_payload,
            version=best_version,
            case=ReadCase.DIRECT,
            messages=messages,
        )
