"""Classical full-replication protocol engines: ROWA and Majority.

Protocol-level counterparts of the analysis baselines, for end-to-end
comparisons against TRAP-ERC/TRAP-FR on the same cluster substrate: same
versioned nodes, same network accounting, same failure injection.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.results import ReadCase, ReadResult, WriteResult
from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError

__all__ = ["RowaProtocol", "MajorityProtocol"]


class _ReplicationBase:
    """Shared replica bookkeeping for flat replication protocols."""

    def __init__(self, cluster: Cluster, node_ids, stripe_id: str) -> None:
        self.cluster = cluster
        self.node_ids = [int(i) for i in node_ids]
        if len(self.node_ids) < 1:
            raise ConfigurationError("need at least one replica node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigurationError("replica node ids must be distinct")
        for nid in self.node_ids:
            cluster.node(nid)
        self.stripe_id = stripe_id

    def key(self, block: int):
        return (self._kind, self.stripe_id, block)

    def initialize(self, blocks: np.ndarray) -> None:
        """Load version-0 replicas of each row of ``blocks`` everywhere."""
        blocks = np.asarray(blocks)
        if blocks.ndim != 2:
            raise ConfigurationError("blocks must be (num_blocks, L)")
        for b in range(blocks.shape[0]):
            for nid in self.node_ids:
                self.cluster.rpc(nid, "put_data", self.key(b), blocks[b], 0)


class RowaProtocol(_ReplicationBase):
    """Read One, Write All over n replicas."""

    _kind = "rowa"

    def write_block(self, block: int, value: np.ndarray) -> WriteResult:
        msg_before = self.cluster.network.stats.messages
        # Learn the current version from every replica: Write-All needs
        # them all anyway, and a stale first answer would produce a
        # version that fresh replicas reject.
        versions = []
        for nid in self.node_ids:
            try:
                versions.append(self.cluster.rpc(nid, "data_version", self.key(block)))
            except NodeUnavailableError:
                continue
        if len(versions) < len(self.node_ids):
            return WriteResult(
                success=False,
                messages=self.cluster.network.stats.messages - msg_before,
                reason="replica unreachable during version lookup (ROWA requires all)",
            )
        new_version = max(versions) + 1
        acks = 0
        for nid in self.node_ids:
            try:
                self.cluster.rpc(nid, "write_data", self.key(block), value, new_version)
                acks += 1
            except (NodeUnavailableError, StaleNodeError):
                # Write-All: any miss fails the operation.
                return WriteResult(
                    success=False,
                    version=new_version,
                    acks_per_level=[acks],
                    messages=self.cluster.network.stats.messages - msg_before,
                    reason=f"replica {nid} unavailable (ROWA requires all)",
                )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=[acks],
            messages=self.cluster.network.stats.messages - msg_before,
        )

    def read_block(self, block: int) -> ReadResult:
        msg_before = self.cluster.network.stats.messages
        for nid in self.node_ids:
            try:
                payload, version = self.cluster.rpc(nid, "read_data", self.key(block))
            except (NodeUnavailableError, KeyError):
                continue
            return ReadResult(
                success=True,
                value=payload,
                version=version,
                case=ReadCase.DIRECT,
                messages=self.cluster.network.stats.messages - msg_before,
            )
        return ReadResult(
            success=False,
            messages=self.cluster.network.stats.messages - msg_before,
            reason="no replica reachable",
        )


class MajorityProtocol(_ReplicationBase):
    """Thomas's majority consensus over n replicas."""

    _kind = "majority"

    @property
    def threshold(self) -> int:
        return len(self.node_ids) // 2 + 1

    def write_block(self, block: int, value: np.ndarray) -> WriteResult:
        msg_before = self.cluster.network.stats.messages
        # Version discovery from a majority.
        versions = []
        for nid in self.node_ids:
            try:
                versions.append(self.cluster.rpc(nid, "data_version", self.key(block)))
            except NodeUnavailableError:
                continue
        if len(versions) < self.threshold:
            return WriteResult(
                success=False,
                messages=self.cluster.network.stats.messages - msg_before,
                reason="no majority reachable for version lookup",
            )
        new_version = max(versions) + 1
        acks = 0
        for nid in self.node_ids:
            try:
                self.cluster.rpc(nid, "write_data", self.key(block), value, new_version)
                acks += 1
            except (NodeUnavailableError, StaleNodeError):
                continue
        if acks < self.threshold:
            return WriteResult(
                success=False,
                version=new_version,
                acks_per_level=[acks],
                messages=self.cluster.network.stats.messages - msg_before,
                reason=f"{acks} acks < majority {self.threshold}",
            )
        return WriteResult(
            success=True,
            version=new_version,
            acks_per_level=[acks],
            messages=self.cluster.network.stats.messages - msg_before,
        )

    def read_block(self, block: int) -> ReadResult:
        msg_before = self.cluster.network.stats.messages
        best_payload = None
        best_version = -1
        responders = 0
        for nid in self.node_ids:
            try:
                payload, version = self.cluster.rpc(nid, "read_data", self.key(block))
            except (NodeUnavailableError, KeyError):
                continue
            responders += 1
            if version > best_version:
                best_version = version
                best_payload = payload
        if responders < self.threshold:
            return ReadResult(
                success=False,
                messages=self.cluster.network.stats.messages - msg_before,
                reason=f"{responders} responders < majority {self.threshold}",
            )
        return ReadResult(
            success=True,
            value=best_payload,
            version=best_version,
            case=ReadCase.DIRECT,
            messages=self.cluster.network.stats.messages - msg_before,
        )
