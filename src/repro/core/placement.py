"""Placement of a block's consistency group onto the trapezoid.

For data block i the group is {N_i} ∪ {parity nodes} (n - k + 1 nodes,
eq. 5). The paper places N_i at level 0 (section III-B.2); the remaining
positions are filled with the parity nodes in stripe order, yielding the
deterministic position -> node-id mapping both protocol variants share.
"""

from __future__ import annotations

from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum

__all__ = ["TrapezoidPlacement"]


class TrapezoidPlacement:
    """Maps trapezoid positions to physical node ids for each data block."""

    def __init__(self, layout: StripeLayout, quorum: TrapezoidQuorum) -> None:
        expected = layout.group_size
        if quorum.shape.total_nodes != expected:
            raise ConfigurationError(
                f"trapezoid has {quorum.shape.total_nodes} positions but the "
                f"(n={layout.n}, k={layout.k}) group needs n - k + 1 = {expected}"
            )
        self.layout = layout
        self.quorum = quorum
        self.shape = quorum.shape

    def group_nodes(self, i: int) -> list[int]:
        """Node ids of block i's trapezoid in position order (pos 0 = N_i)."""
        return list(self.layout.consistency_group(i))

    def level_nodes(self, i: int, level: int) -> list[int]:
        """Node ids occupying ``level`` of block i's trapezoid."""
        group = self.group_nodes(i)
        return [group[pos] for pos in self.shape.positions(level)]

    def position_of_node(self, i: int, node_id: int) -> int:
        """Trapezoid position of ``node_id`` in block i's group."""
        group = self.group_nodes(i)
        try:
            return group.index(node_id)
        except ValueError:
            raise ConfigurationError(
                f"node {node_id} is not in block {i}'s consistency group"
            ) from None

    def level_of_node(self, i: int, node_id: int) -> int:
        """Trapezoid level of ``node_id`` in block i's group."""
        return self.shape.level_of(self.position_of_node(i, node_id))
