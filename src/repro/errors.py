"""Exception hierarchy for the TRAP-ERC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes (configuration errors,
quorum failures, decode failures, node faults).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "FieldError",
    "SingularMatrixError",
    "CodeError",
    "DecodeError",
    "QuorumError",
    "WriteQuorumError",
    "ReadQuorumError",
    "NodeUnavailableError",
    "StaleNodeError",
    "ConsistencyError",
    "SimulationError",
    "ParallelExecutionError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid parameters.

    Raised eagerly at construction time (e.g. an (n, k) pair with k > n, a
    trapezoid whose node count does not match n - k + 1, or a write-quorum
    vector violating ``1 <= w_l <= s_l``).
    """


class FieldError(ReproError, ValueError):
    """Invalid finite-field operation (unknown width, division by zero...)."""


class SingularMatrixError(FieldError):
    """A matrix over GF(2^w) was singular where an inverse was required."""


class CodeError(ReproError):
    """Erasure-code level failure."""


class DecodeError(CodeError):
    """Fewer than k consistent fragments were available for decoding."""


class QuorumError(ReproError):
    """A quorum-protocol operation could not assemble a required quorum."""


class WriteQuorumError(QuorumError):
    """Algorithm 1 failed: some level had fewer than w_l successful writes."""

    def __init__(self, level: int, achieved: int, required: int) -> None:
        self.level = level
        self.achieved = achieved
        self.required = required
        super().__init__(
            f"write quorum failed at level {level}: "
            f"{achieved} successful writes < w_l = {required}"
        )


class ReadQuorumError(QuorumError):
    """Algorithm 2 failed: no level reached r_l = s_l - w_l + 1 responses."""


class NodeUnavailableError(ReproError):
    """An RPC was issued to a failed (fail-stop) node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        super().__init__(f"node {node_id} is unavailable (fail-stop)")


class StaleNodeError(ReproError):
    """A parity delta was rejected because the contribution version did not
    match (Algorithm 1, line 26 guard)."""


class ConsistencyError(ReproError):
    """A read observed a value older than the last acknowledged write.

    This is the invariant the protocol exists to protect; seeing this error
    in a simulation means the configuration is unsafe (or a bug).
    """


class SimulationError(ReproError):
    """Generic failure inside the simulation substrate."""


class ParallelExecutionError(ReproError):
    """A task dispatched to the process pool raised.

    The worker-side exception cannot always be unpickled faithfully
    (protocol errors carry constructor arguments), so the original type
    name, message and traceback text are carried here instead.
    """

    def __init__(self, task_index: int, exc_type: str, message: str,
                 worker_traceback: str = "") -> None:
        self.task_index = task_index
        self.exc_type = exc_type
        self.message = message
        self.worker_traceback = worker_traceback
        super().__init__(
            f"parallel task {task_index} raised {exc_type}: {message}"
        )


class WorkerCrashError(ParallelExecutionError):
    """A pool worker died without reporting a result (signal, os._exit,
    unpicklable payload). Distinct from :class:`ParallelExecutionError`
    because no task-level traceback exists — the process itself is gone."""

    def __init__(self, detail: str) -> None:
        self.detail = detail
        self.task_index = -1
        self.exc_type = "WorkerCrash"
        self.message = detail
        self.worker_traceback = ""
        ReproError.__init__(
            self, f"parallel worker crashed before returning a result: {detail}"
        )
