"""Shared drain/cancel registry for coordinator in-flight work.

Both execution backends keep one :class:`DrainSet` of outstanding work:

* :class:`~repro.runtime.event.EventCoordinator` registers in-flight
  request *attempts* — cancelling one cancels its armed timeout
  :class:`~repro.sim.event_sim.Timer` and marks the attempt resolved,
  so a coordinator discarded mid-simulation (a saturation sweep point,
  an aborted run) stops retaining dead sessions in the event heap;
* :class:`~repro.runtime.async_coord.AsyncCoordinator` registers
  ``asyncio.Task`` objects — cancelling one cancels the task.

``shutdown()`` / ``aclose()`` on the coordinators call
:meth:`cancel_all`; completed work unregisters itself via
:meth:`discard`, so the set's size is always the live in-flight count.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["DrainSet"]


class DrainSet:
    """Outstanding work items, each with a cancel callable."""

    def __init__(self) -> None:
        self._cancels: dict[Any, Callable[[], Any]] = {}

    def add(self, item: Any, cancel: Callable[[], Any]) -> None:
        self._cancels[item] = cancel

    def discard(self, item: Any) -> None:
        self._cancels.pop(item, None)

    def items(self) -> list:
        return list(self._cancels)

    def __len__(self) -> int:
        return len(self._cancels)

    def __contains__(self, item: Any) -> bool:
        return item in self._cancels

    def cancel_all(self) -> int:
        """Cancel everything outstanding; returns how many were live."""
        entries = list(self._cancels.items())
        self._cancels.clear()
        for _, cancel in entries:
            cancel()
        return len(entries)
