"""Front-end router: one logical volume over many per-shard coordinators.

A production deployment does not run one trapezoid quorum instance — it
multiplexes many volumes / stripe families over one shared cluster. The
:class:`ShardRouter` is that front end: each *shard* pairs a plan-capable
protocol engine (one stripe family, ``k`` data blocks) with its own
:class:`~repro.runtime.event.EventCoordinator`, while every shard shares
one :class:`~repro.cluster.events.Simulator`, one
:class:`~repro.cluster.cluster.Cluster` and (optionally) one set of
per-node service queues — so concurrent shards genuinely contend for the
same nodes.

The router owns the address map. The logical volume has
``num_shards * k`` blocks; ``locate`` maps a logical block to its
``(shard, local block)`` home:

* ``interleave`` (default) — ``shard = block % num_shards``: round-robin
  striping, and with one shard the identity map (the property tests pin
  a 1-shard router bit-identical to an unsharded coordinator);
* ``hash`` — a fixed pseudorandom permutation (seeded by ``route_seed``,
  part of the configuration, not of the experiment seed) is applied
  before interleaving, modelling hash-placement of keys onto stripe
  families.

Arbitrary hashable keys enter through :meth:`route_key`, which folds a
stable FNV-1a digest into a logical block — the "hash keys to stripe
families" front door for key-value workloads.

Determinism: routing is pure arithmetic (no RNG draws at dispatch time),
each shard coordinator samples from its own stream, and the shared event
queue breaks ties by insertion order — one seed reproduces the exact
interleaving. ``trace_hash`` digests every shard's message trace (a
single-shard router reports that shard's hash unchanged, keeping the
1-shard replay byte-identical to the unsharded path).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.coordinator import OpHandle
from repro.runtime.event import EventCoordinator

__all__ = ["Shard", "ShardRouter"]

_ROUTINGS = ("interleave", "hash")


@dataclass
class Shard:
    """One stripe family: a plan-capable engine plus its coordinator."""

    index: int
    engine: Any
    coordinator: EventCoordinator
    num_blocks: int

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ConfigurationError(
                f"shard must hold >= 1 blocks, got {self.num_blocks}"
            )


def _fnv1a64(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class ShardRouter:
    """Dispatch logical block operations to per-shard coordinators."""

    def __init__(
        self,
        shards: Sequence[Shard],
        routing: str = "interleave",
        route_seed: int = 0,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ConfigurationError("router needs at least one shard")
        sizes = {s.num_blocks for s in shards}
        if len(sizes) != 1:
            raise ConfigurationError(
                f"shards must hold equally many blocks, got sizes {sorted(sizes)}"
            )
        if routing not in _ROUTINGS:
            raise ConfigurationError(
                f"unknown routing {routing!r} (expected one of {_ROUTINGS})"
            )
        self.shards = shards
        self.routing = routing
        self.route_seed = int(route_seed)
        self.num_shards = len(shards)
        self.blocks_per_shard = shards[0].num_blocks
        self.num_blocks = self.num_shards * self.blocks_per_shard
        if routing == "hash":
            self._perm = np.random.default_rng(self.route_seed).permutation(
                self.num_blocks
            )
            keys = self._perm
        else:
            self._perm = None
            keys = np.arange(self.num_blocks)
        # Precomputed address map: logical block -> (shard index, local
        # block), so the hot dispatch path is two array lookups instead
        # of a divmod (plus a permutation gather under hash routing).
        self._shard_of = (keys % self.num_shards).astype(np.intp)
        self._local_of = (keys // self.num_shards).astype(np.intp)

    # ------------------------------------------------------------------ #
    # address map
    # ------------------------------------------------------------------ #

    def locate(self, block: int) -> tuple[Shard, int]:
        """The (shard, local block) home of a logical block."""
        block = int(block)
        if not 0 <= block < self.num_blocks:
            raise ConfigurationError(
                f"logical block must be in [0, {self.num_blocks}), got {block}"
            )
        return self.shards[self._shard_of[block]], int(self._local_of[block])

    def route_key(self, key: object) -> int:
        """Fold an arbitrary hashable key onto a logical block (FNV-1a)."""
        return _fnv1a64(repr(key).encode("utf-8")) % self.num_blocks

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def submit_read(
        self, block: int, on_done: Callable[[Any], None] | None = None
    ) -> OpHandle:
        """Start a read on the owning shard; completes as the sim advances."""
        shard, local = self.locate(block)
        return shard.coordinator.submit(shard.engine.read_plan(local), on_done)

    def submit_write(
        self,
        block: int,
        value: np.ndarray,
        on_done: Callable[[Any], None] | None = None,
    ) -> OpHandle:
        """Start a write on the owning shard."""
        shard, local = self.locate(block)
        return shard.coordinator.submit(shard.engine.write_plan(local, value), on_done)

    def execute_read(self, block: int) -> Any:
        """Single-operation convenience: read and pump the sim to completion."""
        shard, local = self.locate(block)
        return shard.coordinator.execute(shard.engine.read_plan(local))

    def execute_write(self, block: int, value: np.ndarray) -> Any:
        shard, local = self.locate(block)
        return shard.coordinator.execute(shard.engine.write_plan(local, value))

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #

    @property
    def ops_completed(self) -> int:
        return sum(s.coordinator.ops_completed for s in self.shards)

    @property
    def in_flight(self) -> int:
        return sum(s.coordinator.in_flight for s in self.shards)

    @property
    def rounds_run(self) -> int:
        return sum(s.coordinator.rounds_run for s in self.shards)

    def round_messages(self) -> Counter:
        """Message counts by round kind, summed over every shard."""
        total: Counter = Counter()
        for shard in self.shards:
            total.update(shard.coordinator.round_messages)
        return total

    def trace_hash(self) -> str:
        """Digest of every shard's message trace.

        A single-shard router reports the shard's own hash so the 1-shard
        configuration replays byte-identically to an unsharded
        :class:`EventCoordinator`; with several shards the per-shard
        digests are folded (in shard order) into one SHA-256.
        """
        if self.num_shards == 1:
            return self.shards[0].coordinator.trace_hash()
        digest = hashlib.sha256()
        for shard in self.shards:
            digest.update(shard.coordinator.trace_hash().encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()
