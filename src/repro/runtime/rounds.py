"""Fan-out round primitives shared by both protocol execution paths.

A protocol engine expresses one read/write operation as a *plan*: a
generator yielding :class:`Round` objects (a fan-out of node requests
plus a completion policy) and receiving :class:`RoundOutcome` objects
back. The same plan runs on two coordinators:

* :class:`~repro.runtime.coordinator.InstantCoordinator` replays the
  round as the legacy synchronous RPC loop — identical RPC sequence,
  message counts and results to the pre-runtime engines;
* :class:`~repro.runtime.event.EventCoordinator` schedules every request
  as a real message on the discrete-event engine and completes the round
  through :class:`QuorumWait` — the q-th fastest healthy response ends
  the wait (max-of-parallel latency), stragglers keep flowing in the
  background.

Round kinds (``version-query`` / ``payload`` / ``write`` /
``write-back``) label the protocol's round structure for per-round
message accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError, NodeUnavailableError

__all__ = [
    "VERSION_ROUND",
    "PAYLOAD_ROUND",
    "WRITE_ROUND",
    "WRITEBACK_ROUND",
    "Request",
    "Response",
    "Round",
    "RoundOutcome",
    "RetryPolicy",
    "QuorumWait",
]

#: canonical round-kind labels (per-round message accounting keys)
VERSION_ROUND = "version-query"
PAYLOAD_ROUND = "payload"
WRITE_ROUND = "write"
WRITEBACK_ROUND = "write-back"


@dataclass(frozen=True, slots=True)
class Request:
    """One node RPC inside a fan-out round.

    ``catches`` lists the exception types that convert into a failed
    :class:`Response` (anything else is a programming error and
    propagates). ``tag`` is an engine-private annotation (e.g. the block
    index a fragment belongs to) carried through to the response.
    """

    node_id: int
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    tag: Any = None
    catches: tuple = (NodeUnavailableError,)


@dataclass(slots=True)
class Response:
    """One resolved request: a value, or a caught failure."""

    request: Request
    ok: bool
    value: Any = None
    error: BaseException | None = None


def _default_accept(response: Response) -> bool:
    return response.ok


class Round:
    """A fan-out of requests plus its completion policy.

    Parameters
    ----------
    requests:
        The node requests, in the engine's canonical order (the instant
        path issues them sequentially in exactly this order).
    need:
        Quorum threshold: the round is *satisfied* once ``need``
        responses are accepted. ``None`` means "gather every response"
        (always satisfied once all requests resolve).
    accept:
        Predicate deciding whether a response counts toward ``need``
        (default: the request did not fail). An RPC that succeeds but
        returns an INVALID record is the typical rejected-but-resolved
        case.
    send_all:
        When True the instant path issues every request even after
        ``need`` is reached (write rounds: the protocol pushes updates to
        the whole level, then counts acks). When False it stops issuing
        at the threshold (read rounds: Algorithm 2's early exit). The
        event path always sends everything — fan-out is free in messages,
        the wait policy decides *completion*.
    abort_on_reject:
        Stop at the first rejected response (ROWA's write-all: any miss
        fails the operation).
    kind:
        Round label for per-round message accounting.
    """

    __slots__ = ("requests", "need", "accept", "send_all", "abort_on_reject", "kind")

    def __init__(
        self,
        requests: list[Request],
        *,
        need: int | None = None,
        accept: Callable[[Response], bool] | None = None,
        send_all: bool = False,
        abort_on_reject: bool = False,
        kind: str = PAYLOAD_ROUND,
    ) -> None:
        self.requests = list(requests)
        if need is not None and need < 1:
            raise ConfigurationError(f"round need must be >= 1, got {need}")
        self.need = need
        self.accept = accept if accept is not None else _default_accept
        self.send_all = bool(send_all)
        self.abort_on_reject = bool(abort_on_reject)
        self.kind = str(kind)


@dataclass
class RoundOutcome:
    """What a coordinator hands back to the plan for one round.

    ``responses`` is in resolution order (issue order on the instant
    path, arrival order on the event path); ``accepted`` is its accepted
    subset. ``satisfied`` reports the ``need`` policy. ``elapsed`` is the
    round's max-of-parallel virtual latency and ``messages`` the traffic
    attributed to the round up to its completion.
    """

    round: Round
    responses: list[Response] = field(default_factory=list)
    accepted: list[Response] = field(default_factory=list)
    satisfied: bool = False
    elapsed: float = 0.0
    messages: int = 0


@dataclass(frozen=True)
class RetryPolicy:
    """Per-operation timeout/retry policy of the event path.

    A request with no reply after ``timeout`` virtual seconds is resent
    up to ``retries`` times; when the attempts are exhausted the request
    resolves as failed (a :class:`NodeUnavailableError` response — a
    timeout is indistinguishable from a dead node to the coordinator).
    Node-side version guards make resends safe: a duplicate delivery of
    a guarded write raises ``StaleNodeError`` instead of re-applying.
    """

    timeout: float = 0.05
    retries: int = 0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")


class QuorumWait:
    """Event-path completion tracker: quorum-wait over a fan-out round.

    ``offer`` one resolved response at a time; the wait completes when

    * the ``need``-th accepted response arrives (the q-th fastest healthy
      reply — max-of-parallel, not sum),
    * the threshold becomes unreachable (enough failures that the
      outstanding requests cannot make up the difference),
    * a rejection arrives under ``abort_on_reject``, or
    * every request has resolved (``need is None`` gather-rounds).

    Responses offered after completion are ignored (stragglers are
    background traffic, they no longer belong to the operation).
    """

    def __init__(self, round_: Round) -> None:
        self.round = round_
        self.total = len(round_.requests)
        self.responses: list[Response] = []
        self.accepted: list[Response] = []
        self.resolved = 0
        self.done = False
        self.satisfied = False

    def _finish(self, satisfied: bool) -> bool:
        self.done = True
        self.satisfied = satisfied
        return True

    def offer(self, response: Response) -> bool:
        """Record one resolved response; True when the wait completes."""
        if self.done:
            return False
        self.responses.append(response)
        self.resolved += 1
        accepted = self.round.accept(response)
        if accepted:
            self.accepted.append(response)
        need = self.round.need
        if not accepted and self.round.abort_on_reject:
            return self._finish(False)
        if need is not None:
            if len(self.accepted) >= need:
                return self._finish(True)
            outstanding = self.total - self.resolved
            if len(self.accepted) + outstanding < need:
                return self._finish(False)
        if self.resolved == self.total:
            return self._finish(need is None or len(self.accepted) >= need)
        return False
