"""Frozen per-object session layer: the pre-vectorization event path.

:class:`ReferenceEventCoordinator` is the per-message/per-object
implementation that :class:`~repro.runtime.event.EventCoordinator`
replaced when the hot loop moved to struct-of-arrays form (see
docs/PERFORMANCE.md, "The event core"). It is kept verbatim — one heap
entry and one closure per message leg, one :class:`_Attempt` object per
attempt, one :class:`~repro.runtime.rounds.QuorumWait` per round, eager
trace formatting — for two jobs:

* **lockstep oracle** — the hypothesis equivalence suite runs identical
  workloads through both coordinators and asserts values, versions,
  message counts and ``trace_hash()`` match bit-for-bit (same
  precedent as ``matmul_reference`` for the GF kernels and the seed
  decode/optimize paths);
* **bench baseline** — the ``event_core`` perf section measures the
  vectorized path's sim-ops/s against this loop on the same pinned
  config.

Semantics note: the two paths are event-for-event identical except on a
measure-zero edge — a message whose sampled one-way delay *exactly*
equals ``policy.timeout`` can order differently against other attempts'
timeouts in the same round (the vectorized path arms one wave timer
where this path arms per-attempt timers with interleaved sequence
numbers). No continuous latency model hits it, and a fixed model would
need ``delay == timeout``, which configs reject in practice.

Do not modify this module for performance; it is the yardstick.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Any, Callable, Mapping

from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulator, Timer
from repro.cluster.network import _payload_bytes
from repro.cluster.rng import make_rng
from repro.errors import NodeUnavailableError, SimulationError
from repro.runtime.coordinator import OpHandle, Plan
from repro.runtime.drain import DrainSet
from repro.runtime.rounds import (
    QuorumWait,
    Request,
    Response,
    RetryPolicy,
    Round,
    RoundOutcome,
)

__all__ = ["ReferenceEventCoordinator"]


class _Attempt:
    """One in-flight request attempt (send leg + reply leg + timeout)."""

    __slots__ = ("request", "number", "resolved", "timer")

    def __init__(self, request: Request, number: int) -> None:
        self.request = request
        self.number = number
        self.resolved = False
        self.timer: Timer | None = None


class _RoundState:
    """Bookkeeping of one in-flight round."""

    __slots__ = ("round", "wait", "started_at", "messages", "on_complete")

    def __init__(self, round_: Round, started_at: float, on_complete) -> None:
        self.round = round_
        self.wait = QuorumWait(round_)
        self.started_at = started_at
        self.messages = 0
        self.on_complete = on_complete


class ReferenceEventCoordinator:
    """Per-object reference implementation of the event session layer.

    Drop-in API twin of :class:`~repro.runtime.event.EventCoordinator`
    (same constructor, same ``submit``/``execute``/``trace_hash``/
    ``shutdown`` surface); see that class for parameter docs.
    """

    mode = "event"

    def __init__(
        self,
        cluster: Cluster,
        simulator: Simulator,
        *,
        latency=None,
        rng=None,
        policy: RetryPolicy | None = None,
        record_trace: bool = False,
        queues: Mapping[int, Any] | None = None,
        site: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.sim = simulator
        if latency is None:
            latency = cluster.network.latency
        if latency is None:
            from repro.cluster.network import FixedLatency

            latency = FixedLatency()
        self.latency = latency
        self.rng = make_rng(rng)
        self.policy = policy if policy is not None else RetryPolicy()
        self.queues = queues
        self.site = site
        self.in_flight = 0
        self.max_in_flight = 0
        self.ops_completed = 0
        self.rounds_run = 0
        self.round_messages: Counter = Counter()
        self.outstanding = DrainSet()
        self._trace: list[str] | None = [] if record_trace else None
        self._draining = False

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def submit(self, plan: Plan, on_done: Callable[[Any], None] | None = None) -> OpHandle:
        """Start a plan; it completes asynchronously as the sim advances."""
        handle = OpHandle(started_at=self.sim.now)
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)
        self._advance(plan, handle, on_done, None)
        return handle

    def execute(self, plan: Plan) -> Any:
        """Submit one plan and pump the simulator until it completes."""
        if self._draining:
            raise SimulationError(
                "re-entrant EventCoordinator.execute(); use submit() from "
                "simulator callbacks"
            )
        handle = self.submit(plan)
        self._draining = True
        try:
            while not handle.done:
                if not self.sim.step():
                    raise SimulationError(
                        "event queue drained before the operation completed"
                    )
        finally:
            self._draining = False
        return handle.result

    def trace_hash(self) -> str:
        """SHA-256 over the recorded message trace (determinism check)."""
        if self._trace is None:
            raise SimulationError("trace recording is off (record_trace=False)")
        digest = hashlib.sha256()
        for line in self._trace:
            digest.update(line.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    @property
    def trace_length(self) -> int:
        return len(self._trace) if self._trace is not None else 0

    def shutdown(self) -> int:
        """Cancel every outstanding attempt's timeout timer."""
        return self.outstanding.cancel_all()

    # ------------------------------------------------------------------ #
    # plan driving
    # ------------------------------------------------------------------ #

    def _advance(self, plan: Plan, handle: OpHandle, on_done, outcome) -> None:
        try:
            round_ = plan.send(outcome)
        except StopIteration as stop:
            handle.result = stop.value
            handle.finished_at = self.sim.now
            handle.done = True
            self.in_flight -= 1
            self.ops_completed += 1
            if hasattr(handle.result, "latency"):
                handle.result.latency = handle.finished_at - handle.started_at
            if on_done is not None:
                on_done(handle.result)
            return
        self._start_round(
            round_,
            lambda outcome: self._advance(plan, handle, on_done, outcome),
        )

    def _start_round(self, round_: Round, on_complete) -> None:
        state = _RoundState(round_, self.sim.now, on_complete)
        self.rounds_run += 1
        if not round_.requests:
            self._complete(state)
            return
        for request in round_.requests:
            self._send(state, _Attempt(request, 0))

    def _complete(self, state: _RoundState) -> None:
        wait = state.wait
        wait.done = True  # idempotent for the empty-round case
        outcome = RoundOutcome(
            round=state.round,
            responses=list(wait.responses),
            accepted=list(wait.accepted),
            satisfied=wait.satisfied or (state.round.need is None and not state.round.requests),
            elapsed=self.sim.now - state.started_at,
            messages=state.messages,
        )
        self.cluster.network.record_round(outcome.elapsed)
        state.on_complete(outcome)

    # ------------------------------------------------------------------ #
    # message session layer
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, request: Request, attempt: int) -> None:
        if self._trace is not None:
            self._trace.append(
                f"{self.sim.now!r} {kind} node={request.node_id} "
                f"method={request.method} attempt={attempt}"
            )

    def _count_message(self, state: _RoundState) -> None:
        self.cluster.network.stats.messages += 1
        self.round_messages[state.round.kind] += 1
        if not state.wait.done:
            state.messages += 1

    def _send(self, state: _RoundState, attempt: _Attempt) -> None:
        net = self.cluster.network
        request = attempt.request
        self._record("send", request, attempt.number)
        self._count_message(state)
        net.stats.by_kind[request.method] += 1
        net.stats.bytes_sent += _payload_bytes(request.args, request.kwargs)
        attempt.timer = self.sim.schedule_in(
            self.policy.timeout, lambda: self._timeout(state, attempt)
        )
        self.outstanding.add(attempt, lambda: self._discard_attempt(attempt))
        if net.is_partitioned(request.node_id):
            # Silent drop: only the timeout resolves this attempt.
            net.stats.messages_dropped += 1
            self._record("drop", request, attempt.number)
            return
        delay = self.latency.sample_link(self.rng, self.site, request.node_id)
        net.stats.total_message_delay += delay
        self.sim.schedule_in(delay, lambda: self._deliver(state, attempt))

    def _deliver(self, state: _RoundState, attempt: _Attempt) -> None:
        if attempt.resolved:
            return  # timed out (and possibly resent) before arriving
        net = self.cluster.network
        request = attempt.request
        if net.is_partitioned(request.node_id):
            # Partition raced the message: dropped on the wire.
            net.stats.messages_dropped += 1
            self._record("drop", request, attempt.number)
            return
        self._record("deliver", request, attempt.number)
        queue = None if self.queues is None else self.queues.get(request.node_id)
        if queue is None:
            self._serve(state, attempt)
        else:
            queue.push(lambda: self._serve(state, attempt))

    def _serve(self, state: _RoundState, attempt: _Attempt) -> None:
        net = self.cluster.network
        request = attempt.request
        node = self.cluster.node(request.node_id)
        if not node.alive:
            # Fail-stop refusal: an error reply travels back immediately
            # (connection reset), distinct from the silent partition drop.
            node.stats.failed_rpcs += 1
            net.stats.rpc_failures += 1
            response = Response(
                request=request, ok=False, error=NodeUnavailableError(request.node_id)
            )
        else:
            try:
                value = getattr(node, request.method)(*request.args, **request.kwargs)
                if node.byzantine is not None:
                    value = node.byzantine.apply(
                        node, request.method, value, request.args
                    )
                response = Response(request=request, ok=True, value=value)
            except request.catches as exc:
                net.stats.rpc_failures += 1
                response = Response(request=request, ok=False, error=exc)
        delay = self.latency.sample_link(self.rng, request.node_id, self.site)
        net.stats.total_message_delay += delay
        self.sim.schedule_in(delay, lambda: self._reply(state, attempt, response))

    def _reply(self, state: _RoundState, attempt: _Attempt, response: Response) -> None:
        if attempt.resolved:
            return
        net = self.cluster.network
        request = attempt.request
        if net.is_partitioned(request.node_id):
            # The reply leg is cut too: the coordinator hears nothing.
            net.stats.messages_dropped += 1
            self._record("drop-reply", request, attempt.number)
            return
        self._record("reply", request, attempt.number)
        self._count_message(state)
        self._resolve(state, attempt, response)

    def _discard_attempt(self, attempt: _Attempt) -> None:
        """Drain-path cancel: kill the timer, deaden the attempt."""
        attempt.resolved = True
        if attempt.timer is not None:
            attempt.timer.cancel()

    def _timeout(self, state: _RoundState, attempt: _Attempt) -> None:
        if attempt.resolved:
            return
        attempt.resolved = True  # the original attempt is dead to the op
        self.outstanding.discard(attempt)
        if state.wait.done:
            return
        net = self.cluster.network
        net.stats.timeouts += 1
        self._record("timeout", attempt.request, attempt.number)
        if attempt.number < self.policy.retries:
            net.stats.retries += 1
            self._send(state, _Attempt(attempt.request, attempt.number + 1))
            return
        response = Response(
            request=attempt.request,
            ok=False,
            error=NodeUnavailableError(attempt.request.node_id),
        )
        self._resolve(state, attempt, response, cancel_timer=False)

    def _resolve(
        self,
        state: _RoundState,
        attempt: _Attempt,
        response: Response,
        cancel_timer: bool = True,
    ) -> None:
        attempt.resolved = True
        self.outstanding.discard(attempt)
        if cancel_timer and attempt.timer is not None:
            attempt.timer.cancel()
        if state.wait.done:
            return  # straggler: traffic only, the round already completed
        if state.wait.offer(response):
            self._complete(state)
