"""Coordinator abstraction: one protocol plan, two execution paths.

A *plan* is a generator yielding :class:`~repro.runtime.rounds.Round`
objects and returning the operation's result object (``return`` inside
the generator). :class:`InstantCoordinator` — the default every engine
constructs when none is injected — replays rounds as the legacy
synchronous RPC loop, preserving the pre-runtime engines' RPC sequence,
message counts and results bit for bit. The event-driven counterpart
lives in :mod:`repro.runtime.event`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Protocol, runtime_checkable

from repro.cluster.cluster import Cluster
from repro.runtime.rounds import Response, Round, RoundOutcome

__all__ = ["Plan", "OpHandle", "Coordinator", "InstantCoordinator"]

#: the protocol-plan generator type: yields rounds, receives outcomes
Plan = Generator[Round, RoundOutcome, Any]


@dataclass
class OpHandle:
    """One submitted operation: completion flag plus its result."""

    started_at: float = 0.0
    finished_at: float = 0.0
    done: bool = False
    result: Any = None


@runtime_checkable
class Coordinator(Protocol):
    """What an engine needs from an execution path.

    ``execute`` runs one plan to completion and returns its result;
    ``submit`` starts a plan and reports completion through ``on_done``
    (the event path interleaves many submitted plans; the instant path
    completes synchronously before returning).
    """

    mode: str

    def execute(self, plan: Plan) -> Any: ...

    def submit(self, plan: Plan, on_done: Callable[[Any], None] | None = None) -> OpHandle: ...


@dataclass
class InstantCoordinator:
    """The legacy synchronous path: every round is an inline RPC loop.

    Requests are issued sequentially in round order; a read round stops
    issuing at its quorum threshold (``need`` reached, ``send_all``
    False), a write round pushes to the whole fan-out and counts acks
    afterwards, and ``abort_on_reject`` stops at the first miss. This is
    exactly the control flow the engines used before the runtime
    refactor, so results and message counts are unchanged.

    Beyond replaying the legacy path it fixes the latency accounting:
    each round records its **max-of-parallel** sampled delay into
    ``network.stats.operation_latency`` (the old sum-of-messages counter
    survives as ``total_message_delay``).
    """

    cluster: Cluster
    mode: str = field(default="instant", init=False)
    rounds_run: int = field(default=0, init=False)
    round_messages: Counter = field(default_factory=Counter, init=False)

    def execute(self, plan: Plan) -> Any:
        outcome: RoundOutcome | None = None
        elapsed = 0.0
        while True:
            try:
                round_ = plan.send(outcome)  # first send(None) == next(plan)
            except StopIteration as stop:
                result = stop.value
                if hasattr(result, "latency"):
                    result.latency = elapsed
                return result
            outcome = self.run_round(round_)
            elapsed += outcome.elapsed

    def submit(self, plan: Plan, on_done: Callable[[Any], None] | None = None) -> OpHandle:
        result = self.execute(plan)
        handle = OpHandle(done=True, result=result)
        if on_done is not None:
            on_done(result)
        return handle

    # ------------------------------------------------------------------ #

    def run_round(self, round_: Round) -> RoundOutcome:
        network = self.cluster.network
        outcome = RoundOutcome(round=round_)
        max_delay = 0.0
        for request in round_.requests:
            before = network.stats.messages
            try:
                value = self.cluster.rpc(
                    request.node_id, request.method, *request.args, **request.kwargs
                )
                response = Response(request=request, ok=True, value=value)
            except request.catches as exc:
                response = Response(request=request, ok=False, error=exc)
            outcome.messages += network.stats.messages - before
            max_delay = max(max_delay, network.last_rpc_delay)
            outcome.responses.append(response)
            accepted = round_.accept(response)
            if accepted:
                outcome.accepted.append(response)
            elif round_.abort_on_reject:
                break
            if (
                round_.need is not None
                and not round_.send_all
                and len(outcome.accepted) == round_.need
            ):
                break
        outcome.satisfied = (
            round_.need is None or len(outcome.accepted) >= round_.need
        ) and not (
            round_.abort_on_reject and len(outcome.accepted) < len(outcome.responses)
        )
        outcome.elapsed = max_delay
        network.record_round(max_delay)
        self.rounds_run += 1
        self.round_messages[round_.kind] += outcome.messages
        return outcome
