"""Wall-clock coordinator: round plans on asyncio transports.

:class:`AsyncCoordinator` is the third execution path for the engines'
round plans. It mirrors the :class:`~repro.runtime.event.
EventCoordinator` send/deliver/reply lifecycle in *real* time: each
request becomes an RPC on a per-node transport (in-process queue pair
or TCP — see :mod:`repro.services`), guarded by a per-attempt
``asyncio.wait_for`` timeout and resent per :class:`~repro.runtime.
rounds.RetryPolicy`; a transport that reports the node unreachable
(refused connection, closed channel, a service replying
``NodeUnavailableError``) fails the request immediately — the dead-node
RST path. Round completion runs through the same
:class:`~repro.runtime.rounds.QuorumWait` as the event path; stragglers
keep running in the background and are awaited by :meth:`drain` or
cancelled by :meth:`aclose` via the shared :class:`~repro.runtime.
drain.DrainSet` discipline.

Message accounting mirrors the simulated paths: 2 messages (request +
reply) per resolved RPC, 1 for a send that times out unanswered.
Rounds with a threshold and ``send_all=False`` issue *quorum-first*:
the first ``need`` requests go out concurrently and further requests
are issued only as failures resolve, so a deterministic zero-latency
in-process run issues exactly the requests
:class:`~repro.runtime.coordinator.InstantCoordinator` would (the
equivalence property suite pins results *and* message counts).

The class lives in :mod:`repro.runtime` but depends only on asyncio and
the round primitives — transports are duck-typed (``await call(...)``,
``await aclose()``), so the runtime layer never imports the services
subsystem.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import Counter
from typing import Any, Callable

from repro.errors import NodeUnavailableError, SimulationError
from repro.runtime.coordinator import OpHandle, Plan
from repro.runtime.drain import DrainSet
from repro.runtime.rounds import (
    QuorumWait,
    Request,
    Response,
    RetryPolicy,
    Round,
    RoundOutcome,
)

__all__ = ["AsyncCoordinator"]


class AsyncCoordinator:
    """Runs round plans against live node services on an event loop.

    ``transports`` maps node id → transport; it may be populated after
    construction (the wall-clock harness builds the coordinator first,
    starts services, then installs the transports). ``loop`` binds the
    coordinator to an externally owned event loop; without one a private
    loop is created on first synchronous :meth:`execute` and closed by
    :meth:`close`.
    """

    mode = "async"

    def __init__(
        self,
        transports: dict[int, Any] | None = None,
        *,
        policy: RetryPolicy | None = None,
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> None:
        self.transports: dict[int, Any] = dict(transports or {})
        self.policy = policy if policy is not None else RetryPolicy()
        self.rounds_run = 0
        self.ops_completed = 0
        self.in_flight = 0
        self.max_in_flight = 0
        self.messages = 0
        self.timeouts = 0
        self.retries = 0
        self.round_messages: Counter = Counter()
        self.outstanding = DrainSet()
        self.closed = False
        self._loop = loop
        self._owns_loop = False

    # ------------------------------------------------------------------ #
    # synchronous bridge (engines call read_block/write_block directly)

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            self._owns_loop = True
        return self._loop

    def execute(self, plan: Plan) -> Any:
        """Drive one plan to completion from synchronous code."""
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise SimulationError(
                "AsyncCoordinator.execute called from a running event loop; "
                "await execute_plan(plan) instead"
            )
        return self._ensure_loop().run_until_complete(self.execute_plan(plan))

    def submit(
        self, plan: Plan, on_done: Callable[[Any], None] | None = None
    ) -> OpHandle:
        """Start one plan; async context interleaves, sync completes now."""
        handle = OpHandle()

        async def runner():
            result = await self.execute_plan(plan)
            handle.done = True
            handle.result = result
            if on_done is not None:
                on_done(result)
            return result

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self._ensure_loop().run_until_complete(runner())
        else:
            task = loop.create_task(runner())
            self.outstanding.add(task, task.cancel)
            task.add_done_callback(self.outstanding.discard)
        return handle

    def close(self) -> None:
        """Synchronous teardown: drain, close transports, release loop."""
        loop = self._loop
        if loop is None or loop.is_closed() or loop.is_running():
            return
        loop.run_until_complete(self.aclose())
        if self._owns_loop:
            loop.close()

    # ------------------------------------------------------------------ #
    # async core

    async def execute_plan(self, plan: Plan) -> Any:
        """Run one plan round by round; returns the plan's result."""
        if self.closed:
            raise SimulationError("AsyncCoordinator is closed")
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)
        outcome: RoundOutcome | None = None
        try:
            while True:
                try:
                    round_ = plan.send(outcome)  # first send(None) == next
                except StopIteration as stop:
                    result = stop.value
                    break
                outcome = await self.run_round(round_)
        finally:
            self.in_flight -= 1
        self.ops_completed += 1
        if hasattr(result, "latency"):
            result.latency = loop.time() - started
        return result

    async def run_round(self, round_: Round) -> RoundOutcome:
        """One fan-out round: issue, quorum-wait, widen on failures."""
        self.rounds_run += 1
        loop = asyncio.get_running_loop()
        started = loop.time()
        requests = round_.requests
        wait = QuorumWait(round_)
        if not requests:
            return RoundOutcome(round=round_, satisfied=round_.need is None)

        counted = 0

        def count() -> None:
            nonlocal counted
            self.messages += 1
            self.round_messages[round_.kind] += 1
            if not wait.done:
                counted += 1

        lazy = round_.need is not None and not round_.send_all
        next_ix = 0
        live = 0
        done_future = loop.create_future()

        def issue_next() -> None:
            nonlocal next_ix, live
            request = requests[next_ix]
            next_ix += 1
            live += 1
            task = loop.create_task(self._attempt(request, count))
            self.outstanding.add(task, task.cancel)
            task.add_done_callback(resolved)

        def resolved(task: asyncio.Task) -> None:
            nonlocal live
            live -= 1
            self.outstanding.discard(task)
            if task.cancelled():
                return
            exc = task.exception()
            if exc is not None:
                if not done_future.done():
                    done_future.set_exception(exc)
                return
            if wait.done:
                return  # straggler: background traffic only
            if wait.offer(task.result()):
                if not done_future.done():
                    done_future.set_result(None)
                return
            if lazy:
                # widen exactly as the instant path would keep issuing
                while (
                    len(wait.accepted) + live < round_.need
                    and next_ix < len(requests)
                ):
                    issue_next()

        initial = len(requests) if not lazy else min(round_.need, len(requests))
        while next_ix < initial:
            issue_next()
        await done_future
        return RoundOutcome(
            round=round_,
            responses=list(wait.responses),
            accepted=list(wait.accepted),
            satisfied=wait.satisfied,
            elapsed=loop.time() - started,
            messages=counted,
        )

    async def _attempt(self, request: Request, count: Callable[[], None]) -> Response:
        transport = self.transports.get(request.node_id)
        if transport is None:
            raise SimulationError(f"no transport for node {request.node_id}")
        error: BaseException = NodeUnavailableError(request.node_id)
        for number in range(self.policy.retries + 1):
            if number > 0:
                self.retries += 1
            count()  # the request leaves
            try:
                value = await asyncio.wait_for(
                    transport.call(request.method, request.args, request.kwargs),
                    self.policy.timeout,
                )
            except asyncio.TimeoutError:
                self.timeouts += 1
                continue  # resend; exhausted attempts fall through below
            except request.catches as exc:
                count()  # the error reply (or refusal) arrives
                return Response(request=request, ok=False, error=exc)
            count()  # the reply arrives
            return Response(request=request, ok=True, value=value)
        return Response(request=request, ok=False, error=error)

    # ------------------------------------------------------------------ #
    # drain / shutdown

    async def drain(self) -> int:
        """Await every outstanding straggler task; returns how many."""
        tasks = [t for t in self.outstanding.items() if isinstance(t, asyncio.Task)]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        return len(tasks)

    async def aclose(self) -> None:
        """Cancel outstanding work and close every transport."""
        self.closed = True
        tasks = [t for t in self.outstanding.items() if isinstance(t, asyncio.Task)]
        self.outstanding.cancel_all()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for transport in self.transports.values():
            closer = getattr(transport, "aclose", None)
            if closer is not None:
                with contextlib.suppress(Exception):
                    await closer()
