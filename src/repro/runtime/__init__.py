"""Protocol execution runtime: fan-out rounds on two execution paths.

The engines in :mod:`repro.core` express every read/write as a *plan* —
a generator of :class:`Round` fan-outs — and stay agnostic of how the
rounds run:

* :class:`InstantCoordinator` (the default) replays them as the legacy
  synchronous RPC loops — bit-identical results and message counts;
* :class:`EventCoordinator` schedules real message deliveries on the
  discrete-event engine, completes rounds via :class:`QuorumWait` (the
  q-th fastest healthy response — max-of-parallel latency), applies a
  per-operation :class:`RetryPolicy`, and lets failures, repairs and
  partitions interleave mid-operation;
* :class:`AsyncCoordinator` runs the same plans in *wall-clock* time
  against live node services (:mod:`repro.services`) over asyncio
  transports — in-process queue pairs or real TCP — with the same
  timeout/retry/fast-fail semantics, so simulator predictions can be
  validated against measured latencies. Both non-instant backends share
  the :class:`DrainSet` drain/shutdown discipline.

For multi-volume scale-out, a :class:`ShardRouter` front end dispatches
logical blocks to many per-shard :class:`EventCoordinator`\\ s sharing one
simulator and cluster, optionally contending through per-node FIFO
:class:`NodeServiceQueue` service stations.

:mod:`repro.runtime.verify` adds the Byzantine-tolerant read path: a
:class:`BlockVerifier` over a separate :class:`MetadataQuorum` stores
per-block :func:`block_digest` records and rejects corrupted payload
replies, widening rounds instead of failing them. The metadata tier
itself hardens with writer-keyed :func:`record_tag` signatures
(self-verifying records) and 3f+1 Byzantine quorum sizing.

See docs/RUNTIME.md for the session lifecycle and semantics.
"""

from repro.runtime.async_coord import AsyncCoordinator
from repro.runtime.coordinator import (
    Coordinator,
    InstantCoordinator,
    OpHandle,
    Plan,
)
from repro.runtime.drain import DrainSet
from repro.runtime.event import (
    EventCoordinator,
    NodeServiceQueue,
    make_service_queues,
)
from repro.runtime.router import Shard, ShardRouter
from repro.runtime.rounds import (
    PAYLOAD_ROUND,
    VERSION_ROUND,
    WRITE_ROUND,
    WRITEBACK_ROUND,
    QuorumWait,
    Request,
    Response,
    RetryPolicy,
    Round,
    RoundOutcome,
)
from repro.runtime.verify import (
    DIGEST_SIZE,
    METADATA_ROUND,
    TAG_SIZE,
    BlockVerifier,
    MetadataQuorum,
    block_digest,
    record_tag,
    writer_key,
)

__all__ = [
    "Coordinator",
    "InstantCoordinator",
    "EventCoordinator",
    "AsyncCoordinator",
    "DrainSet",
    "NodeServiceQueue",
    "make_service_queues",
    "Shard",
    "ShardRouter",
    "OpHandle",
    "Plan",
    "Request",
    "Response",
    "Round",
    "RoundOutcome",
    "RetryPolicy",
    "QuorumWait",
    "VERSION_ROUND",
    "PAYLOAD_ROUND",
    "WRITE_ROUND",
    "WRITEBACK_ROUND",
    "METADATA_ROUND",
    "DIGEST_SIZE",
    "TAG_SIZE",
    "block_digest",
    "writer_key",
    "record_tag",
    "MetadataQuorum",
    "BlockVerifier",
]
