"""Verified read path: per-block digests + the separate metadata quorum.

The paper assumes fail-stop nodes (assumption 3), so its quorum math says
nothing about nodes that answer with *garbage*. Following the separate-
metadata construction of Androulaki et al. (*Erasure-Coded Byzantine
Storage with Separate Metadata*), this module adds the trust anchor that
makes payload replies checkable without trusting payload nodes:

* :func:`block_digest` — the cross-checksum primitive: a 16-byte BLAKE2b
  digest of a data block's bytes, computed by the writer;
* :class:`MetadataQuorum` — a lightweight, count-threshold quorum over
  ``nodes`` extra fail-stop-but-honest metadata nodes appended to the
  cluster. Thresholds derive from any registry quorum system
  (``majority`` by default) via
  :meth:`~repro.quorum.base.QuorumSystem.as_level_thresholds`, falling
  back to the size of a minimal quorum over the full metadata set;
* :class:`BlockVerifier` — builds the ``metadata`` rounds that store and
  fetch per-block ``(version, digest)`` records, and the accept
  predicates that verify payload replies against them. Verification
  failures are counted (``digest_mismatches`` for content lies,
  ``version_mismatches`` for stale-or-lying version claims) and simply
  *reject* the response — both coordinators then widen the round
  naturally (the event path's :class:`~repro.runtime.rounds.QuorumWait`
  keeps waiting for substitute replies, the instant path keeps issuing),
  so a read only fails once the quorum is genuinely exhausted.

Metadata records are stored as ordinary data records on the metadata
nodes (digest bytes as the payload, the block version as the record
version), so every existing piece of machinery — service queues, latency
legs, failure injection, the trace — applies to the metadata tier
unchanged.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError
from repro.quorum.base import QuorumSystem
from repro.runtime.rounds import Request, Response, Round, RoundOutcome

__all__ = [
    "METADATA_ROUND",
    "DIGEST_SIZE",
    "block_digest",
    "MetadataQuorum",
    "BlockVerifier",
]

#: round-kind label of metadata-quorum traffic (message accounting key)
METADATA_ROUND = "metadata"

#: digest width in bytes (BLAKE2b truncated output)
DIGEST_SIZE = 16


def block_digest(payload: np.ndarray) -> bytes:
    """The cross-checksum of one data block: BLAKE2b-128 over its bytes."""
    data = np.ascontiguousarray(payload).tobytes()
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).digest()


class MetadataQuorum:
    """Count-threshold read/write quorums over the metadata node ids.

    The metadata tier is flat and small, so its quorums are expressed as
    simple counts: a write must reach ``write_need`` of the ``node_ids``,
    a read gathers ``read_need`` replies (any write/read pair then
    intersects, so the max version over a read quorum is the last
    committed one). :meth:`from_system` derives the counts from a full
    :class:`~repro.quorum.base.QuorumSystem` — exactly for
    count-structured systems (majority, ROWA, unit-weight voting), via
    the size of a minimal quorum over the whole tier otherwise.
    """

    def __init__(self, node_ids, write_need: int, read_need: int) -> None:
        self.node_ids = tuple(int(i) for i in node_ids)
        if not self.node_ids:
            raise ConfigurationError("metadata quorum needs at least one node")
        self.write_need = int(write_need)
        self.read_need = int(read_need)
        for label, need in (("write_need", self.write_need), ("read_need", self.read_need)):
            if not 1 <= need <= len(self.node_ids):
                raise ConfigurationError(
                    f"{label} must be in [1, {len(self.node_ids)}], got {need}"
                )

    @classmethod
    def from_system(cls, node_ids, system: QuorumSystem) -> "MetadataQuorum":
        """Derive count thresholds from a registry quorum system."""
        ids = tuple(int(i) for i in node_ids)
        full = set(range(len(ids)))

        def need(kind: str) -> int:
            predicate = system.as_level_thresholds(kind)
            if (
                predicate is not None
                and len(predicate.sizes) == 1
                and predicate.sizes[0] == len(ids)
            ):
                return int(predicate.thresholds[0])
            finder = (
                system.find_write_quorum if kind == "write" else system.find_read_quorum
            )
            quorum = finder(full)
            if quorum is None:
                raise ConfigurationError(
                    f"metadata quorum system has no {kind} quorum even with "
                    f"all {len(ids)} nodes alive"
                )
            return len(quorum)

        return cls(ids, need("write"), need("read"))


class BlockVerifier:
    """Digest/version authority for one engine's blocks.

    Owns the metadata key namespace, the ``metadata`` rounds, and the
    detection counters. One verifier per engine (per shard, in sharded
    systems); counters are therefore per-engine too.
    """

    def __init__(
        self,
        cluster,
        quorum: MetadataQuorum,
        namespace: str = "stripe-0",
    ) -> None:
        self.cluster = cluster
        self.quorum = quorum
        self.namespace = str(namespace)
        #: payload replies whose content hash contradicted the metadata
        #: record (definite corruption — the version claim matched)
        self.digest_mismatches = 0
        #: payload replies whose version claim contradicted the metadata
        #: record (stale or lying node; indistinguishable, both rejected)
        self.version_mismatches = 0
        #: metadata rounds that failed to assemble their quorum
        self.metadata_failures = 0

    # ------------------------------------------------------------------ #
    # record layout
    # ------------------------------------------------------------------ #

    def meta_key(self, block: int):
        return ("meta", self.namespace, int(block))

    @staticmethod
    def _record(digest: bytes) -> np.ndarray:
        return np.frombuffer(digest, dtype=np.uint8)

    # ------------------------------------------------------------------ #
    # rounds
    # ------------------------------------------------------------------ #

    def bootstrap(self, block: int, payload: np.ndarray) -> None:
        """Write the version-0 record during volume load (instant path)."""
        record = self._record(block_digest(payload))
        for node_id in self.quorum.node_ids:
            self.cluster.rpc(node_id, "put_data", self.meta_key(block), record, 0)

    def write_round(self, block: int, version: int, digest: bytes) -> Round:
        """The commit round: store (version, digest) on a write quorum."""
        record = self._record(digest)
        requests = [
            Request(
                node_id,
                "write_data",
                (self.meta_key(block), record, int(version)),
                catches=(NodeUnavailableError, StaleNodeError),
            )
            for node_id in self.quorum.node_ids
        ]
        return Round(
            requests,
            need=self.quorum.write_need,
            send_all=True,
            kind=METADATA_ROUND,
        )

    def read_round(self, block: int) -> Round:
        """Fetch (version, digest) records from a read quorum."""
        requests = [
            Request(
                node_id,
                "read_data",
                (self.meta_key(block),),
                catches=(NodeUnavailableError, KeyError),
            )
            for node_id in self.quorum.node_ids
        ]
        return Round(requests, need=self.quorum.read_need, kind=METADATA_ROUND)

    def resolve(self, outcome: RoundOutcome) -> tuple[int, bytes] | None:
        """Newest (version, digest) over a metadata read outcome.

        Returns None when the quorum was not assembled (the caller fails
        the operation) — also counted in ``metadata_failures``.
        """
        if not outcome.satisfied or not outcome.accepted:
            self.metadata_failures += 1
            return None
        best_version = -1
        best_digest = b""
        for response in outcome.accepted:
            payload, version = response.value
            if int(version) > best_version:
                best_version = int(version)
                best_digest = bytes(payload.tobytes())
        return best_version, best_digest

    # ------------------------------------------------------------------ #
    # payload verification
    # ------------------------------------------------------------------ #

    def check(self, payload: np.ndarray, version: int, target: int, digest: bytes) -> bool:
        """Verify one payload reply against the metadata record."""
        if int(version) != int(target):
            self.version_mismatches += 1
            return False
        if block_digest(payload) != digest:
            self.digest_mismatches += 1
            return False
        return True

    def check_decoded(self, payload: np.ndarray, digest: bytes) -> bool:
        """Verify a decode-then-verify candidate block."""
        if block_digest(payload) != digest:
            self.digest_mismatches += 1
            return False
        return True

    def payload_accept(self, target: int, digest: bytes):
        """Accept predicate for ``read_data``-shaped replies.

        A rejected-but-resolved response does not count toward ``need``,
        which is exactly the graceful-degradation mechanism: both
        coordinators widen the round to substitute replies and only fail
        once the fan-out is exhausted.
        """

        def accept(response: Response) -> bool:
            if not response.ok:
                return False
            payload, version = response.value
            return self.check(payload, version, target, digest)

        return accept

    def counters(self) -> dict[str, int]:
        return {
            "digest_mismatches": self.digest_mismatches,
            "version_mismatches": self.version_mismatches,
            "metadata_failures": self.metadata_failures,
        }
