"""Verified read path: per-block digests + the separate metadata quorum.

The paper assumes fail-stop nodes (assumption 3), so its quorum math says
nothing about nodes that answer with *garbage*. Following the separate-
metadata construction of Androulaki et al. (*Erasure-Coded Byzantine
Storage with Separate Metadata*), this module adds the trust anchor that
makes payload replies checkable without trusting payload nodes:

* :func:`block_digest` — the cross-checksum primitive: a 16-byte BLAKE2b
  digest of a data block's bytes, computed by the writer;
* :class:`MetadataQuorum` — a lightweight, count-threshold quorum over
  ``nodes`` extra metadata nodes appended to the cluster. With ``f = 0``
  the tier is trusted fail-stop and thresholds derive from any registry
  quorum system (``majority`` by default) via
  :meth:`~repro.quorum.base.QuorumSystem.as_level_thresholds`, falling
  back to the size of a minimal quorum over the full metadata set. With
  ``f > 0`` the tier itself tolerates ``f`` Byzantine members: the
  classic 3f+1 sizing with 2f+1 write/read thresholds (any two quorums
  then intersect in f+1 nodes — *Byzantine Reliable Broadcast*, Locher);
* :class:`BlockVerifier` — builds the ``metadata`` rounds that store and
  fetch per-block ``(version, digest)`` records, and the accept
  predicates that verify payload replies against them. Verification
  failures are counted (``digest_mismatches`` for content lies,
  ``version_mismatches`` for stale-or-lying version claims) and simply
  *reject* the response — both coordinators then widen the round
  naturally (the event path's :class:`~repro.runtime.rounds.QuorumWait`
  keeps waiting for substitute replies, the instant path keeps issuing),
  so a read only fails once the quorum is genuinely exhausted.

Self-verifying records
----------------------

With ``signed=True`` every record carries a writer-keyed HMAC (BLAKE2b
keyed mode, :func:`record_tag`) over ``(namespace, block, version,
digest)``. A metadata node holds no writer key, so it cannot *forge* a
record — it can only serve authentic ones (possibly old: a rollback).
Signed read rounds reject bad-tag records at the accept predicate
(``tag_rejections``), which widens the round to substitute metadata
replies; with ``f > 0``, :meth:`BlockVerifier.resolve` additionally
requires **f+1 matching** ``(version, digest)`` records instead of
trusting the single max-version reply, which defeats authentic-record
rollback replay by up to f liars. Unsigned f=0 verifiers keep the
original 16-byte record layout bit for bit, so existing seeds replay
identically.

Metadata records are stored as ordinary data records on the metadata
nodes (digest — plus tag — bytes as the payload, the block version as
the record version), so every existing piece of machinery — service
queues, latency legs, failure injection, the trace — applies to the
metadata tier unchanged.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import Counter

import numpy as np

from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError
from repro.quorum.base import QuorumSystem
from repro.runtime.rounds import Request, Response, Round, RoundOutcome

__all__ = [
    "METADATA_ROUND",
    "DIGEST_SIZE",
    "TAG_SIZE",
    "block_digest",
    "writer_key",
    "record_tag",
    "MetadataQuorum",
    "BlockVerifier",
]

#: round-kind label of metadata-quorum traffic (message accounting key)
METADATA_ROUND = "metadata"

#: digest width in bytes (BLAKE2b truncated output)
DIGEST_SIZE = 16

#: record-tag width in bytes (BLAKE2b keyed-mode truncated output)
TAG_SIZE = 16


def block_digest(payload: np.ndarray) -> bytes:
    """The cross-checksum of one data block: BLAKE2b-128 over its bytes."""
    data = np.ascontiguousarray(payload).tobytes()
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).digest()


def writer_key(namespace: str) -> bytes:
    """The deterministic per-namespace writer key of the signed tier.

    Derived (BLAKE2b with a personalization string) rather than sampled
    so one spec reproduces one key: simulated metadata nodes never see
    it — the threat model is a storage server without the writer's
    credential, not a compromised writer.
    """
    return hashlib.blake2b(
        namespace.encode("utf-8"), digest_size=32, person=b"repro-meta-key"
    ).digest()


def record_tag(
    key: bytes, namespace: str, block: int, version: int, digest: bytes
) -> bytes:
    """Writer-keyed HMAC over one metadata record (BLAKE2b keyed mode).

    The tag binds the digest to its coordinates — namespace, block and
    version — so a lying metadata node can neither fabricate a record
    nor re-label an authentic one (serve block j's record for block i,
    or an old digest under a bumped version)."""
    mac = hashlib.blake2b(digest_size=TAG_SIZE, key=key)
    mac.update(f"{namespace}|{int(block)}|{int(version)}|".encode("utf-8"))
    mac.update(digest)
    return mac.digest()


class MetadataQuorum:
    """Count-threshold read/write quorums over the metadata node ids.

    The metadata tier is flat and small, so its quorums are expressed as
    simple counts: a write must reach ``write_need`` of the ``node_ids``,
    a read gathers ``read_need`` replies (any write/read pair then
    intersects, so the max version over a read quorum is the last
    committed one). :meth:`from_system` derives the counts from a full
    :class:`~repro.quorum.base.QuorumSystem` — exactly for
    count-structured systems (majority, ROWA, unit-weight voting), via
    the size of a minimal quorum over the whole tier otherwise.

    ``f`` is the number of *Byzantine* metadata members tolerated. With
    ``f > 0`` the tier must hold at least 3f+1 nodes and both thresholds
    become 2f+1 — any write/read quorum pair then intersects in f+1
    nodes, of which at most f lie, so the reader always hears at least
    one honest latest record and f+1 matching replies outvote any
    rollback (:meth:`BlockVerifier.resolve` enforces the matching rule).
    Configurations whose quorums cannot intersect are rejected here, not
    discovered as silent staleness mid-run.
    """

    def __init__(
        self, node_ids, write_need: int, read_need: int, f: int = 0
    ) -> None:
        self.node_ids = tuple(int(i) for i in node_ids)
        if not self.node_ids:
            raise ConfigurationError("metadata quorum needs at least one node")
        self.write_need = int(write_need)
        self.read_need = int(read_need)
        self.f = int(f)
        if self.f < 0:
            raise ConfigurationError(f"metadata f must be >= 0, got {self.f}")
        total = len(self.node_ids)
        if self.f > 0 and total < 3 * self.f + 1:
            raise ConfigurationError(
                f"tolerating f = {self.f} Byzantine metadata nodes needs "
                f"at least 3f + 1 = {3 * self.f + 1} nodes, got {total}"
            )
        for label, need in (("write_need", self.write_need), ("read_need", self.read_need)):
            if not 1 <= need <= total:
                raise ConfigurationError(
                    f"{label} must be in [1, {total}], got {need}"
                )
        if self.write_need + self.read_need <= total:
            raise ConfigurationError(
                f"write_need + read_need must exceed the tier size for "
                f"quorums to intersect: {self.write_need} + {self.read_need} "
                f"<= {total}"
            )
        if self.f > 0:
            floor = 2 * self.f + 1
            for label, need in (
                ("write_need", self.write_need),
                ("read_need", self.read_need),
            ):
                if need < floor:
                    raise ConfigurationError(
                        f"{label} must be at least 2f + 1 = {floor} to "
                        f"guarantee an f+1 honest intersection, got {need}"
                    )

    @classmethod
    def from_system(
        cls, node_ids, system: QuorumSystem, f: int = 0
    ) -> "MetadataQuorum":
        """Derive count thresholds from a registry quorum system.

        With ``f > 0`` the Byzantine math replaces the registry
        derivation outright: both thresholds are 2f+1 over a >= 3f+1
        tier, whatever the named quorum kind would have said — a
        fail-stop majority of a Byzantine-sized tier cannot guarantee an
        honest intersection.
        """
        ids = tuple(int(i) for i in node_ids)
        if int(f) > 0:
            threshold = 2 * int(f) + 1
            return cls(ids, threshold, threshold, f=int(f))
        full = set(range(len(ids)))

        def need(kind: str) -> int:
            predicate = system.as_level_thresholds(kind)
            if (
                predicate is not None
                and len(predicate.sizes) == 1
                and predicate.sizes[0] == len(ids)
            ):
                return int(predicate.thresholds[0])
            finder = (
                system.find_write_quorum if kind == "write" else system.find_read_quorum
            )
            quorum = finder(full)
            if quorum is None:
                raise ConfigurationError(
                    f"metadata quorum system has no {kind} quorum even with "
                    f"all {len(ids)} nodes alive"
                )
            return len(quorum)

        return cls(ids, need("write"), need("read"))


class BlockVerifier:
    """Digest/version authority for one engine's blocks.

    Owns the metadata key namespace, the ``metadata`` rounds, and the
    detection counters. One verifier per engine (per shard, in sharded
    systems); counters are therefore per-engine too.
    """

    def __init__(
        self,
        cluster,
        quorum: MetadataQuorum,
        namespace: str = "stripe-0",
        signed: bool = False,
    ) -> None:
        self.cluster = cluster
        self.quorum = quorum
        self.namespace = str(namespace)
        #: self-verifying records: digest + writer-keyed tag per record
        self.signed = bool(signed)
        self._key = writer_key(self.namespace) if self.signed else None
        #: payload replies whose content hash contradicted the metadata
        #: record (definite corruption — the version claim matched)
        self.digest_mismatches = 0
        #: payload replies whose version claim contradicted the metadata
        #: record (stale or lying node; indistinguishable, both rejected)
        self.version_mismatches = 0
        #: metadata rounds that failed to assemble their quorum (or, with
        #: f > 0, to find f+1 matching records)
        self.metadata_failures = 0
        #: metadata records rejected for a bad or missing writer tag
        self.tag_rejections = 0
        #: equal-version records with differing digests seen in resolve —
        #: surfaced even in fail-stop mode, where the max-version fold
        #: would otherwise keep the first-seen digest silently
        self.record_conflicts = 0

    # ------------------------------------------------------------------ #
    # record layout
    # ------------------------------------------------------------------ #

    def meta_key(self, block: int):
        return ("meta", self.namespace, int(block))

    def _record(self, block: int, version: int, digest: bytes) -> np.ndarray:
        raw = digest
        if self.signed:
            raw += record_tag(self._key, self.namespace, block, version, digest)
        return np.frombuffer(raw, dtype=np.uint8)

    def _parse(self, block: int, payload, version: int) -> bytes | None:
        """The digest of one metadata reply, or None when unauthentic.

        Unsigned verifiers accept the raw bytes as-is (the original
        trusted-tier layout); signed verifiers require the exact
        digest+tag width and a tag that verifies for the *claimed*
        coordinates — so both forged records and authentic records
        re-labelled with a shifted version fail here.
        """
        raw = bytes(np.asarray(payload).tobytes())
        if not self.signed:
            return raw
        if len(raw) != DIGEST_SIZE + TAG_SIZE:
            return None
        digest, tag = raw[:DIGEST_SIZE], raw[DIGEST_SIZE:]
        expected = record_tag(
            self._key, self.namespace, int(block), int(version), digest
        )
        if not hmac.compare_digest(tag, expected):
            return None
        return digest

    def record_accept(self, block: int):
        """Accept predicate of signed metadata reads: valid-tag records.

        A bad-tag record is rejected (counted in ``tag_rejections``) and
        therefore does not count toward ``read_need`` — the round widens
        to substitute metadata replies, so up to f forging liars in a
        3f+1 tier cost latency, never correctness, and f+1 of them
        exhaust the quorum into a clean failure.
        """

        def accept(response: Response) -> bool:
            if not response.ok:
                return False
            payload, version = response.value
            if self._parse(block, payload, version) is None:
                self.tag_rejections += 1
                return False
            return True

        return accept

    # ------------------------------------------------------------------ #
    # rounds
    # ------------------------------------------------------------------ #

    def bootstrap(self, block: int, payload: np.ndarray) -> None:
        """Write the version-0 record during volume load (instant path)."""
        record = self._record(block, 0, block_digest(payload))
        for node_id in self.quorum.node_ids:
            self.cluster.rpc(node_id, "put_data", self.meta_key(block), record, 0)

    def write_round(self, block: int, version: int, digest: bytes) -> Round:
        """The commit round: store (version, digest) on a write quorum."""
        record = self._record(block, int(version), digest)
        requests = [
            Request(
                node_id,
                "write_data",
                (self.meta_key(block), record, int(version)),
                catches=(NodeUnavailableError, StaleNodeError),
            )
            for node_id in self.quorum.node_ids
        ]
        return Round(
            requests,
            need=self.quorum.write_need,
            send_all=True,
            kind=METADATA_ROUND,
        )

    def read_round(self, block: int) -> Round:
        """Fetch (version, digest) records from a read quorum.

        Signed verifiers attach :meth:`record_accept`, so only
        authenticated records count toward ``read_need``; unsigned
        rounds keep the original accept-everything shape bit for bit.
        """
        requests = [
            Request(
                node_id,
                "read_data",
                (self.meta_key(block),),
                catches=(NodeUnavailableError, KeyError),
            )
            for node_id in self.quorum.node_ids
        ]
        accept = self.record_accept(block) if self.signed else None
        return Round(
            requests, need=self.quorum.read_need, accept=accept,
            kind=METADATA_ROUND,
        )

    def resolve(self, outcome: RoundOutcome) -> tuple[int, bytes] | None:
        """The authoritative (version, digest) over a metadata read outcome.

        Fail-stop mode (``f = 0``) trusts the newest record; Byzantine
        mode requires **f+1 matching** ``(version, digest)`` records —
        up to f liars cannot assemble a matching group, so an authentic-
        but-old record replayed by the liars is outvoted by the honest
        intersection — and additionally refuses whenever an
        authenticated record is newer than the best certifiable group
        (f+1 colluding replays never beat a lone honest latest reply).
        Returns None when the quorum was not assembled, no group
        qualifies, or freshness cannot be certified (the caller fails
        the operation cleanly) — also counted in ``metadata_failures``.
        """
        if not outcome.satisfied or not outcome.accepted:
            self.metadata_failures += 1
            return None
        records: list[tuple[int, bytes]] = []
        for response in outcome.accepted:
            payload, version = response.value
            if self.signed:
                # ("meta", namespace, block) — recover the block from the
                # request so engines need not thread it through resolve.
                block = response.request.args[0][2]
                digest = self._parse(block, payload, version)
                if digest is None:  # defensive: accept() already filters
                    self.tag_rejections += 1
                    continue
            else:
                digest = bytes(payload.tobytes())
            records.append((int(version), digest))
        return self._resolve_records(records)

    def _resolve_records(
        self, records: list[tuple[int, bytes]]
    ) -> tuple[int, bytes] | None:
        """Shared resolution fold over parsed, authenticated records."""
        if not records:
            self.metadata_failures += 1
            return None
        best_version = -1
        best_digest = b""
        for version, digest in records:
            if version > best_version:
                best_version = version
                best_digest = digest
            elif version == best_version and digest != best_digest:
                self.record_conflicts += 1
        if self.quorum.f > 0:
            counts = Counter(records)
            qualifying = [
                record
                for record, count in counts.items()
                if count >= self.quorum.f + 1
            ]
            if not qualifying:
                self.metadata_failures += 1
                return None
            candidate = max(qualifying)
            if best_version > candidate[0]:
                # An authenticated record is *newer* than anything we can
                # certify with f+1 matches — f+1 colluding replays of one
                # old record must not outvote a lone honest latest reply.
                # Refusing beats rolling back: clean failure, never stale.
                self.metadata_failures += 1
                return None
            return candidate
        return best_version, best_digest

    def lookup(self, block: int) -> tuple[int, bytes] | None:
        """Instant-path metadata fetch for out-of-band anti-entropy.

        The repair service runs outside the coordinators (direct RPCs),
        so this is the round-free twin of :meth:`read_round` +
        :meth:`resolve`: issue reads across the tier in id order until
        ``read_need`` *valid* records are gathered (unreachable nodes
        and bad-tag records are skipped — the widening behavior of the
        round path), then resolve them under the same f+1 rule.
        """
        key = self.meta_key(block)
        records: list[tuple[int, bytes]] = []
        for node_id in self.quorum.node_ids:
            try:
                payload, version = self.cluster.rpc(node_id, "read_data", key)
            except (NodeUnavailableError, KeyError):
                continue
            digest = self._parse(block, payload, version)
            if digest is None:
                self.tag_rejections += 1
                continue
            records.append((int(version), digest))
            if len(records) == self.quorum.read_need:
                break
        if len(records) < self.quorum.read_need:
            self.metadata_failures += 1
            return None
        return self._resolve_records(records)

    # ------------------------------------------------------------------ #
    # payload verification
    # ------------------------------------------------------------------ #

    def check(self, payload: np.ndarray, version: int, target: int, digest: bytes) -> bool:
        """Verify one payload reply against the metadata record."""
        if int(version) != int(target):
            self.version_mismatches += 1
            return False
        if block_digest(payload) != digest:
            self.digest_mismatches += 1
            return False
        return True

    def check_decoded(self, payload: np.ndarray, digest: bytes) -> bool:
        """Verify a decode-then-verify candidate block."""
        if block_digest(payload) != digest:
            self.digest_mismatches += 1
            return False
        return True

    def payload_accept(self, target: int, digest: bytes):
        """Accept predicate for ``read_data``-shaped replies.

        A rejected-but-resolved response does not count toward ``need``,
        which is exactly the graceful-degradation mechanism: both
        coordinators widen the round to substitute replies and only fail
        once the fan-out is exhausted.
        """

        def accept(response: Response) -> bool:
            if not response.ok:
                return False
            payload, version = response.value
            return self.check(payload, version, target, digest)

        return accept

    def counters(self) -> dict[str, int]:
        return {
            "digest_mismatches": self.digest_mismatches,
            "version_mismatches": self.version_mismatches,
            "metadata_failures": self.metadata_failures,
            "tag_rejections": self.tag_rejections,
            "record_conflicts": self.record_conflicts,
        }
